//! `sqlcheck`: a pre-execution semantic analyzer and lint pass for
//! generated SQL scripts.
//!
//! The XML→ORDB mapping strategies (§3) emit whole DDL/DML scripts; this
//! module checks such a script *without executing it*. The analyzer binds
//! each parsed statement against a **shadow catalog** — DDL statements
//! evolve the shadow catalog through [`crate::exec::ddl::apply_ddl_catalog`],
//! the *same* function the executor uses, so the two can never disagree
//! about what a script's DDL means — and runs these passes per statement:
//!
//! 1. **Name resolution** — tables, views, types, FROM aliases and
//!    dot-notation paths (`alias.attr.sub`, §4.1) resolve against the
//!    shadow catalog and the statement's scope frames.
//! 2. **Type checking** — constructor arity and argument coercion,
//!    `CAST(MULTISET …)` targets must be collection types, `DEREF` only on
//!    possibly-REF expressions, INSERT column/value arity and coercion.
//! 3. **Mode gating** — nested collection DDL is an [`Severity::Error`]
//!    under [`DbMode::Oracle8`] and clean under `Oracle9` (§2.2), because
//!    the shared DDL path enforces it on the shadow catalog.
//! 4. **Lints** — unscoped REF columns, REF targets with no object table in
//!    the script (dangling risk), the §4.3 CHECK-on-nullable-object quirk,
//!    dead and shadowed aliases.
//!
//! ## The differential guarantee
//!
//! [`Severity`] encodes a contract, checked end-to-end by the
//! `analyze_prop` differential test:
//!
//! * statement executes successfully ⇒ the analyzer emitted **no `Error`**
//!   for it (no false positives), and
//! * the analyzer emitted an `Error` ⇒ the executor **rejects** the
//!   statement.
//!
//! To uphold it, `Error` is reserved for findings that mirror an *eager,
//! data-independent* executor check (unknown INSERT target, constructor
//! arity, literal coercion failures, DDL the catalog rejects, …); anything
//! evaluated per-row, behind a short-circuit, or dependent on stored data
//! stays a `Warning`. The `eager` flag threaded through the expression
//! walker tracks exactly which positions the executor evaluates
//! unconditionally.

mod dataflow;
pub mod diag;
mod expr;
mod lints;
mod select;

pub use diag::{Diagnostic, Severity};

use crate::catalog::{Catalog, TableDef};
use crate::error::DbError;
use crate::exec::ddl::apply_ddl_catalog;
use crate::ident::Ident;
use crate::mode::DbMode;
use crate::sql::ast::{Expr, Stmt};
use crate::sql::lexer::{tokenize, Token};
use crate::sql::parser::parse_script_spanned;
use crate::sql::span::{Span, SpannedStmt};
use crate::value::Value;

use expr::{analyze_expr, static_coerce_error, STy, Scopes};
use select::{analyze_select, table_scope};

/// Per-statement analysis context: the pre-statement shadow catalog, the
/// script source (for span anchoring) and the diagnostic sink.
pub(crate) struct StmtCx<'a> {
    pub catalog: &'a Catalog,
    pub source: &'a str,
    /// Span of the whole statement — the fallback anchor.
    pub span: Span,
    pub diags: &'a mut Vec<Diagnostic>,
}

impl StmtCx<'_> {
    pub fn push(&mut self, severity: Severity, code: &'static str, message: String, span: Span) {
        self.diags.push(Diagnostic { severity, code, message, span });
    }

    pub fn error(&mut self, code: &'static str, message: String, span: Span) {
        self.push(Severity::Error, code, message, span);
    }

    pub fn warn(&mut self, code: &'static str, message: String, span: Span) {
        self.push(Severity::Warning, code, message, span);
    }

    /// `Error` when the executor runs the corresponding check eagerly,
    /// `Warning` otherwise — the single gate of the differential guarantee.
    pub fn report(&mut self, eager: bool, code: &'static str, message: String, span: Span) {
        self.push(if eager { Severity::Error } else { Severity::Warning }, code, message, span);
    }

    /// Span of the first occurrence of `ident` inside this statement
    /// (re-tokenizes the statement slice); falls back to the statement span.
    pub fn anchor_ident(&self, ident: &Ident) -> Span {
        find_token(self.source, self.span, |t| matches!(t, Token::Ident(s) if ident.eq_str(s)))
            .unwrap_or(self.span)
    }

    /// Span of the first keyword `kw` inside this statement.
    pub fn anchor_kw(&self, kw: &str) -> Span {
        find_token(self.source, self.span, |t| t.is_kw(kw)).unwrap_or(self.span)
    }
}

/// Re-tokenize the statement slice and find the first token matching `pred`,
/// translating its offsets back into whole-script coordinates.
fn find_token(source: &str, within: Span, pred: impl Fn(&Token) -> bool) -> Option<Span> {
    let slice: String = source.chars().skip(within.start).take(within.len()).collect();
    let tokens = tokenize(&slice).ok()?;
    tokens
        .iter()
        .find(|t| pred(&t.token))
        .map(|t| Span::new(t.offset + within.start, t.end + within.start))
}

/// The script analyzer. Holds the shadow catalog (evolved by the script's
/// own DDL) and the REF targets seen so far.
pub struct Analyzer {
    mode: DbMode,
    catalog: Catalog,
    /// REF target types declared by the script, with the span of the first
    /// declaring column — checked against the final catalog at end of script.
    ref_targets: Vec<(Ident, Span)>,
    /// Savepoint names established so far by the script. `ROLLBACK TO` a
    /// name outside this set is only a *warning*: the savepoint may have
    /// been established by an earlier script in the same session, which the
    /// analyzer cannot see.
    savepoints: std::collections::BTreeSet<Ident>,
}

impl Analyzer {
    /// Analyzer over an empty shadow catalog (self-contained scripts).
    pub fn new(mode: DbMode) -> Analyzer {
        Analyzer::with_catalog(Catalog::new(), mode)
    }

    /// Analyzer whose shadow catalog starts from an existing catalog — e.g.
    /// a clone of a live session's, to lint statements against current state.
    pub fn with_catalog(catalog: Catalog, mode: DbMode) -> Analyzer {
        Analyzer {
            mode,
            catalog,
            ref_targets: Vec::new(),
            savepoints: std::collections::BTreeSet::new(),
        }
    }

    pub fn mode(&self) -> DbMode {
        self.mode
    }

    /// The shadow catalog in its current (post-analysis) state.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Analyze a whole script. `Err` only on scan/parse failure; all
    /// semantic findings come back as [`Diagnostic`]s in statement order.
    pub fn analyze_script(&mut self, source: &str) -> Result<Vec<Diagnostic>, DbError> {
        let stmts = parse_script_spanned(source)?;
        let mut diags = Vec::new();
        for ss in &stmts {
            self.analyze_stmt(source, ss, &mut diags);
        }
        self.lint_dangling_refs(&mut diags);
        dataflow::dataflow_pass(source, &stmts, &mut diags);
        Ok(diags)
    }

    fn analyze_stmt(&mut self, source: &str, ss: &SpannedStmt, diags: &mut Vec<Diagnostic>) {
        let stmt = &ss.stmt;
        if let Stmt::Explain(inner) = stmt {
            // EXPLAIN never executes its target, so findings that would be
            // hard errors on the statement itself are advisory here — the
            // plan still renders. Analyze the inner statement against a
            // *clone* of the current state: EXPLAIN'd DDL must not evolve
            // the shadow catalog.
            let mut sub = Analyzer::with_catalog(self.catalog.clone(), self.mode);
            sub.savepoints = self.savepoints.clone();
            let sub_ss = SpannedStmt { stmt: (**inner).clone(), span: ss.span };
            let mut sub_diags = Vec::new();
            sub.analyze_stmt(source, &sub_ss, &mut sub_diags);
            for mut d in sub_diags {
                if d.severity == Severity::Error {
                    d.severity = Severity::Warning;
                }
                diags.push(d);
            }
            return;
        }
        {
            let mut cx = StmtCx { catalog: &self.catalog, source, span: ss.span, diags };
            match stmt {
                Stmt::Insert { table, columns, values } => {
                    analyze_insert(&mut cx, table, columns, values)
                }
                Stmt::Select(query) => analyze_select(&mut cx, None, query, true),
                Stmt::Update { table, sets, where_clause } => {
                    analyze_update(&mut cx, table, sets, where_clause.as_ref())
                }
                Stmt::Delete { table, where_clause } => {
                    analyze_delete(&mut cx, table, where_clause.as_ref())
                }
                Stmt::CreateView { query, .. } => {
                    // The executor stores the query unvalidated; it only runs
                    // when the view is expanded — everything is lazy here.
                    analyze_select(&mut cx, None, query, false)
                }
                Stmt::Savepoint { name } => {
                    self.savepoints.insert(name.clone());
                }
                // COMMIT and full ROLLBACK discard every savepoint.
                Stmt::Commit | Stmt::Rollback { to: None } => self.savepoints.clear(),
                Stmt::Rollback { to: Some(name) } => {
                    if !self.savepoints.contains(name) {
                        let span = cx.anchor_ident(name);
                        cx.warn(
                            "unknown-savepoint",
                            format!(
                                "savepoint '{name}' is not established earlier in this script; \
                                 ROLLBACK TO will fail unless the session already holds it \
                                 (ORA-01086)"
                            ),
                            span,
                        );
                    }
                }
                ddl => lints::lint_ddl(&mut cx, ddl, &mut self.ref_targets),
            }
        }
        // Evolve the shadow catalog through the executor's own DDL path.
        // A rejected statement leaves the catalog unchanged — exactly like
        // a failed statement in a live session — and analysis continues.
        if let Err(err) = apply_ddl_catalog(&mut self.catalog, self.mode, stmt) {
            let span = ddl_error_span(source, ss.span, &err);
            diags.push(Diagnostic {
                severity: Severity::Error,
                code: code_for(&err),
                message: err.to_string(),
                span,
            });
        }
    }

    /// End-of-script pass: a REF target type with no object table OF that
    /// type anywhere in the final catalog can never point at a live object.
    fn lint_dangling_refs(&self, diags: &mut Vec<Diagnostic>) {
        for (target, span) in &self.ref_targets {
            let has_table = self.catalog.table_names().any(|n| {
                matches!(self.catalog.get_table(n),
                    Some(TableDef::Object { of_type, .. }) if of_type == target)
            });
            if !has_table {
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "ref-no-target-table",
                    message: format!(
                        "REF {target}: the script creates no object table OF {target}, so \
                         these references can never be populated (dangling risk)"
                    ),
                    span: *span,
                });
            }
        }
    }
}

/// Stable diagnostic code for a DDL error surfaced through the shadow
/// catalog.
fn code_for(err: &DbError) -> &'static str {
    match err {
        DbError::Syntax { .. } => "syntax",
        DbError::Parse { .. } => "parse",
        DbError::IdentifierTooLong(_) => "identifier-too-long",
        DbError::UnknownType(_) => "unknown-type",
        DbError::UnknownTable(_) => "unknown-table",
        DbError::UnknownColumn(_) => "unknown-column",
        DbError::UnknownIndex(_) => "unknown-index",
        DbError::DuplicateName(_) => "duplicate-name",
        DbError::NestedCollectionNotSupported { .. } => "nested-collection",
        DbError::DependentTypeExists { .. } => "dependent-type",
        DbError::ConstructorMismatch { .. } => "constructor-mismatch",
        DbError::TypeMismatch { .. } => "type-mismatch",
        DbError::ValueTooLarge { .. } => "value-too-large",
        DbError::VarrayLimitExceeded { .. } => "varray-limit",
        DbError::NotNullViolation { .. } => "not-null",
        DbError::CheckViolation { .. } => "check-violation",
        DbError::UniqueViolation { .. } => "unique-violation",
        DbError::DanglingRef => "dangling-ref",
        DbError::UnknownSavepoint(_) => "unknown-savepoint",
        DbError::Execution(_) => "execution",
        DbError::ReadOnly(_) => "read-only",
        DbError::CorruptDurableState(_) => "corrupt-durable-state",
        DbError::Io(_) => "io",
    }
}

/// Best-effort fine anchor for a DDL error: point at the named identifier
/// if it occurs in the statement, else the whole statement.
fn ddl_error_span(source: &str, stmt_span: Span, err: &DbError) -> Span {
    let name: Option<&str> = match err {
        DbError::UnknownType(n)
        | DbError::UnknownTable(n)
        | DbError::UnknownColumn(n)
        | DbError::DuplicateName(n)
        | DbError::IdentifierTooLong(n) => Some(n),
        DbError::NestedCollectionNotSupported { element, .. } => Some(element),
        DbError::DependentTypeExists { dropped, .. } => Some(dropped),
        _ => None,
    };
    name.and_then(|n| {
        find_token(source, stmt_span, |t| matches!(t, Token::Ident(s) if s.eq_ignore_ascii_case(n)))
    })
    .unwrap_or(stmt_span)
}

/// Static INSERT analysis, mirroring `exec::dml::execute_insert`'s order:
/// table lookup (eager), VALUES evaluation against the empty environment
/// (eager), the object-table single-constructor "explode" carve-out, then
/// arity, per-column coercion and data-independent constraint checks.
fn analyze_insert(cx: &mut StmtCx, table: &Ident, columns: &Option<Vec<Ident>>, values: &[Expr]) {
    let Some(table_def) = cx.catalog.get_table(table) else {
        let code = if cx.catalog.get_view(table).is_some() {
            // INSERT only targets base tables; a view here fails the same
            // lookup in the executor.
            "insert-into-view"
        } else {
            "unknown-table"
        };
        cx.error(code, format!("table '{table}' does not exist"), cx.anchor_ident(table));
        return;
    };
    let table_def = table_def.clone();
    let table_columns = cx.catalog.table_columns(&table_def);

    // VALUES run against the executor's `Env::EMPTY` — every check inside
    // them is as eager as the statement.
    let stys: Vec<STy> = values.iter().map(|v| analyze_expr(cx, &Scopes::EMPTY, true, v)).collect();

    // Object-table carve-out: `INSERT INTO T VALUES (TypeX(…))` with no
    // column list inserts the constructed object's attributes as the row.
    if columns.is_none() && values.len() == 1 {
        if let TableDef::Object { of_type, .. } = &table_def {
            if let Expr::Call { name, args } = &values[0] {
                if name == of_type && cx.catalog.get_type(name).is_some() {
                    // The constructor analysis above already checked arity
                    // and argument coercion against the attribute types;
                    // only the data-independent constraints remain. Literal
                    // NULL args stay visibly NULL through coercion.
                    if args.len() == table_columns.len() {
                        let row: Vec<STy> = args
                            .iter()
                            .map(|a| match a {
                                Expr::Literal(v) => STy::Lit(v.clone()),
                                _ => STy::Unknown,
                            })
                            .collect();
                        check_constraints(cx, &table_def, &table_columns, &row);
                    }
                    return;
                }
            }
            if matches!(stys[0], STy::Unknown) {
                // A single opaque value may turn out to be an object of
                // `of_type` at runtime and explode into a full row — no
                // arity or coercion claims are safe.
                return;
            }
        }
    }

    let mut row: Vec<STy> = vec![STy::Lit(Value::Null); table_columns.len()];
    match columns {
        Some(cols) => {
            if cols.len() != values.len() {
                cx.error(
                    "insert-arity",
                    format!(
                        "INSERT lists {} columns but {} values",
                        cols.len(),
                        values.len()
                    ),
                    cx.span,
                );
                return;
            }
            for (col, sty) in cols.iter().zip(stys) {
                match table_columns.iter().position(|(c, _)| c == col) {
                    Some(idx) => row[idx] = sty,
                    None => {
                        cx.error(
                            "unknown-column",
                            format!("table '{table}' has no column '{col}'"),
                            cx.anchor_ident(col),
                        );
                        return;
                    }
                }
            }
        }
        None => {
            if values.len() != table_columns.len() {
                cx.error(
                    "insert-arity",
                    format!(
                        "table '{table}' has {} columns but {} values were supplied",
                        table_columns.len(),
                        values.len()
                    ),
                    cx.span,
                );
                return;
            }
            row = stys;
        }
    }
    for (sty, (col_name, col_type)) in row.iter().zip(&table_columns) {
        if let Some(msg) = static_coerce_error(sty, col_type) {
            cx.error("type-mismatch", format!("column '{col_name}': {msg}"), cx.span);
        }
    }
    check_constraints(cx, &table_def, &table_columns, &row);
}

/// Data-independent constraint checks: unknown constraint columns are
/// definite rejections (the executor resolves indices before row checks),
/// as is a literal NULL heading into a NOT NULL / PRIMARY KEY column.
/// UNIQUE key comparisons and CHECK predicates depend on stored data and
/// stay out of scope here (CHECK gets its §4.3 lint at DDL time).
fn check_constraints(
    cx: &mut StmtCx,
    table_def: &TableDef,
    table_columns: &[(Ident, crate::types::SqlType)],
    row: &[STy],
) {
    let col_index = |col: &Ident| table_columns.iter().position(|(c, _)| c == col);
    let is_null = |i: usize| matches!(&row[i], STy::Lit(v) if v.is_null());
    let not_null = |cx: &mut StmtCx, col: &Ident| match col_index(col) {
        None => cx.error(
            "unknown-column",
            format!(
                "constraint on '{}' references unknown column '{col}'",
                table_def.name()
            ),
            cx.span,
        ),
        Some(i) if is_null(i) => cx.error(
            "not-null",
            format!("cannot insert NULL into '{}.{col}'", table_def.name()),
            cx.span,
        ),
        Some(_) => {}
    };
    for constraint in table_def.constraints() {
        match constraint {
            crate::catalog::Constraint::NotNull(col) => not_null(cx, col),
            crate::catalog::Constraint::PrimaryKey(cols) => {
                for col in cols {
                    not_null(cx, col);
                }
            }
            crate::catalog::Constraint::Unique(cols) => {
                for col in cols {
                    if col_index(col).is_none() {
                        cx.error(
                            "unknown-column",
                            format!(
                                "constraint on '{}' references unknown column '{col}'",
                                table_def.name()
                            ),
                            cx.span,
                        );
                    }
                }
            }
            crate::catalog::Constraint::Check(_) => {}
        }
    }
}

/// UPDATE: the table lookup is eager; SET targets and expressions run
/// per matching row, so everything past the lookup is a `Warning`.
fn analyze_update(
    cx: &mut StmtCx,
    table: &Ident,
    sets: &[(Vec<Ident>, Expr)],
    where_clause: Option<&Expr>,
) {
    let Some(table_def) = cx.catalog.get_table(table) else {
        cx.error("unknown-table", format!("table '{table}' does not exist"), cx.anchor_ident(table));
        return;
    };
    let table_def = table_def.clone();
    let table_columns = cx.catalog.table_columns(&table_def);
    let frames = [table_scope(cx.catalog, &table_def, table.clone())];
    let scopes = Scopes { frames: &frames, parent: None };
    for (path, rhs) in sets {
        match table_columns.iter().find(|(c, _)| c == &path[0]) {
            None => cx.warn(
                "unknown-column",
                format!("SET target '{}' is not a column of '{table}'", path[0]),
                cx.anchor_ident(&path[0]),
            ),
            Some((_, col_type)) if path.len() > 1 => {
                let full = path.iter().map(|p| p.as_str()).collect::<Vec<_>>().join(".");
                expr::walk_attrs(cx, col_type.clone(), &path[1..], &full);
            }
            Some(_) => {}
        }
        analyze_expr(cx, &scopes, false, rhs);
    }
    if let Some(pred) = where_clause {
        analyze_expr(cx, &scopes, false, pred);
    }
}

fn analyze_delete(cx: &mut StmtCx, table: &Ident, where_clause: Option<&Expr>) {
    let Some(table_def) = cx.catalog.get_table(table) else {
        cx.error("unknown-table", format!("table '{table}' does not exist"), cx.anchor_ident(table));
        return;
    };
    let table_def = table_def.clone();
    let frames = [table_scope(cx.catalog, &table_def, table.clone())];
    let scopes = Scopes { frames: &frames, parent: None };
    if let Some(pred) = where_clause {
        analyze_expr(cx, &scopes, false, pred);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mode: DbMode, sql: &str) -> Vec<Diagnostic> {
        Analyzer::new(mode).analyze_script(sql).expect("script parses")
    }

    fn errors(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
        diags.iter().filter(|d| d.severity == Severity::Error).collect()
    }

    const NESTED: &str = "CREATE TYPE TypeVA_Inner AS VARRAY(4) OF VARCHAR(20);\n\
         CREATE TYPE TypeNT_Outer AS TABLE OF TypeVA_Inner;";

    #[test]
    fn nested_collection_is_an_error_under_oracle8_only() {
        let d8 = run(DbMode::Oracle8, NESTED);
        let errs = errors(&d8);
        assert_eq!(errs.len(), 1, "{d8:?}");
        assert_eq!(errs[0].code, "nested-collection");
        // The error anchors at the offending element type on line 2.
        assert_eq!(errs[0].line_col(NESTED).0, 2);

        let d9 = run(DbMode::Oracle9, NESTED);
        assert!(errors(&d9).is_empty(), "{d9:?}");
    }

    #[test]
    fn failed_ddl_leaves_the_shadow_catalog_unchanged() {
        // Under Oracle 8 the outer type is rejected, so a table of it is
        // also unknown — two errors, and analysis keeps going.
        let sql = format!("{NESTED}\nCREATE TABLE TabX (Docs TypeNT_Outer);");
        let d = run(DbMode::Oracle8, &sql);
        let errs = errors(&d);
        assert_eq!(errs.len(), 2, "{d:?}");
        assert_eq!(errs[1].code, "unknown-type");
    }

    #[test]
    fn unknown_insert_table_is_an_error_with_a_fine_span() {
        let sql = "INSERT INTO TabMissing VALUES (1);";
        let d = run(DbMode::Oracle9, sql);
        let errs = errors(&d);
        assert_eq!(errs.len(), 1, "{d:?}");
        assert_eq!(errs[0].code, "unknown-table");
        let (line, col) = errs[0].line_col(sql);
        assert_eq!((line, col), (1, 13));
    }

    const SCHEMA: &str = "CREATE TYPE Type_Prof AS OBJECT (PName VARCHAR(30), Room NUMBER);\n\
         CREATE TABLE Professor OF Type_Prof (PName NOT NULL);\n";

    #[test]
    fn insert_arity_and_literal_coercion_errors() {
        let sql = format!(
            "{SCHEMA}INSERT INTO Professor VALUES (Type_Prof('Kudrass'));\n\
             INSERT INTO Professor VALUES ('A', 'B', 'C');\n\
             INSERT INTO Professor (PName, Room) VALUES ('Conrad', 'not a number');"
        );
        let d = run(DbMode::Oracle9, &sql);
        let codes: Vec<&str> = errors(&d).iter().map(|e| e.code).collect();
        assert_eq!(codes, vec!["constructor-arity", "insert-arity", "type-mismatch"], "{d:?}");
    }

    #[test]
    fn literal_null_into_not_null_column_is_an_error() {
        let sql = format!("{SCHEMA}INSERT INTO Professor VALUES (Type_Prof(NULL, 42));");
        let d = run(DbMode::Oracle9, &sql);
        let errs = errors(&d);
        assert_eq!(errs.len(), 1, "{d:?}");
        assert_eq!(errs[0].code, "not-null");
    }

    #[test]
    fn select_unknown_first_table_error_later_table_warning() {
        let sql = "SELECT * FROM Nowhere;";
        let d = run(DbMode::Oracle9, sql);
        assert_eq!(errors(&d).len(), 1, "{d:?}");

        let sql2 = format!("{SCHEMA}SELECT * FROM Professor p, Nowhere n;");
        let d2 = run(DbMode::Oracle9, &sql2);
        assert!(errors(&d2).is_empty(), "{d2:?}");
        assert!(d2.iter().any(|x| x.code == "unknown-table"), "{d2:?}");
    }

    #[test]
    fn check_on_nullable_object_column_warns() {
        let sql = "CREATE TYPE Type_Addr AS OBJECT (City VARCHAR(30));\n\
             CREATE TYPE Type_Uni AS OBJECT (UName VARCHAR(30), Addr Type_Addr);\n\
             CREATE TABLE University OF Type_Uni (CHECK (Addr.City = 'Leipzig'));";
        let d = run(DbMode::Oracle9, sql);
        assert!(errors(&d).is_empty(), "{d:?}");
        let quirk: Vec<_> = d.iter().filter(|x| x.code == "check-null-object").collect();
        assert_eq!(quirk.len(), 1, "{d:?}");
        assert_eq!(quirk[0].line_col(sql).0, 3);
    }

    #[test]
    fn unscoped_ref_warns_and_missing_target_table_warns() {
        let sql = "CREATE TYPE Type_P AS OBJECT (Name VARCHAR(10));\n\
             CREATE TYPE Type_C AS OBJECT (Title VARCHAR(10), Held REF Type_P);";
        let d = run(DbMode::Oracle9, sql);
        assert!(d.iter().any(|x| x.code == "unscoped-ref"), "{d:?}");
        assert!(d.iter().any(|x| x.code == "ref-no-target-table"), "{d:?}");

        // Creating an object table of the target silences the dangling lint.
        let sql2 = format!("{sql}\nCREATE TABLE Profs OF Type_P;");
        let d2 = run(DbMode::Oracle9, &sql2);
        assert!(!d2.iter().any(|x| x.code == "ref-no-target-table"), "{d2:?}");
    }

    #[test]
    fn dead_and_shadowed_aliases_warn() {
        let sql = format!(
            "{SCHEMA}SELECT p.PName FROM Professor p, Professor q;\n\
             SELECT p.PName FROM Professor p, Professor p;"
        );
        let d = run(DbMode::Oracle9, &sql);
        assert!(errors(&d).is_empty(), "{d:?}");
        assert!(d.iter().any(|x| x.code == "dead-alias"), "{d:?}");
        assert!(d.iter().any(|x| x.code == "shadowed-alias"), "{d:?}");
    }

    #[test]
    fn accepted_script_from_the_paper_is_error_free() {
        // §4.1-style mapping output: types, object table, constructor
        // insert, dot-path select.
        let sql = "CREATE TYPE Type_Course AS OBJECT (Title VARCHAR(40), CreditHours NUMBER);\n\
             CREATE TYPE TypeVA_Course AS VARRAY(10) OF Type_Course;\n\
             CREATE TYPE Type_Prof AS OBJECT (PName VARCHAR(30), Courses TypeVA_Course);\n\
             CREATE TABLE Professor OF Type_Prof;\n\
             INSERT INTO Professor VALUES (Type_Prof('Kudrass', TypeVA_Course(Type_Course('DBS', 4))));\n\
             SELECT p.PName FROM Professor p WHERE p.PName = 'Kudrass';\n\
             SELECT c.Title FROM Professor p, TABLE(p.Courses) c;";
        let d = run(DbMode::Oracle9, sql);
        assert!(errors(&d).is_empty(), "{d:?}");
    }

    #[test]
    fn explain_demotes_errors_and_leaves_the_shadow_catalog_alone() {
        let sql = "EXPLAIN INSERT INTO TabMissing VALUES (1);\n\
             EXPLAIN CREATE TABLE T (x NUMBER);\n\
             INSERT INTO T VALUES (1);";
        let d = run(DbMode::Oracle9, sql);
        // The unknown INSERT target under EXPLAIN is demoted to a warning…
        assert!(d.iter().any(
            |x| x.severity == Severity::Warning && x.code == "unknown-table" && x.line_col(sql).0 == 1
        ), "{d:?}");
        // …and the EXPLAIN'd CREATE TABLE did not evolve the shadow
        // catalog, so the real INSERT on line 3 still fails hard.
        let errs = errors(&d);
        assert_eq!(errs.len(), 1, "{d:?}");
        assert_eq!(errs[0].code, "unknown-table");
        assert_eq!(errs[0].line_col(sql).0, 3);
    }

    #[test]
    fn cast_multiset_target_must_be_a_collection() {
        let sql = format!(
            "{SCHEMA}SELECT CAST(MULTISET(SELECT p.PName FROM Professor p) AS Type_Prof) FROM Professor q;"
        );
        let d = run(DbMode::Oracle9, &sql);
        assert!(d.iter().any(|x| x.code == "cast-target-not-collection"), "{d:?}");
    }

    #[test]
    fn deref_of_a_literal_and_unknown_function_are_flagged() {
        let sql = format!("{SCHEMA}SELECT DEREF(42) FROM Professor p;\nSELECT NVL2(p.Room) FROM Professor p;");
        let d = run(DbMode::Oracle9, &sql);
        assert!(d.iter().any(|x| x.code == "deref-non-ref"), "{d:?}");
        assert!(d.iter().any(|x| x.code == "unknown-function"), "{d:?}");
    }
}

//! DDL lints: unscoped REFs, the §4.3 CHECK-on-nullable-object quirk, and
//! constraint/column sanity. All findings here are `Warning`s — each one
//! describes a schema that executes fine but behaves surprisingly.

use crate::analyze::StmtCx;
use crate::catalog::Constraint;
use crate::ident::Ident;
use crate::sql::ast::{ColumnSpec, Expr, Stmt};
use crate::sql::span::Span;
use crate::types::SqlType;

/// Lint one DDL statement against the *pre-statement* shadow catalog and
/// record REF target types for the end-of-script dangling-risk check.
pub(crate) fn lint_ddl(cx: &mut StmtCx, stmt: &Stmt, ref_targets: &mut Vec<(Ident, Span)>) {
    match stmt {
        Stmt::CreateObjectType { attrs, .. } => {
            for (attr_name, t) in attrs {
                lint_ref_site(cx, attr_name, t, ref_targets);
            }
        }
        Stmt::CreateVarrayType { name, elem, .. } | Stmt::CreateNestedTableType { name, elem } => {
            lint_ref_site(cx, name, elem, ref_targets);
        }
        Stmt::CreateRelationalTable { name, columns, constraints, .. } => {
            for spec in columns {
                lint_ref_site(cx, &spec.name, &spec.sql_type, ref_targets);
            }
            let cols: Vec<(Ident, SqlType)> = columns
                .iter()
                .map(|c| (c.name.clone(), cx.catalog.resolve_sql_type(c.sql_type.clone())))
                .collect();
            let not_null = inline_not_null(columns, constraints);
            lint_constraints(cx, name, &cols, &not_null, constraints);
        }
        Stmt::CreateObjectTable { name, of_type, constraints } => {
            // Columns are the attributes of the underlying object type
            // (created by an earlier statement, so the shadow catalog has
            // them; if not, applying this statement errors anyway).
            let cols: Vec<(Ident, SqlType)> = match cx.catalog.get_type(of_type) {
                Some(def) => def.object_attrs().to_vec(),
                None => return,
            };
            let not_null = inline_not_null(&[], constraints);
            lint_constraints(cx, name, &cols, &not_null, constraints);
        }
        _ => {}
    }
}

/// REF columns in this dialect are always unscoped (there is no
/// `SCOPE FOR` clause), so any REF may point at any object table — warn,
/// and remember the target type for the dangling-risk check.
fn lint_ref_site(
    cx: &mut StmtCx,
    site_name: &Ident,
    t: &SqlType,
    ref_targets: &mut Vec<(Ident, Span)>,
) {
    let SqlType::Ref(target) = t else { return };
    let span = cx.anchor_ident(site_name);
    cx.warn(
        "unscoped-ref",
        format!(
            "'{site_name}' is an unscoped REF {target}: without a SCOPE FOR clause it may \
             reference any object table (and dangle after deletions, §2.3)"
        ),
        span,
    );
    if !ref_targets.iter().any(|(t2, _)| t2 == target) {
        ref_targets.push((target.clone(), span));
    }
}

/// Column names constrained NOT NULL (inline markers plus table-level
/// constraints — a NULL there can never reach a CHECK evaluation).
fn inline_not_null(columns: &[ColumnSpec], constraints: &[Constraint]) -> Vec<Ident> {
    let mut out: Vec<Ident> = columns
        .iter()
        .filter(|c| c.not_null || c.primary_key)
        .map(|c| c.name.clone())
        .collect();
    for c in constraints {
        match c {
            Constraint::NotNull(col) => out.push(col.clone()),
            Constraint::PrimaryKey(cols) => out.extend(cols.iter().cloned()),
            _ => {}
        }
    }
    out
}

fn lint_constraints(
    cx: &mut StmtCx,
    table_name: &Ident,
    cols: &[(Ident, SqlType)],
    not_null: &[Ident],
    constraints: &[Constraint],
) {
    let known = |col: &Ident| cols.iter().any(|(c, _)| c == col);
    for constraint in constraints {
        match constraint {
            Constraint::NotNull(col) => {
                if !known(col) {
                    cx.warn(
                        "unknown-constraint-column",
                        format!(
                            "NOT NULL constraint on '{table_name}' references unknown column \
                             '{col}' — every INSERT will fail"
                        ),
                        cx.anchor_ident(col),
                    );
                }
            }
            Constraint::PrimaryKey(key) | Constraint::Unique(key) => {
                for col in key {
                    if !known(col) {
                        cx.warn(
                            "unknown-constraint-column",
                            format!(
                                "key constraint on '{table_name}' references unknown column \
                                 '{col}' — every INSERT will fail"
                            ),
                            cx.anchor_ident(col),
                        );
                    }
                }
            }
            Constraint::Check(expr) => lint_check(cx, table_name, cols, not_null, expr),
        }
    }
}

/// The §4.3 quirk: a CHECK over an attribute of a *nullable* object column
/// evaluates to UNKNOWN when the object is NULL, and UNKNOWN passes — the
/// constraint silently admits NULL rows it looks like it should reject.
fn lint_check(
    cx: &mut StmtCx,
    table_name: &Ident,
    cols: &[(Ident, SqlType)],
    not_null: &[Ident],
    expr: &Expr,
) {
    let mut paths: Vec<&[Ident]> = Vec::new();
    collect_check_paths(expr, &mut paths);
    let span = cx.anchor_kw("CHECK");
    for parts in paths {
        // `col.attr…` or `table.col.attr…`.
        let (col, deeper) = if parts.len() >= 2 && &parts[0] == table_name {
            (&parts[1], parts.len() >= 3)
        } else {
            (&parts[0], parts.len() >= 2)
        };
        let Some((_, col_type)) = cols.iter().find(|(c, _)| c == col) else {
            cx.warn(
                "unknown-constraint-column",
                format!("CHECK on '{table_name}' references unknown column '{col}'"),
                span,
            );
            continue;
        };
        let is_object = matches!(col_type, SqlType::Object(_) | SqlType::Ref(_));
        if deeper && is_object && !not_null.iter().any(|n| n == col) {
            cx.warn(
                "check-null-object",
                format!(
                    "CHECK navigates into nullable object column '{col}': when '{col}' is \
                     NULL the condition is UNKNOWN and the row is ACCEPTED (§4.3) — add \
                     '{col} IS NOT NULL' or a NOT NULL constraint to close the gap"
                ),
                span,
            );
        }
    }
}

/// Collect every dot path in a CHECK expression (subqueries excluded —
/// they evaluate against their own scopes).
fn collect_check_paths<'e>(expr: &'e Expr, out: &mut Vec<&'e [Ident]>) {
    match expr {
        Expr::Path(parts) => out.push(parts),
        Expr::Call { args, .. } => {
            for a in args {
                collect_check_paths(a, out);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_check_paths(lhs, out);
            collect_check_paths(rhs, out);
        }
        Expr::Not(e) | Expr::IsNull { expr: e, .. } | Expr::Like { expr: e, .. } => {
            collect_check_paths(e, out)
        }
        Expr::Deref(e) => collect_check_paths(e, out),
        Expr::Literal(_)
        | Expr::CountStar
        | Expr::RefOf(_)
        | Expr::Subquery(_)
        | Expr::CastMultiset { .. }
        | Expr::Exists(_) => {}
    }
}

//! Static analysis of SELECT statements: FROM resolution, scope building,
//! lazy expression checks, and the alias lints.
//!
//! Mirrors `exec::select::execute_select`'s laziness precisely:
//!
//! * the **first** FROM item is always expanded (the combination list
//!   starts non-empty), so an unknown first table is an unconditional
//!   rejection — `Error` when the statement itself is eagerly evaluated;
//! * later FROM items are only expanded while earlier ones produced rows,
//!   so problems there are `Warning`s;
//! * select items, WHERE conjuncts and ORDER BY keys run per combination —
//!   always `Warning`s;
//! * `COUNT(*)` combined with other select items is rejected *after* FROM
//!   expansion regardless of row counts, so it may be an `Error`.

use crate::analyze::expr::{analyze_expr, path_declared_type, STy, ScopeFrame, Scopes};
use crate::analyze::StmtCx;
use crate::catalog::{Catalog, TableDef, TypeDef};
use crate::ident::Ident;
use crate::sql::ast::{Expr, FromItem, SelectStmt};
use crate::types::SqlType;

/// Analyze one SELECT. `outer` is the enclosing scope chain for subqueries;
/// `eager` means the executor runs this query unconditionally when the
/// statement executes (top-level SELECT, INSERT VALUES subquery, …).
pub(crate) fn analyze_select(
    cx: &mut StmtCx,
    outer: Option<&Scopes>,
    stmt: &SelectStmt,
    eager: bool,
) {
    // 1. FROM: build scope frames left to right (later items see earlier
    //    bindings, like the executor's lateral expansion).
    let mut frames: Vec<ScopeFrame> = Vec::new();
    for (idx, item) in stmt.from.iter().enumerate() {
        let eager_here = eager && idx == 0;
        let binding = item.binding();
        if frames.iter().any(|f| f.binding == binding) {
            cx.warn(
                "shadowed-alias",
                format!("FROM binding '{binding}' shadows an earlier binding of the same name"),
                cx.anchor_ident(&binding),
            );
        }
        let frame = match item {
            FromItem::Table { name, .. } => {
                if let Some(table) = cx.catalog.get_table(name) {
                    table_scope(cx.catalog, table, binding)
                } else if cx.catalog.get_view(name).is_some() {
                    // Views execute their stored query on expansion; the
                    // output column set is not modelled statically.
                    ScopeFrame::wildcard(binding)
                } else {
                    cx.report(
                        eager_here,
                        "unknown-table",
                        format!("table or view '{name}' does not exist"),
                        cx.anchor_ident(name),
                    );
                    ScopeFrame::wildcard(binding)
                }
            }
            FromItem::CollectionTable { expr, .. } => {
                // Expanded per combination of the earlier items: lazy.
                let scopes = Scopes { frames: &frames, parent: outer };
                let sty = analyze_expr(cx, &scopes, false, expr);
                let coll_type = match (&sty, expr) {
                    (STy::Collection(t), _) => Some(t.clone()),
                    (_, Expr::Path(parts)) => {
                        match path_declared_type(cx.catalog, &scopes, parts) {
                            Some(SqlType::Varray(t)) | Some(SqlType::NestedTable(t)) => Some(t),
                            _ => None,
                        }
                    }
                    _ => None,
                };
                match coll_type {
                    Some(t) => collection_scope(cx.catalog, &t, binding),
                    None => ScopeFrame::wildcard(binding),
                }
            }
        };
        frames.push(frame);
    }
    let scopes = Scopes { frames: &frames, parent: outer };

    // 2. COUNT(*): legal only as the sole select item. The executor
    //    enforces this after FROM expansion, independent of row counts.
    let top_level_count = !stmt.star && stmt.items.iter().any(|i| matches!(i.expr, Expr::CountStar));
    if top_level_count && stmt.items.len() != 1 {
        cx.report(
            eager,
            "countstar-position",
            "COUNT(*) cannot be combined with other select items".into(),
            cx.anchor_kw("COUNT"),
        );
    }

    // 3. Select items, WHERE, ORDER BY: evaluated per row — lazy.
    for item in &stmt.items {
        if matches!(item.expr, Expr::CountStar) {
            continue;
        }
        analyze_expr(cx, &scopes, false, &item.expr);
    }
    if let Some(pred) = &stmt.where_clause {
        analyze_expr(cx, &scopes, false, pred);
    }
    for (key, _) in &stmt.order_by {
        analyze_expr(cx, &scopes, false, key);
    }

    // 4. Dead-alias lint: an explicitly-introduced alias no expression ever
    //    references. Suppressed for `SELECT *` (every frame contributes) and
    //    when any unqualified column path exists (it may implicitly use any
    //    frame).
    lint_dead_aliases(cx, stmt);
}

/// Scope frame for a catalog table, mirroring `expand_from_item`.
pub(crate) fn table_scope(catalog: &Catalog, table: &TableDef, binding: Ident) -> ScopeFrame {
    let object_type = match table {
        TableDef::Object { of_type, .. } => Some(of_type.clone()),
        TableDef::Relational { .. } => None,
    };
    ScopeFrame {
        binding,
        columns: Some(catalog.table_columns(table)),
        object_type,
        has_oid: table.is_object_table(),
    }
}

/// Scope frame for `TABLE(collection)`: object elements expose their
/// attributes as columns; scalar elements appear as `COLUMN_VALUE`.
fn collection_scope(catalog: &Catalog, coll_type: &Ident, binding: Ident) -> ScopeFrame {
    let elem = catalog.get_type(coll_type).and_then(|d| d.element_type().cloned());
    match elem {
        Some(SqlType::Object(o)) => match catalog.get_type(&o) {
            Some(TypeDef::Object { attrs, .. }) => ScopeFrame {
                binding,
                columns: Some(attrs.clone()),
                object_type: Some(o.clone()),
                has_oid: false,
            },
            _ => ScopeFrame::wildcard(binding),
        },
        Some(scalar) => ScopeFrame {
            binding,
            columns: Some(vec![(Ident::internal("COLUMN_VALUE"), scalar)]),
            object_type: None,
            has_oid: false,
        },
        None => ScopeFrame::wildcard(binding),
    }
}

fn lint_dead_aliases(cx: &mut StmtCx, stmt: &SelectStmt) {
    if stmt.star {
        return;
    }
    let bindings: Vec<Ident> = stmt.from.iter().map(|f| f.binding()).collect();
    let mut used: Vec<bool> = vec![false; bindings.len()];
    let mut any_unqualified = false;
    {
        let mut mark = |name: &Ident| {
            let mut hit = false;
            for (i, b) in bindings.iter().enumerate() {
                if b == name {
                    used[i] = true;
                    hit = true;
                }
            }
            if !hit {
                any_unqualified = true;
            }
        };
        let mut walk_all = |exprs: &mut dyn Iterator<Item = &Expr>| {
            for e in exprs {
                walk_heads(e, &mut mark);
            }
        };
        walk_all(&mut stmt.items.iter().map(|i| &i.expr));
        walk_all(&mut stmt.where_clause.iter());
        walk_all(&mut stmt.order_by.iter().map(|(e, _)| e));
        walk_all(&mut stmt.from.iter().filter_map(|f| match f {
            FromItem::CollectionTable { expr, .. } => Some(expr),
            FromItem::Table { .. } => None,
        }));
    }
    if any_unqualified {
        return;
    }
    for (i, item) in stmt.from.iter().enumerate() {
        let explicit_alias = match item {
            FromItem::Table { alias, .. } => alias.is_some(),
            FromItem::CollectionTable { alias, .. } => alias.is_some(),
        };
        if explicit_alias && !used[i] {
            cx.warn(
                "dead-alias",
                format!("alias '{}' is introduced but never referenced", bindings[i]),
                cx.anchor_ident(&bindings[i]),
            );
        }
    }
}

/// Visit the head identifier of every `Path` / `RefOf` in an expression
/// tree, *excluding* subquery bodies (their paths resolve against their own
/// scopes first; treating them as uses would be wrong more often than not,
/// and missing a use only costs lint precision, never correctness).
/// Subquery bodies still mark uses of outer bindings conservatively: any
/// subquery suppresses the lint by marking everything used.
fn walk_heads(expr: &Expr, mark: &mut dyn FnMut(&Ident)) {
    match expr {
        Expr::Literal(_) | Expr::CountStar => {}
        Expr::Path(parts) => mark(&parts[0]),
        Expr::RefOf(alias) => mark(alias),
        Expr::Call { args, .. } => {
            for a in args {
                walk_heads(a, mark);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_heads(lhs, mark);
            walk_heads(rhs, mark);
        }
        Expr::Not(e) | Expr::IsNull { expr: e, .. } | Expr::Like { expr: e, .. } => {
            walk_heads(e, mark)
        }
        Expr::Deref(e) => walk_heads(e, mark),
        Expr::Subquery(q) | Expr::Exists(q) | Expr::CastMultiset { query: q, .. } => {
            // A correlated subquery may reference any outer binding.
            mark_subquery_frees(q, mark);
        }
    }
}

/// Conservatively mark every head inside a subquery as a potential use of
/// an outer binding (heads that match the subquery's own FROM bindings
/// resolve inward, but over-marking only makes the dead-alias lint quieter).
fn mark_subquery_frees(q: &SelectStmt, mark: &mut dyn FnMut(&Ident)) {
    for item in &q.items {
        walk_heads(&item.expr, mark);
    }
    if let Some(p) = &q.where_clause {
        walk_heads(p, mark);
    }
    for (e, _) in &q.order_by {
        walk_heads(e, mark);
    }
    for f in &q.from {
        if let FromItem::CollectionTable { expr, .. } = f {
            walk_heads(expr, mark);
        }
    }
}

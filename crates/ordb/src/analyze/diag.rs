//! Diagnostic values: severity, codes, spans and rustc-style rendering.

use crate::sql::span::{source_line, Span};
use std::fmt;

/// How certain the analyzer is that the executor will reject the statement.
///
/// The severity model *is* the differential guarantee: `Error` is only
/// emitted when the executor is guaranteed to reject the statement (the
/// check mirrors an eager, data-independent executor check), while
/// `Warning` marks suspicious-but-executable constructs (lazy, per-row or
/// data-dependent checks, and lints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One analyzer finding, anchored to a character span of the source script.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Stable short code, e.g. `unknown-table`, `check-null-object`.
    pub code: &'static str,
    pub message: String,
    pub span: Span,
}

impl Diagnostic {
    /// 1-based (line, column) of the diagnostic within `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        self.span.line_col(source)
    }

    /// Render rustc-style with the offending source line and a caret
    /// underline:
    ///
    /// ```text
    /// error[unknown-table]: table or view 'TabX' does not exist
    ///   --> script.sql:3:13
    ///    |
    ///  3 | INSERT INTO TabX VALUES (1);
    ///    |             ^^^^
    /// ```
    pub fn render(&self, source: &str, source_name: &str) -> String {
        let (line, col) = self.line_col(source);
        let text = source_line(source, line);
        let gutter = line.to_string().len();
        let pad = " ".repeat(gutter);
        let mut out = String::new();
        out.push_str(&format!("{}[{}]: {}\n", self.severity, self.code, self.message));
        out.push_str(&format!("{pad}--> {source_name}:{line}:{col}\n"));
        out.push_str(&format!("{pad} |\n"));
        out.push_str(&format!("{line} | {text}\n"));
        // Caret run: clamp multi-line spans to the anchor line's end.
        let line_len = text.chars().count();
        let carets = self.span.len().min(line_len.saturating_sub(col - 1)).max(1);
        out.push_str(&format!("{pad} | {}{}\n", " ".repeat(col - 1), "^".repeat(carets)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_above_warning() {
        assert!(Severity::Error > Severity::Warning);
        assert_eq!(Severity::Error.to_string(), "error");
        assert_eq!(Severity::Warning.to_string(), "warning");
    }

    #[test]
    fn render_points_at_the_offending_token() {
        let src = "CREATE TABLE T OF A;\nINSERT INTO TabX VALUES (1);";
        let d = Diagnostic {
            severity: Severity::Error,
            code: "unknown-table",
            message: "table or view 'TabX' does not exist".into(),
            span: Span::new(33, 37),
        };
        let rendered = d.render(src, "script.sql");
        assert!(rendered.starts_with("error[unknown-table]:"), "{rendered}");
        assert!(rendered.contains("--> script.sql:2:13"), "{rendered}");
        assert!(rendered.contains("2 | INSERT INTO TabX VALUES (1);"), "{rendered}");
        assert!(rendered.contains("|             ^^^^"), "{rendered}");
    }

    #[test]
    fn render_clamps_statement_spans_to_one_line() {
        let src = "SELECT x\nFROM t";
        let d = Diagnostic {
            severity: Severity::Warning,
            code: "demo",
            message: "whole-statement anchor".into(),
            span: Span::new(0, src.chars().count()),
        };
        let rendered = d.render(src, "s.sql");
        assert!(rendered.contains("1 | SELECT x\n"), "{rendered}");
        assert!(rendered.contains("  | ^^^^^^^^\n"), "{rendered}");
    }
}

//! Diagnostic values: severity, codes, spans and rustc-style rendering.
//!
//! The types live in the shared `xmlord-diag` crate (so DTD- and
//! mapping-level linters emit uniform diagnostics); this module re-exports
//! them under the historical `ordb::analyze::diag` paths.
//!
//! The severity model *is* the differential guarantee: `Error` is only
//! emitted when the executor is guaranteed to reject the statement (the
//! check mirrors an eager, data-independent executor check), while
//! `Warning` marks suspicious-but-executable constructs (lazy, per-row or
//! data-dependent checks, and lints).

pub use xmlord_diag::{Diagnostic, Severity};

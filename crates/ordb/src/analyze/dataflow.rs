//! maplint level 3: a flow-sensitive dataflow pass over whole scripts.
//!
//! The per-statement analysis in [`super::Analyzer`] binds each statement
//! against the shadow catalog; this pass looks *across* statements at how
//! table contents flow through the script:
//!
//! * `dead-write` — rows written to a table that is dropped before anything
//!   reads it;
//! * `create-drop-unused` — a table created and dropped without any access
//!   in between;
//! * `rolled-back-write` — uncommitted writes undone by a full `ROLLBACK`
//!   before anything read them;
//! * `subquery-empty-table` — a DML statement whose subquery scans a table
//!   this script created but has not populated yet (the generated
//!   `(SELECT REF(x) FROM Tab x WHERE …)` parent-wiring pattern yields
//!   NULL, i.e. a dangling REF insert).
//!
//! Every finding is a [`Severity::Warning`]: the statements all *execute* —
//! the differential guarantee reserves Errors for certain rejections.
//!
//! Table references are collected by re-tokenizing each statement slice and
//! intersecting identifier tokens with the tables known to the script, so
//! references inside arbitrarily nested subqueries count as reads without a
//! full AST walk. Use-before-CREATE ordering needs no pass of its own: the
//! per-statement binder already reports `unknown-table` Errors against the
//! shadow catalog.

use std::collections::{BTreeMap, BTreeSet};

use xmlord_diag::{Diagnostic, Severity, Span};

use crate::ident::Ident;
use crate::sql::ast::Stmt;
use crate::sql::lexer::{tokenize, Token};
use crate::sql::span::SpannedStmt;

/// State of one table as the pass walks the script.
#[derive(Debug, Default)]
struct TableState {
    /// Span of the CREATE TABLE when this script created it.
    created_here: Option<Span>,
    /// Any read or write since creation (decides `create-drop-unused`).
    accessed: bool,
    /// INSERT statements so far (decides `subquery-empty-table`).
    inserts: usize,
    /// Write spans not yet observed by any read (decides `dead-write`).
    unread_writes: Vec<Span>,
    /// Write spans neither read nor committed (decides `rolled-back-write`).
    uncommitted_unread_writes: Vec<Span>,
}

/// Run the dataflow pass over a parsed script. `source` is the script text
/// the statement spans index into.
pub(crate) fn dataflow_pass(source: &str, stmts: &[SpannedStmt], diags: &mut Vec<Diagnostic>) {
    let mut tables: BTreeMap<String, TableState> = BTreeMap::new();
    let mut names: BTreeMap<String, String> = BTreeMap::new(); // upper → display

    let warn = |code: &'static str, message: String, span: Span, diags: &mut Vec<Diagnostic>| {
        diags.push(Diagnostic { severity: Severity::Warning, code, message, span });
    };

    for ss in stmts {
        // EXPLAIN'd statements never execute: invisible to dataflow.
        if matches!(ss.stmt, Stmt::Explain(_)) {
            continue;
        }
        let write_target: Option<&Ident> = match &ss.stmt {
            Stmt::Insert { table, .. }
            | Stmt::Update { table, .. }
            | Stmt::Delete { table, .. } => Some(table),
            _ => None,
        };

        // Reads: every known table mentioned in the statement other than
        // the write target itself.
        let mentioned = mentioned_idents(source, ss.span);
        let mut reads: BTreeSet<String> = mentioned
            .into_iter()
            .filter(|n| tables.contains_key(n))
            .collect();
        if let Some(t) = write_target {
            reads.remove(t.key());
        }
        // Dropping a table is not a read of its contents.
        if let Stmt::DropTable { name } = &ss.stmt {
            reads.remove(name.key());
        }
        // UPDATE and DELETE scan the target's rows before mutating them.
        if matches!(ss.stmt, Stmt::Update { .. } | Stmt::Delete { .. }) {
            if let Some(t) = write_target {
                reads.insert(t.key().to_string());
            }
        }
        for key in &reads {
            if let Some(state) = tables.get_mut(key) {
                state.accessed = true;
                state.unread_writes.clear();
                state.uncommitted_unread_writes.clear();
                // A subquery over a table this script created but never
                // populated finds no rows: the generated REF-wiring pattern
                // inserts NULL where a reference was intended.
                if write_target.is_some() && state.created_here.is_some() && state.inserts == 0 {
                    warn(
                        "subquery-empty-table",
                        format!(
                            "the subquery scans '{}', which this script created but has not \
                             populated yet — it finds no rows, so the written value is NULL \
                             (dangling-REF risk)",
                            names[key]
                        ),
                        ss.span,
                        diags,
                    );
                }
            }
        }

        match &ss.stmt {
            Stmt::CreateObjectTable { name, .. } | Stmt::CreateRelationalTable { name, .. } => {
                let key = name.key().to_string();
                names.insert(key.clone(), name.as_str().to_string());
                tables.insert(key, TableState { created_here: Some(ss.span), ..TableState::default() });
            }
            Stmt::Insert { table, .. } => {
                let key = table.key().to_string();
                names.entry(key.clone()).or_insert_with(|| table.as_str().to_string());
                let state = tables.entry(key).or_default();
                state.accessed = true;
                state.inserts += 1;
                state.unread_writes.push(ss.span);
                state.uncommitted_unread_writes.push(ss.span);
            }
            Stmt::Update { table, .. } | Stmt::Delete { table, .. } => {
                let key = table.key().to_string();
                names.entry(key.clone()).or_insert_with(|| table.as_str().to_string());
                let state = tables.entry(key).or_default();
                state.accessed = true;
                state.unread_writes.push(ss.span);
                state.uncommitted_unread_writes.push(ss.span);
            }
            Stmt::DropTable { name } => {
                let key = name.key().to_string();
                if let Some(state) = tables.remove(&key) {
                    if state.created_here.is_some() && !state.accessed {
                        warn(
                            "create-drop-unused",
                            format!(
                                "table '{name}' is created and dropped by this script without \
                                 any read or write in between"
                            ),
                            ss.span,
                            diags,
                        );
                    }
                    for span in &state.unread_writes {
                        warn(
                            "dead-write",
                            format!(
                                "rows written to '{name}' here are never read before the \
                                 table is dropped"
                            ),
                            *span,
                            diags,
                        );
                    }
                }
            }
            Stmt::Commit => {
                for state in tables.values_mut() {
                    state.uncommitted_unread_writes.clear();
                }
            }
            Stmt::Rollback { to: None } => {
                for (key, state) in tables.iter_mut() {
                    for span in state.uncommitted_unread_writes.drain(..) {
                        warn(
                            "rolled-back-write",
                            format!(
                                "this write to '{}' is undone by the ROLLBACK before \
                                 anything reads it",
                                names[key]
                            ),
                            span,
                            diags,
                        );
                    }
                    // The writes are gone from unread_writes' perspective too.
                    state.unread_writes.clear();
                }
            }
            Stmt::Rollback { to: Some(_) } => {
                // Partial rollback: which writes survive depends on the
                // savepoint position — stay conservative, claim nothing.
                for state in tables.values_mut() {
                    state.uncommitted_unread_writes.clear();
                    state.unread_writes.clear();
                }
            }
            _ => {}
        }
    }
}

/// Upper-cased identifier tokens of the statement slice.
fn mentioned_idents(source: &str, span: Span) -> BTreeSet<String> {
    let slice: String = source.chars().skip(span.start).take(span.len()).collect();
    let Ok(tokens) = tokenize(&slice) else { return BTreeSet::new() };
    tokens
        .iter()
        .filter_map(|t| match &t.token {
            Token::Ident(s) => Some(s.to_uppercase()),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::{Analyzer, Severity};
    use crate::mode::DbMode;

    fn warnings(sql: &str) -> Vec<(String, String)> {
        Analyzer::new(DbMode::Oracle9)
            .analyze_script(sql)
            .expect("script parses")
            .into_iter()
            .map(|d| (d.code.to_string(), d.message))
            .collect()
    }

    const PROF: &str = "CREATE TYPE Type_P AS OBJECT (PName VARCHAR(30));\n\
         CREATE TABLE Professor OF Type_P;\n";

    #[test]
    fn create_drop_unused_fires_only_without_access() {
        let sql = format!("{PROF}DROP TABLE Professor;");
        assert!(warnings(&sql).iter().any(|(c, _)| c == "create-drop-unused"), "{sql}");

        let used = format!(
            "{PROF}INSERT INTO Professor VALUES (Type_P('K'));\n\
             SELECT p.PName FROM Professor p;\nDROP TABLE Professor;"
        );
        let w = warnings(&used);
        assert!(!w.iter().any(|(c, _)| c == "create-drop-unused"), "{w:?}");
        assert!(!w.iter().any(|(c, _)| c == "dead-write"), "{w:?}");
    }

    #[test]
    fn unread_write_before_drop_is_a_dead_write() {
        let sql = format!(
            "{PROF}INSERT INTO Professor VALUES (Type_P('K'));\nDROP TABLE Professor;"
        );
        let w = warnings(&sql);
        assert!(w.iter().any(|(c, _)| c == "dead-write"), "{w:?}");
        assert!(!w.iter().any(|(c, _)| c == "create-drop-unused"), "{w:?}");
    }

    #[test]
    fn rolled_back_write_warns_unless_committed_or_read() {
        let sql = format!("{PROF}INSERT INTO Professor VALUES (Type_P('K'));\nROLLBACK;");
        assert!(warnings(&sql).iter().any(|(c, _)| c == "rolled-back-write"));

        let committed = format!(
            "{PROF}INSERT INTO Professor VALUES (Type_P('K'));\nCOMMIT;\nROLLBACK;"
        );
        assert!(!warnings(&committed).iter().any(|(c, _)| c == "rolled-back-write"));

        let read = format!(
            "{PROF}INSERT INTO Professor VALUES (Type_P('K'));\n\
             SELECT p.PName FROM Professor p;\nROLLBACK;"
        );
        assert!(!warnings(&read).iter().any(|(c, _)| c == "rolled-back-write"));
    }

    #[test]
    fn ref_subquery_over_unpopulated_table_warns() {
        let sql = "CREATE TYPE Type_P AS OBJECT (PName VARCHAR(30));\n\
             CREATE TABLE Professor OF Type_P;\n\
             CREATE TYPE Type_C AS OBJECT (Title VARCHAR(30), Held REF Type_P);\n\
             CREATE TABLE Course OF Type_C;\n\
             INSERT INTO Course VALUES (Type_C('DBS', (SELECT REF(p) FROM Professor p WHERE p.PName = 'K')));";
        let w = warnings(sql);
        assert!(w.iter().any(|(c, _)| c == "subquery-empty-table"), "{w:?}");

        // Populating the parent first silences it — the generated loader
        // ordering (parent row before child REF) stays clean.
        let ordered = "CREATE TYPE Type_P AS OBJECT (PName VARCHAR(30));\n\
             CREATE TABLE Professor OF Type_P;\n\
             CREATE TYPE Type_C AS OBJECT (Title VARCHAR(30), Held REF Type_P);\n\
             CREATE TABLE Course OF Type_C;\n\
             INSERT INTO Professor VALUES (Type_P('K'));\n\
             INSERT INTO Course VALUES (Type_C('DBS', (SELECT REF(p) FROM Professor p WHERE p.PName = 'K')));";
        let w2 = warnings(ordered);
        assert!(!w2.iter().any(|(c, _)| c == "subquery-empty-table"), "{w2:?}");
    }

    #[test]
    fn dataflow_findings_are_never_errors() {
        let sql = format!(
            "{PROF}INSERT INTO Professor VALUES (Type_P('K'));\nROLLBACK;\nDROP TABLE Professor;"
        );
        let diags = Analyzer::new(DbMode::Oracle9).analyze_script(&sql).unwrap();
        for d in diags {
            assert_eq!(d.severity, Severity::Warning, "{}: {}", d.code, d.message);
        }
    }
}

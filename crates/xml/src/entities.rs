//! General-entity catalog and expansion bookkeeping.
//!
//! The paper's §6.1 ("Representation of Entities") prescribes the behaviour
//! implemented here: internal entities declared in the DTD are *expanded at
//! their occurrences* before storage, and the original definitions are kept
//! so the meta-database can restore the references when the document is
//! retrieved. [`EntityCatalog`] is that definition store; the parser consults
//! it during expansion and the `xml2ordb` metadata module persists it.

use std::collections::BTreeMap;

use crate::error::{XmlError, XmlErrorKind};
use crate::escape::predefined_entity;
use crate::{cursor::Cursor, escape::decode_char_ref};

/// Declared general entities: name → replacement text.
///
/// Uses a `BTreeMap` so iteration (and therefore generated metadata and SQL)
/// is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EntityCatalog {
    entities: BTreeMap<String, String>,
}

impl EntityCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare an internal entity. First declaration wins, per XML 1.0 §4.2
    /// ("at user option, an XML processor may issue a warning if entities are
    /// declared multiple times").
    pub fn declare(&mut self, name: &str, replacement: &str) {
        self.entities.entry(name.to_string()).or_insert_with(|| replacement.to_string());
    }

    /// Replacement text for `name`: predefined entities first, then declared.
    pub fn lookup(&self, name: &str) -> Option<&str> {
        predefined_entity(name).or_else(|| self.entities.get(name).map(String::as_str))
    }

    /// Declared (non-predefined) entities in name order.
    pub fn declared(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entities.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    pub fn len(&self) -> usize {
        self.entities.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Fully expand entity and character references inside `text`.
    ///
    /// This is used for entity *replacement text*, which may itself contain
    /// references (XML 1.0 §4.4: "included" entities are recursively
    /// processed). Recursion through the same entity is a well-formedness
    /// error (`RecursiveEntity`).
    pub fn expand_text(&self, text: &str) -> Result<String, XmlError> {
        let mut active: Vec<String> = Vec::new();
        self.expand_inner(text, &mut active)
    }

    fn expand_inner(&self, text: &str, active: &mut Vec<String>) -> Result<String, XmlError> {
        let mut cur = Cursor::new(text);
        let mut out = String::with_capacity(text.len());
        while let Some(ch) = cur.peek() {
            if ch != '&' {
                out.push(ch);
                cur.bump();
                continue;
            }
            cur.bump(); // '&'
            if cur.eat("#") {
                let body = cur.take_until(";").map_err(|e| {
                    XmlError::new(XmlErrorKind::InvalidCharRef("&#".into()), e.position)
                })?;
                cur.eat(";");
                let decoded = decode_char_ref(body).ok_or_else(|| {
                    cur.error(XmlErrorKind::InvalidCharRef(format!("&#{body};")))
                })?;
                out.push(decoded);
            } else {
                let name = cur.take_until(";").map_err(|e| {
                    XmlError::new(XmlErrorKind::UnknownEntity("&".into()), e.position)
                })?;
                cur.eat(";");
                if active.iter().any(|n| n == name) {
                    return Err(cur.error(XmlErrorKind::RecursiveEntity(name.to_string())));
                }
                let replacement = self
                    .lookup(name)
                    .ok_or_else(|| cur.error(XmlErrorKind::UnknownEntity(name.to_string())))?
                    .to_string();
                if predefined_entity(name).is_some() {
                    // Predefined entities expand to literal markup characters
                    // and are NOT reprocessed.
                    out.push_str(&replacement);
                } else {
                    active.push(name.to_string());
                    let expanded = self.expand_inner(&replacement, active)?;
                    active.pop();
                    out.push_str(&expanded);
                }
            }
        }
        Ok(out)
    }

    /// Re-substitute declared entity references into serialized text — the
    /// §6.1 retrieval direction: "the characters can be replaced by the
    /// original entity references that can be found in the meta-table".
    ///
    /// Longer replacement texts are substituted first so overlapping
    /// definitions behave deterministically. Only non-empty replacement texts
    /// are considered.
    pub fn resubstitute(&self, text: &str) -> String {
        let mut pairs: Vec<(&str, &str)> = self
            .entities
            .iter()
            .filter(|(_, repl)| !repl.is_empty())
            .map(|(name, repl)| (name.as_str(), repl.as_str()))
            .collect();
        pairs.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(b.0)));
        let mut out = text.to_string();
        for (name, repl) in pairs {
            out = out.replace(repl, &format!("&{name};"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_prefers_predefined() {
        let mut cat = EntityCatalog::new();
        cat.declare("amp", "NOT AMP");
        assert_eq!(cat.lookup("amp"), Some("&"));
    }

    #[test]
    fn first_declaration_wins() {
        let mut cat = EntityCatalog::new();
        cat.declare("cs", "Computer Science");
        cat.declare("cs", "Something Else");
        assert_eq!(cat.lookup("cs"), Some("Computer Science"));
    }

    #[test]
    fn expands_nested_entities() {
        let mut cat = EntityCatalog::new();
        cat.declare("uni", "HTWK &city;");
        cat.declare("city", "Leipzig");
        assert_eq!(cat.expand_text("at &uni;!").unwrap(), "at HTWK Leipzig!");
    }

    #[test]
    fn detects_recursive_entities() {
        let mut cat = EntityCatalog::new();
        cat.declare("a", "&b;");
        cat.declare("b", "&a;");
        let err = cat.expand_text("&a;").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::RecursiveEntity(_)));
    }

    #[test]
    fn detects_self_recursion() {
        let mut cat = EntityCatalog::new();
        cat.declare("x", "pre &x; post");
        assert!(cat.expand_text("&x;").is_err());
    }

    #[test]
    fn predefined_expansion_is_not_reprocessed() {
        let cat = EntityCatalog::new();
        // &amp;lt; must become the literal text "&lt;", not "<".
        assert_eq!(cat.expand_text("&amp;lt;").unwrap(), "&lt;");
    }

    #[test]
    fn expands_char_refs_in_replacement_flow() {
        let cat = EntityCatalog::new();
        assert_eq!(cat.expand_text("A&#66;&#x43;").unwrap(), "ABC");
    }

    #[test]
    fn unknown_entity_is_error() {
        let cat = EntityCatalog::new();
        let err = cat.expand_text("&nosuch;").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::UnknownEntity(ref n) if n == "nosuch"));
    }

    #[test]
    fn resubstitute_restores_references_longest_first() {
        let mut cat = EntityCatalog::new();
        cat.declare("cs", "Computer Science");
        cat.declare("sci", "Science");
        let text = "Dept of Computer Science";
        assert_eq!(cat.resubstitute(text), "Dept of &cs;");
    }

    #[test]
    fn resubstitute_skips_empty_replacements() {
        let mut cat = EntityCatalog::new();
        cat.declare("nothing", "");
        assert_eq!(cat.resubstitute("abc"), "abc");
    }

    #[test]
    fn declared_iteration_is_sorted() {
        let mut cat = EntityCatalog::new();
        cat.declare("z", "1");
        cat.declare("a", "2");
        let names: Vec<&str> = cat.declared().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}

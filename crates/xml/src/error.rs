//! Error and source-position types shared by the parser.

use std::fmt;

/// A position in the source text, 1-based, as reported in error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    pub line: u32,
    pub column: u32,
    /// Byte offset into the input, 0-based.
    pub offset: usize,
}

impl Position {
    pub fn start() -> Self {
        Position { line: 1, column: 1, offset: 0 }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// The category of a well-formedness violation or syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended inside a construct.
    UnexpectedEof,
    /// A character that cannot start/continue the expected construct.
    Unexpected(String),
    /// `</b>` closing `<a>`, etc.
    MismatchedTag { open: String, close: String },
    /// The same attribute name appears twice on one element.
    DuplicateAttribute(String),
    /// A name does not match the XML `Name` production.
    InvalidName(String),
    /// Reference to an entity that is not predefined nor declared.
    UnknownEntity(String),
    /// Entity expansion recursed into itself.
    RecursiveEntity(String),
    /// `&#xZZ;` or a reference to a code point that is not a valid XML char.
    InvalidCharRef(String),
    /// Document has no root element, or content outside the root.
    StructureViolation(String),
    /// `--` inside a comment, `]]>` in character data, and similar.
    IllegalConstruct(String),
}

impl fmt::Display for XmlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlErrorKind::Unexpected(what) => write!(f, "unexpected {what}"),
            XmlErrorKind::MismatchedTag { open, close } => {
                write!(f, "closing tag </{close}> does not match <{open}>")
            }
            XmlErrorKind::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute '{name}'")
            }
            XmlErrorKind::InvalidName(name) => write!(f, "invalid XML name '{name}'"),
            XmlErrorKind::UnknownEntity(name) => write!(f, "unknown entity '&{name};'"),
            XmlErrorKind::RecursiveEntity(name) => {
                write!(f, "entity '&{name};' expands recursively")
            }
            XmlErrorKind::InvalidCharRef(raw) => write!(f, "invalid character reference '{raw}'"),
            XmlErrorKind::StructureViolation(msg) => write!(f, "{msg}"),
            XmlErrorKind::IllegalConstruct(msg) => write!(f, "{msg}"),
        }
    }
}

/// A well-formedness or syntax error, with the position where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    pub kind: XmlErrorKind,
    pub position: Position,
}

impl XmlError {
    pub fn new(kind: XmlErrorKind, position: Position) -> Self {
        XmlError { kind, position }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at {}: {}", self.position, self.kind)
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_kind() {
        let err = XmlError::new(
            XmlErrorKind::DuplicateAttribute("id".into()),
            Position { line: 3, column: 9, offset: 42 },
        );
        let msg = err.to_string();
        assert!(msg.contains("3:9"), "{msg}");
        assert!(msg.contains("duplicate attribute 'id'"), "{msg}");
    }

    #[test]
    fn mismatched_tag_message_names_both_tags() {
        let kind = XmlErrorKind::MismatchedTag { open: "a".into(), close: "b".into() };
        let msg = kind.to_string();
        assert!(msg.contains("</b>") && msg.contains("<a>"), "{msg}");
    }

    #[test]
    fn position_start_is_line_one_column_one() {
        let p = Position::start();
        assert_eq!((p.line, p.column, p.offset), (1, 1, 0));
    }
}

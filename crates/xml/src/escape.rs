//! Escaping of character data and attribute values.
//!
//! §6.1 of the paper discusses exactly this machinery: markup characters
//! "are stored using the lt, gt, amp, quot, and apos entities", the parser
//! "transforms those entity references into the corresponding character
//! literals that are stored in the database", and on retrieval the
//! serializer must re-escape them. These helpers implement both directions.

/// Escape character data content: `&`, `<` and `>` (the latter for safety
/// with `]]>` sequences).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escape an attribute value for emission inside double quotes.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(ch),
        }
    }
    out
}

/// The replacement text of a predefined entity, if `name` is one of the five.
pub fn predefined_entity(name: &str) -> Option<&'static str> {
    match name {
        "lt" => Some("<"),
        "gt" => Some(">"),
        "amp" => Some("&"),
        "apos" => Some("'"),
        "quot" => Some("\""),
        _ => None,
    }
}

/// True if `ch` is a character permitted by the XML 1.0 `Char` production.
pub fn is_xml_char(ch: char) -> bool {
    matches!(ch,
        '\u{9}' | '\u{A}' | '\u{D}'
        | '\u{20}'..='\u{D7FF}'
        | '\u{E000}'..='\u{FFFD}'
        | '\u{10000}'..='\u{10FFFF}')
}

/// Decode a character reference body (the part between `&#` and `;`),
/// e.g. `"x41"` or `"65"`. Returns `None` for syntax errors or code points
/// outside the XML `Char` production.
pub fn decode_char_ref(body: &str) -> Option<char> {
    let code = if let Some(hex) = body.strip_prefix('x').or_else(|| body.strip_prefix('X')) {
        u32::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<u32>().ok()?
    };
    let ch = char::from_u32(code)?;
    is_xml_char(ch).then_some(ch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_text_markup_characters() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }

    #[test]
    fn escapes_attr_quotes_and_whitespace_controls() {
        assert_eq!(escape_attr("\"x\"\n"), "&quot;x&quot;&#10;");
    }

    #[test]
    fn all_five_predefined_entities_resolve() {
        assert_eq!(predefined_entity("lt"), Some("<"));
        assert_eq!(predefined_entity("gt"), Some(">"));
        assert_eq!(predefined_entity("amp"), Some("&"));
        assert_eq!(predefined_entity("apos"), Some("'"));
        assert_eq!(predefined_entity("quot"), Some("\""));
        assert_eq!(predefined_entity("nbsp"), None);
    }

    #[test]
    fn decodes_decimal_and_hex_char_refs() {
        assert_eq!(decode_char_ref("65"), Some('A'));
        assert_eq!(decode_char_ref("x41"), Some('A'));
        assert_eq!(decode_char_ref("X41"), Some('A'));
        assert_eq!(decode_char_ref("x20AC"), Some('€'));
    }

    #[test]
    fn rejects_invalid_char_refs() {
        assert_eq!(decode_char_ref(""), None);
        assert_eq!(decode_char_ref("x"), None);
        assert_eq!(decode_char_ref("zz"), None);
        assert_eq!(decode_char_ref("0"), None); // NUL is not an XML char
        assert_eq!(decode_char_ref("x1F"), None); // control char
        assert_eq!(decode_char_ref("xD800"), None); // surrogate
        assert_eq!(decode_char_ref("x110000"), None); // out of range
    }

    #[test]
    fn tab_cr_lf_are_xml_chars_but_other_controls_are_not() {
        assert!(is_xml_char('\t') && is_xml_char('\r') && is_xml_char('\n'));
        assert!(!is_xml_char('\u{0}') && !is_xml_char('\u{B}') && !is_xml_char('\u{1F}'));
    }
}

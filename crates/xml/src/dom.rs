//! Arena-based DOM tree.
//!
//! This is the "XML DOM tree" of the paper's Fig. 1: "the elements and their
//! values as well as the attributes and their values". Comments and
//! processing instructions are kept as first-class nodes because §6.1/§7
//! measure exactly what happens to them on the way through the database.
//!
//! Nodes live in a flat arena inside [`Document`]; [`NodeId`] is a plain
//! index, which keeps the tree cheap to clone and trivially serde-free.

use crate::name::QName;
use crate::prolog::{DoctypeDecl, XmlDeclaration};

/// Index of a node in a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An attribute instance on an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub name: QName,
    pub value: String,
}

/// Payload of an element node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementData {
    pub name: QName,
    pub attributes: Vec<Attribute>,
    pub children: Vec<NodeId>,
}

/// The different node kinds the pipeline distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    Element(ElementData),
    /// Character data with entity and character references already expanded.
    Text(String),
    /// A CDATA section (content kept separate from Text so serialization can
    /// reproduce it, and so round-trip scoring can tell them apart).
    CData(String),
    Comment(String),
    ProcessingInstruction { target: String, data: String },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Node {
    parent: Option<NodeId>,
    kind: NodeKind,
}

/// A parsed XML document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Document {
    pub declaration: Option<XmlDeclaration>,
    pub doctype: Option<DoctypeDecl>,
    nodes: Vec<Node>,
    root: Option<NodeId>,
    /// Comments/PIs appearing before the root element.
    pub prolog_misc: Vec<NodeId>,
    /// Comments/PIs appearing after the root element.
    pub epilog_misc: Vec<NodeId>,
}

impl Document {
    pub fn new() -> Self {
        Self::default()
    }

    /// The root element, if the document has one.
    pub fn root_element(&self) -> Option<NodeId> {
        self.root
    }

    /// Install `id` as the document's root element. Public because document
    /// *builders* (the retrieval side of the pipeline, generators, tests)
    /// construct trees bottom-up and attach the root last.
    pub fn set_root(&mut self, id: NodeId) {
        self.root = Some(id);
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Allocate a node with no parent (the caller attaches it).
    pub fn push_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { parent: None, kind });
        id
    }

    /// Create a detached element node.
    pub fn create_element(&mut self, name: QName) -> NodeId {
        self.push_node(NodeKind::Element(ElementData {
            name,
            attributes: Vec::new(),
            children: Vec::new(),
        }))
    }

    /// Create a detached text node.
    pub fn create_text(&mut self, text: &str) -> NodeId {
        self.push_node(NodeKind::Text(text.to_string()))
    }

    /// Create a detached comment node.
    pub fn create_comment(&mut self, text: &str) -> NodeId {
        self.push_node(NodeKind::Comment(text.to_string()))
    }

    /// Create a detached processing-instruction node.
    pub fn create_pi(&mut self, target: &str, data: &str) -> NodeId {
        self.push_node(NodeKind::ProcessingInstruction {
            target: target.to_string(),
            data: data.to_string(),
        })
    }

    /// Create an element and install it as the document root.
    pub fn create_root(&mut self, name: QName) -> NodeId {
        let id = self.create_element(name);
        self.set_root(id);
        id
    }

    /// Append `child` to `parent`'s child list. Panics if `parent` is not an
    /// element or `child` already has a parent.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        assert!(self.nodes[child.index()].parent.is_none(), "child already attached");
        self.nodes[child.index()].parent = Some(parent);
        match &mut self.nodes[parent.index()].kind {
            NodeKind::Element(el) => el.children.push(child),
            other => panic!("cannot append a child to a non-element node: {other:?}"),
        }
    }

    /// Replace an element's child list with a permutation of itself —
    /// used by consumers that must restore a canonical child order.
    /// Panics if `new_children` is not a permutation of the current list.
    pub fn replace_children(&mut self, parent: NodeId, new_children: Vec<NodeId>) {
        match &mut self.nodes[parent.index()].kind {
            NodeKind::Element(el) => {
                let mut a = el.children.clone();
                let mut b = new_children.clone();
                a.sort();
                b.sort();
                assert_eq!(a, b, "replace_children requires a permutation");
                el.children = new_children;
            }
            other => panic!("cannot replace children of a non-element node: {other:?}"),
        }
    }

    /// Set (or replace) an attribute on an element node.
    pub fn set_attribute(&mut self, element: NodeId, name: QName, value: &str) {
        match &mut self.nodes[element.index()].kind {
            NodeKind::Element(el) => {
                if let Some(attr) = el.attributes.iter_mut().find(|a| a.name == name) {
                    attr.value = value.to_string();
                } else {
                    el.attributes.push(Attribute { name, value: value.to_string() });
                }
            }
            other => panic!("cannot set an attribute on a non-element node: {other:?}"),
        }
    }

    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()].kind
    }

    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// Element payload of `id`; `None` for non-element nodes.
    pub fn element(&self, id: NodeId) -> Option<&ElementData> {
        match &self.nodes[id.index()].kind {
            NodeKind::Element(el) => Some(el),
            _ => None,
        }
    }

    /// Qualified name of an element node. Panics on non-element nodes.
    pub fn name(&self, id: NodeId) -> &QName {
        &self.element(id).expect("name() called on a non-element node").name
    }

    /// Children of an element node (empty for other nodes).
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        self.element(id).map(|el| el.children.as_slice()).unwrap_or(&[])
    }

    /// Child *elements* of a node.
    pub fn child_elements(&self, id: NodeId) -> Vec<NodeId> {
        self.children(id)
            .iter()
            .copied()
            .filter(|c| matches!(self.kind(*c), NodeKind::Element(_)))
            .collect()
    }

    /// Child elements with the given (unprefixed) local name.
    pub fn child_elements_named(&self, id: NodeId, local: &str) -> Vec<NodeId> {
        self.child_elements(id)
            .into_iter()
            .filter(|c| self.name(*c).local == local)
            .collect()
    }

    /// First child element with the given local name.
    pub fn first_child_named(&self, id: NodeId, local: &str) -> Option<NodeId> {
        self.child_elements_named(id, local).into_iter().next()
    }

    /// Attribute value by raw name (`prefix:local` or plain local name).
    pub fn attribute(&self, id: NodeId, raw_name: &str) -> Option<&str> {
        self.element(id)?
            .attributes
            .iter()
            .find(|a| a.name.as_raw() == raw_name)
            .map(|a| a.value.as_str())
    }

    /// All attributes of an element (empty slice for other nodes).
    pub fn attributes(&self, id: NodeId) -> &[Attribute] {
        self.element(id).map(|el| el.attributes.as_slice()).unwrap_or(&[])
    }

    /// Concatenated text content of the subtree rooted at `id`
    /// (Text and CData nodes, document order).
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match self.kind(id) {
            NodeKind::Text(t) | NodeKind::CData(t) => out.push_str(t),
            NodeKind::Element(el) => {
                for child in &el.children {
                    self.collect_text(*child, out);
                }
            }
            _ => {}
        }
    }

    /// Depth-first pre-order traversal of the subtree rooted at `id`.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            out.push(cur);
            // Push children reversed so pre-order pops left-to-right.
            for child in self.children(cur).iter().rev() {
                stack.push(*child);
            }
        }
        out
    }

    /// Count of nodes by a predicate over the whole document (root subtree
    /// plus prolog/epilog misc nodes).
    pub fn count_nodes(&self, pred: impl Fn(&NodeKind) -> bool) -> usize {
        let mut ids: Vec<NodeId> = Vec::new();
        ids.extend(&self.prolog_misc);
        if let Some(root) = self.root {
            ids.extend(self.descendants(root));
        }
        ids.extend(&self.epilog_misc);
        ids.into_iter().filter(|id| pred(self.kind(*id))).count()
    }

    /// Depth of the deepest element (root element = depth 1); 0 if no root.
    pub fn max_depth(&self) -> usize {
        fn depth_of(doc: &Document, id: NodeId) -> usize {
            match doc.kind(id) {
                NodeKind::Element(_) => {
                    1 + doc
                        .child_elements(id)
                        .into_iter()
                        .map(|c| depth_of(doc, c))
                        .max()
                        .unwrap_or(0)
                }
                _ => 0,
            }
        }
        self.root.map(|r| depth_of(self, r)).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: &str) -> QName {
        QName::local(n)
    }

    #[test]
    fn builds_a_small_tree() {
        let mut doc = Document::new();
        let root = doc.create_root(q("University"));
        let student = doc.create_element(q("Student"));
        doc.append_child(root, student);
        doc.set_attribute(student, q("StudNr"), "23374");
        let name = doc.create_element(q("LName"));
        doc.append_child(student, name);
        let text = doc.create_text("Conrad");
        doc.append_child(name, text);

        assert_eq!(doc.root_element(), Some(root));
        assert_eq!(doc.name(root).local, "University");
        assert_eq!(doc.attribute(student, "StudNr"), Some("23374"));
        assert_eq!(doc.text_content(student), "Conrad");
        assert_eq!(doc.parent(text), Some(name));
        assert_eq!(doc.max_depth(), 3);
    }

    #[test]
    fn set_attribute_replaces_existing() {
        let mut doc = Document::new();
        let root = doc.create_root(q("a"));
        doc.set_attribute(root, q("x"), "1");
        doc.set_attribute(root, q("x"), "2");
        assert_eq!(doc.attributes(root).len(), 1);
        assert_eq!(doc.attribute(root, "x"), Some("2"));
    }

    #[test]
    fn child_elements_filters_non_elements() {
        let mut doc = Document::new();
        let root = doc.create_root(q("a"));
        let t = doc.create_text("x");
        doc.append_child(root, t);
        let c = doc.create_comment("note");
        doc.append_child(root, c);
        let b = doc.create_element(q("b"));
        doc.append_child(root, b);
        assert_eq!(doc.child_elements(root), vec![b]);
        assert_eq!(doc.child_elements_named(root, "b"), vec![b]);
        assert_eq!(doc.first_child_named(root, "zzz"), None);
    }

    #[test]
    fn descendants_are_preorder() {
        let mut doc = Document::new();
        let root = doc.create_root(q("r"));
        let a = doc.create_element(q("a"));
        let b = doc.create_element(q("b"));
        let a1 = doc.create_element(q("a1"));
        doc.append_child(root, a);
        doc.append_child(a, a1);
        doc.append_child(root, b);
        assert_eq!(doc.descendants(root), vec![root, a, a1, b]);
    }

    #[test]
    fn count_nodes_includes_misc() {
        let mut doc = Document::new();
        let pi = doc.create_pi("style", "css");
        doc.prolog_misc.push(pi);
        let root = doc.create_root(q("r"));
        let c = doc.create_comment("x");
        doc.append_child(root, c);
        assert_eq!(doc.count_nodes(|k| matches!(k, NodeKind::Comment(_))), 1);
        assert_eq!(
            doc.count_nodes(|k| matches!(k, NodeKind::ProcessingInstruction { .. })),
            1
        );
    }

    #[test]
    #[should_panic(expected = "child already attached")]
    fn double_attach_panics() {
        let mut doc = Document::new();
        let root = doc.create_root(q("r"));
        let a = doc.create_element(q("a"));
        doc.append_child(root, a);
        doc.append_child(root, a);
    }
}

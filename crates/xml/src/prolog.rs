//! Document prolog information: the XML declaration and the DOCTYPE
//! declaration.
//!
//! The paper's meta-table (§5) stores exactly this prolog information —
//! `XMLVersion`, `CharacterSet`, `Standalone`, plus the document's schema
//! (DTD) identifier — so these types carry everything the metadata module
//! needs to persist and restore it.

/// The `<?xml version=... encoding=... standalone=...?>` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlDeclaration {
    pub version: String,
    pub encoding: Option<String>,
    pub standalone: Option<bool>,
}

impl Default for XmlDeclaration {
    fn default() -> Self {
        XmlDeclaration { version: "1.0".to_string(), encoding: None, standalone: None }
    }
}

impl XmlDeclaration {
    /// Render back to `<?xml ...?>` form.
    pub fn to_xml(&self) -> String {
        let mut out = format!("<?xml version=\"{}\"", self.version);
        if let Some(enc) = &self.encoding {
            out.push_str(&format!(" encoding=\"{enc}\""));
        }
        if let Some(sd) = self.standalone {
            out.push_str(&format!(" standalone=\"{}\"", if sd { "yes" } else { "no" }));
        }
        out.push_str("?>");
        out
    }
}

/// External identifier of a DOCTYPE: SYSTEM or PUBLIC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExternalId {
    System { system: String },
    Public { public: String, system: String },
}

/// The `<!DOCTYPE name ...>` declaration.
///
/// The internal subset is captured *verbatim* (`internal_subset`); the
/// `xmlord-dtd` crate parses it into the DTD DOM tree of Fig. 1. The XML
/// parser itself only scans it for `<!ENTITY ...>` declarations so general
/// entities can be expanded during document parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoctypeDecl {
    /// Document type name — must match the root element for validity.
    pub name: String,
    pub external_id: Option<ExternalId>,
    /// Raw text between `[` and `]`, if an internal subset was present.
    pub internal_subset: Option<String>,
}

impl DoctypeDecl {
    /// Render back to `<!DOCTYPE ...>` form.
    pub fn to_xml(&self) -> String {
        let mut out = format!("<!DOCTYPE {}", self.name);
        match &self.external_id {
            Some(ExternalId::System { system }) => out.push_str(&format!(" SYSTEM \"{system}\"")),
            Some(ExternalId::Public { public, system }) => {
                out.push_str(&format!(" PUBLIC \"{public}\" \"{system}\""))
            }
            None => {}
        }
        if let Some(subset) = &self.internal_subset {
            out.push_str(" [");
            out.push_str(subset);
            out.push(']');
        }
        out.push('>');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_declaration_is_version_one() {
        let d = XmlDeclaration::default();
        assert_eq!(d.to_xml(), "<?xml version=\"1.0\"?>");
    }

    #[test]
    fn declaration_renders_all_fields() {
        let d = XmlDeclaration {
            version: "1.0".into(),
            encoding: Some("UTF-8".into()),
            standalone: Some(true),
        };
        assert_eq!(d.to_xml(), "<?xml version=\"1.0\" encoding=\"UTF-8\" standalone=\"yes\"?>");
    }

    #[test]
    fn doctype_renders_system_id_and_subset() {
        let d = DoctypeDecl {
            name: "University".into(),
            external_id: Some(ExternalId::System { system: "uni.dtd".into() }),
            internal_subset: Some("<!ENTITY cs \"Computer Science\">".into()),
        };
        assert_eq!(
            d.to_xml(),
            "<!DOCTYPE University SYSTEM \"uni.dtd\" [<!ENTITY cs \"Computer Science\">]>"
        );
    }

    #[test]
    fn doctype_renders_public_id() {
        let d = DoctypeDecl {
            name: "x".into(),
            external_id: Some(ExternalId::Public {
                public: "-//X//EN".into(),
                system: "x.dtd".into(),
            }),
            internal_subset: None,
        };
        assert_eq!(d.to_xml(), "<!DOCTYPE x PUBLIC \"-//X//EN\" \"x.dtd\">");
    }
}

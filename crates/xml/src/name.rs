//! XML names and namespace-qualified names.
//!
//! The mapping layer (paper §5) derives database identifiers from element and
//! attribute names, and the meta-table stores namespace information, so names
//! are first-class here: validated on parse, split into `prefix:local`.

use std::fmt;

/// A (possibly prefixed) XML qualified name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QName {
    /// Namespace prefix, empty for unprefixed names.
    pub prefix: String,
    /// Local part of the name.
    pub local: String,
}

impl QName {
    /// Build a name from its raw `prefix:local` form.
    ///
    /// Returns `None` when the raw text is not a valid QName (empty parts,
    /// more than one colon, invalid characters).
    pub fn parse(raw: &str) -> Option<QName> {
        let mut parts = raw.splitn(3, ':');
        let first = parts.next()?;
        match (parts.next(), parts.next()) {
            (None, _) => {
                if is_valid_ncname(first) {
                    Some(QName { prefix: String::new(), local: first.to_string() })
                } else {
                    None
                }
            }
            (Some(second), None) => {
                if is_valid_ncname(first) && is_valid_ncname(second) {
                    Some(QName { prefix: first.to_string(), local: second.to_string() })
                } else {
                    None
                }
            }
            (Some(_), Some(_)) => None,
        }
    }

    /// An unprefixed name. Panics if `local` is not a valid NCName — intended
    /// for names that originate in code, not in documents.
    pub fn local(local: &str) -> QName {
        assert!(is_valid_ncname(local), "invalid NCName {local:?}");
        QName { prefix: String::new(), local: local.to_string() }
    }

    /// Raw `prefix:local` (or just `local`) form.
    pub fn as_raw(&self) -> String {
        if self.prefix.is_empty() {
            self.local.clone()
        } else {
            format!("{}:{}", self.prefix, self.local)
        }
    }

    pub fn has_prefix(&self) -> bool {
        !self.prefix.is_empty()
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.prefix.is_empty() {
            write!(f, "{}", self.local)
        } else {
            write!(f, "{}:{}", self.prefix, self.local)
        }
    }
}

/// First character of an XML name (colon excluded: NCName).
pub fn is_name_start_char(ch: char) -> bool {
    matches!(ch,
        'A'..='Z' | 'a'..='z' | '_'
        | '\u{C0}'..='\u{D6}' | '\u{D8}'..='\u{F6}' | '\u{F8}'..='\u{2FF}'
        | '\u{370}'..='\u{37D}' | '\u{37F}'..='\u{1FFF}'
        | '\u{200C}'..='\u{200D}' | '\u{2070}'..='\u{218F}'
        | '\u{2C00}'..='\u{2FEF}' | '\u{3001}'..='\u{D7FF}'
        | '\u{F900}'..='\u{FDCF}' | '\u{FDF0}'..='\u{FFFD}'
        | '\u{10000}'..='\u{EFFFF}')
}

/// Subsequent character of an XML name (colon excluded: NCName).
pub fn is_name_char(ch: char) -> bool {
    is_name_start_char(ch)
        || matches!(ch, '-' | '.' | '0'..='9' | '\u{B7}'
            | '\u{300}'..='\u{36F}' | '\u{203F}'..='\u{2040}')
}

/// Validate an NCName (a name with no colon).
pub fn is_valid_ncname(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) if is_name_start_char(first) => chars.all(is_name_char),
        _ => false,
    }
}

/// Validate a full name as it may appear in a document (at most one colon).
pub fn is_valid_qname(s: &str) -> bool {
    QName::parse(s).is_some()
}

/// Validate an `Nmtoken` (any name characters, colon allowed per XML spec).
pub fn is_valid_nmtoken(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| is_name_char(c) || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_unprefixed_names() {
        let q = QName::parse("University").unwrap();
        assert_eq!(q.prefix, "");
        assert_eq!(q.local, "University");
        assert_eq!(q.as_raw(), "University");
    }

    #[test]
    fn parses_prefixed_names() {
        let q = QName::parse("uni:Student").unwrap();
        assert_eq!(q.prefix, "uni");
        assert_eq!(q.local, "Student");
        assert_eq!(q.to_string(), "uni:Student");
    }

    #[test]
    fn rejects_malformed_names() {
        for bad in ["", ":", "a:", ":b", "a:b:c", "1abc", "-x", "a b", "a\u{0}"] {
            assert!(QName::parse(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accepts_names_with_digits_dots_dashes_inside() {
        for good in ["a1", "a-b", "a.b", "_x", "Straße", "日本語"] {
            assert!(QName::parse(good).is_some(), "rejected {good:?}");
        }
    }

    #[test]
    fn nmtoken_allows_leading_digit() {
        assert!(is_valid_nmtoken("1st"));
        assert!(!is_valid_ncname("1st"));
        assert!(!is_valid_nmtoken(""));
    }
}

//! A character cursor over the input with line/column tracking.
//!
//! Both the XML parser and the DTD parser (in `xmlord-dtd`) consume input
//! through this cursor so error positions are consistent across the two
//! parsers of the paper's Fig. 1 architecture.

use crate::error::{Position, XmlError, XmlErrorKind};

/// A peekable cursor over `&str` that tracks the current [`Position`].
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    input: &'a str,
    pos: Position,
}

impl<'a> Cursor<'a> {
    pub fn new(input: &'a str) -> Self {
        Cursor { input, pos: Position::start() }
    }

    /// Current position (of the next unread character).
    pub fn position(&self) -> Position {
        self.pos
    }

    /// The unread remainder of the input.
    pub fn rest(&self) -> &'a str {
        &self.input[self.pos.offset..]
    }

    pub fn is_eof(&self) -> bool {
        self.pos.offset >= self.input.len()
    }

    /// Peek at the next character without consuming it.
    pub fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    /// Peek at the character `n` characters ahead (0 == `peek`).
    pub fn peek_nth(&self, n: usize) -> Option<char> {
        self.rest().chars().nth(n)
    }

    /// True if the unread input starts with `s`.
    pub fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    /// Consume and return the next character.
    pub fn bump(&mut self) -> Option<char> {
        let ch = self.peek()?;
        self.pos.offset += ch.len_utf8();
        if ch == '\n' {
            self.pos.line += 1;
            self.pos.column = 1;
        } else {
            self.pos.column += 1;
        }
        Some(ch)
    }

    /// Consume `s` if the input starts with it; return whether it did.
    pub fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in s.chars() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    /// Consume `s` or fail with an `Unexpected` error mentioning `what`.
    pub fn expect(&mut self, s: &str, what: &str) -> Result<(), XmlError> {
        if self.eat(s) {
            Ok(())
        } else if self.is_eof() {
            Err(XmlError::new(XmlErrorKind::UnexpectedEof, self.pos))
        } else {
            Err(XmlError::new(
                XmlErrorKind::Unexpected(format!(
                    "input at '{}' (expected {what})",
                    preview(self.rest())
                )),
                self.pos,
            ))
        }
    }

    /// Consume characters while `pred` holds; return the consumed slice.
    pub fn take_while(&mut self, mut pred: impl FnMut(char) -> bool) -> &'a str {
        let start = self.pos.offset;
        while let Some(ch) = self.peek() {
            if pred(ch) {
                self.bump();
            } else {
                break;
            }
        }
        &self.input[start..self.pos.offset]
    }

    /// Consume XML whitespace (space, tab, CR, LF); return whether any was consumed.
    pub fn skip_ws(&mut self) -> bool {
        !self.take_while(is_xml_ws).is_empty()
    }

    /// Consume up to (but not including) the first occurrence of `delim`.
    /// Errors with `UnexpectedEof` if `delim` never occurs.
    pub fn take_until(&mut self, delim: &str) -> Result<&'a str, XmlError> {
        let rest = self.rest();
        match rest.find(delim) {
            Some(idx) => {
                let start = self.pos.offset;
                // Advance char by char to keep line/column tracking correct.
                while self.pos.offset < start + idx {
                    self.bump();
                }
                Ok(&self.input[start..start + idx])
            }
            None => Err(XmlError::new(XmlErrorKind::UnexpectedEof, self.pos)),
        }
    }

    pub fn error(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::new(kind, self.pos)
    }
}

/// XML S production: space, tab, carriage return, line feed.
pub fn is_xml_ws(ch: char) -> bool {
    matches!(ch, ' ' | '\t' | '\r' | '\n')
}

/// A short preview of the input for error messages.
fn preview(s: &str) -> String {
    let mut out: String = s.chars().take(16).collect();
    if s.chars().count() > 16 {
        out.push('…');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_lines_and_columns() {
        let mut c = Cursor::new("ab\ncd");
        assert_eq!(c.bump(), Some('a'));
        assert_eq!(c.position().column, 2);
        c.bump();
        c.bump(); // newline
        assert_eq!(c.position().line, 2);
        assert_eq!(c.position().column, 1);
        assert_eq!(c.bump(), Some('c'));
        assert_eq!(c.position().column, 2);
    }

    #[test]
    fn eat_consumes_only_on_match() {
        let mut c = Cursor::new("<!--x");
        assert!(!c.eat("<!DOCTYPE"));
        assert_eq!(c.position().offset, 0);
        assert!(c.eat("<!--"));
        assert_eq!(c.rest(), "x");
    }

    #[test]
    fn take_until_returns_span_and_stops_before_delimiter() {
        let mut c = Cursor::new("hello-->tail");
        let got = c.take_until("-->").unwrap();
        assert_eq!(got, "hello");
        assert!(c.starts_with("-->"));
    }

    #[test]
    fn take_until_eof_is_error() {
        let mut c = Cursor::new("no terminator");
        assert!(c.take_until("-->").is_err());
    }

    #[test]
    fn take_while_handles_multibyte() {
        let mut c = Cursor::new("äöü!");
        let got = c.take_while(|ch| ch != '!');
        assert_eq!(got, "äöü");
        assert_eq!(c.peek(), Some('!'));
    }

    #[test]
    fn skip_ws_reports_whether_it_skipped() {
        let mut c = Cursor::new("  x");
        assert!(c.skip_ws());
        assert!(!c.skip_ws());
        assert_eq!(c.peek(), Some('x'));
    }

    #[test]
    fn expect_reports_expected_token() {
        let mut c = Cursor::new("abc");
        let err = c.expect(">", "tag close").unwrap_err();
        assert!(err.to_string().contains("tag close"));
    }
}

//! DOM → XML text serialization.
//!
//! This is the retrieval direction of the paper's pipeline: after a document
//! is reconstructed from the database, it must be rendered back to XML. The
//! [`SerializeOptions::entity_catalog`] hook implements §6.1's proposal of
//! re-substituting the original entity references recorded in the meta-table.

use std::io;

use crate::dom::{Document, NodeId, NodeKind};
use crate::entities::EntityCatalog;
use crate::escape::{escape_attr, escape_text};

/// Output target shared by [`serialize`] (a `String`, infallible) and
/// [`serialize_to`] (any [`io::Write`]). One generic writer drives both,
/// so the streaming path is byte-identical to the in-memory path by
/// construction rather than by parallel maintenance.
trait Sink {
    fn put_str(&mut self, s: &str) -> io::Result<()>;
    fn put_char(&mut self, c: char) -> io::Result<()>;
}

impl Sink for String {
    fn put_str(&mut self, s: &str) -> io::Result<()> {
        self.push_str(s);
        Ok(())
    }

    fn put_char(&mut self, c: char) -> io::Result<()> {
        self.push(c);
        Ok(())
    }
}

/// Adapter turning an [`io::Write`] into a [`Sink`]. Callers wanting
/// buffering wrap their writer in a [`io::BufWriter`]; the serializer
/// itself emits naturally chunky `put_str` calls.
struct IoSink<'a, W: io::Write>(&'a mut W);

impl<W: io::Write> Sink for IoSink<'_, W> {
    fn put_str(&mut self, s: &str) -> io::Result<()> {
        self.0.write_all(s.as_bytes())
    }

    fn put_char(&mut self, c: char) -> io::Result<()> {
        let mut buf = [0u8; 4];
        self.0.write_all(c.encode_utf8(&mut buf).as_bytes())
    }
}

/// Controls for [`serialize`].
#[derive(Debug, Clone, Default)]
pub struct SerializeOptions {
    /// Emit `<?xml ...?>` when the document has one.
    pub include_declaration: bool,
    /// Emit the DOCTYPE declaration when the document has one.
    pub include_doctype: bool,
    /// Pretty-print with this many spaces per level; `None` = compact.
    pub indent: Option<usize>,
    /// Re-substitute these declared entities into text content (§6.1).
    pub entity_catalog: Option<EntityCatalog>,
}

impl SerializeOptions {
    /// Compact output, no prolog.
    pub fn compact() -> Self {
        SerializeOptions::default()
    }

    /// Full-document output: declaration + doctype, 2-space indent.
    pub fn document() -> Self {
        SerializeOptions {
            include_declaration: true,
            include_doctype: true,
            indent: Some(2),
            entity_catalog: None,
        }
    }

    pub fn with_entities(mut self, catalog: EntityCatalog) -> Self {
        self.entity_catalog = Some(catalog);
        self
    }
}

/// Serialize a whole document.
pub fn serialize(doc: &Document, opts: &SerializeOptions) -> String {
    let mut out = String::new();
    serialize_sink(doc, opts, &mut out).expect("String sink is infallible");
    out
}

/// Serialize a whole document to any [`io::Write`] — the streaming path.
/// Emits exactly the bytes [`serialize`] would collect into a `String`,
/// without materializing the document text in memory. Wrap slow writers
/// (files, sockets) in a [`io::BufWriter`]; the call does not flush.
pub fn serialize_to<W: io::Write>(
    doc: &Document,
    opts: &SerializeOptions,
    out: &mut W,
) -> io::Result<()> {
    serialize_sink(doc, opts, &mut IoSink(out))
}

fn serialize_sink<S: Sink>(doc: &Document, opts: &SerializeOptions, out: &mut S) -> io::Result<()> {
    if opts.include_declaration {
        if let Some(decl) = &doc.declaration {
            out.put_str(&decl.to_xml())?;
            out.put_char('\n')?;
        }
    }
    if opts.include_doctype {
        if let Some(dt) = &doc.doctype {
            out.put_str(&dt.to_xml())?;
            out.put_char('\n')?;
        }
    }
    for misc in &doc.prolog_misc {
        write_node(doc, *misc, opts, 0, out)?;
        if opts.indent.is_some() {
            out.put_char('\n')?;
        }
    }
    if let Some(root) = doc.root_element() {
        write_node(doc, root, opts, 0, out)?;
    }
    for misc in &doc.epilog_misc {
        if opts.indent.is_some() {
            out.put_char('\n')?;
        }
        write_node(doc, *misc, opts, 0, out)?;
    }
    Ok(())
}

/// Serialize a single subtree compactly (no prolog).
pub fn serialize_node(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, id, &SerializeOptions::compact(), 0, &mut out)
        .expect("String sink is infallible");
    out
}

fn write_node<S: Sink>(
    doc: &Document,
    id: NodeId,
    opts: &SerializeOptions,
    depth: usize,
    out: &mut S,
) -> io::Result<()> {
    match doc.kind(id) {
        NodeKind::Element(el) => {
            out.put_char('<')?;
            out.put_str(&el.name.as_raw())?;
            for attr in &el.attributes {
                out.put_char(' ')?;
                out.put_str(&attr.name.as_raw())?;
                out.put_str("=\"")?;
                out.put_str(&escape_attr(&attr.value))?;
                out.put_char('"')?;
            }
            if el.children.is_empty() {
                out.put_str("/>")?;
                return Ok(());
            }
            out.put_char('>')?;
            // Indent only around element children; any text child forces
            // mixed-content mode, which must not introduce whitespace.
            let element_only = opts.indent.is_some()
                && el.children.iter().all(|c| {
                    matches!(
                        doc.kind(*c),
                        NodeKind::Element(_)
                            | NodeKind::Comment(_)
                            | NodeKind::ProcessingInstruction { .. }
                    )
                });
            for child in &el.children {
                if element_only {
                    out.put_char('\n')?;
                    push_indent(opts, depth + 1, out)?;
                }
                write_node(doc, *child, opts, depth + 1, out)?;
            }
            if element_only {
                out.put_char('\n')?;
                push_indent(opts, depth, out)?;
            }
            out.put_str("</")?;
            out.put_str(&el.name.as_raw())?;
            out.put_char('>')?;
        }
        NodeKind::Text(text) => {
            let escaped = escape_text(text);
            match &opts.entity_catalog {
                Some(cat) => out.put_str(&cat.resubstitute(&escaped))?,
                None => out.put_str(&escaped)?,
            }
        }
        NodeKind::CData(text) => {
            // A CDATA section cannot contain its own terminator. Split the
            // content into adjacent sections at every `]]>`: the first
            // section ends after `]]` and the next one reopens before `>`,
            // so the character data reparses unchanged.
            out.put_str("<![CDATA[")?;
            out.put_str(&text.replace("]]>", "]]]]><![CDATA[>"))?;
            out.put_str("]]>")?;
        }
        NodeKind::Comment(text) => {
            out.put_str("<!--")?;
            out.put_str(&escape_comment(text))?;
            out.put_str("-->")?;
        }
        NodeKind::ProcessingInstruction { target, data } => {
            out.put_str("<?")?;
            out.put_str(target)?;
            if !data.is_empty() {
                out.put_char(' ')?;
                // PI data cannot contain the `?>` terminator; break the
                // pair with a space so the PI still parses.
                out.put_str(&data.replace("?>", "? >"))?;
            }
            out.put_str("?>")?;
        }
    }
    Ok(())
}

/// Make comment text well-formed: XML 1.0 §2.5 forbids `--` inside a
/// comment and a trailing `-` (which would glue onto the closing `-->`).
/// A space is inserted between consecutive dashes and after a final dash;
/// the result contains neither pattern, so serialization stays infallible
/// and the output reparses as a comment.
fn escape_comment(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        if c == '-' && out.ends_with('-') {
            out.push(' ');
        }
        out.push(c);
    }
    if out.ends_with('-') {
        out.push(' ');
    }
    out
}

fn push_indent<S: Sink>(opts: &SerializeOptions, depth: usize, out: &mut S) -> io::Result<()> {
    if let Some(width) = opts.indent {
        for _ in 0..depth * width {
            out.put_char(' ')?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn compact_round_trip_is_stable() {
        let src = "<a x=\"1\"><b>hi</b><c/><!--n--></a>";
        let doc = parse(src).unwrap();
        assert_eq!(serialize(&doc, &SerializeOptions::compact()), src);
    }

    #[test]
    fn escapes_markup_in_text_and_attrs() {
        let mut doc = Document::new();
        let root = doc.create_root(crate::QName::local("a"));
        doc.set_attribute(root, crate::QName::local("x"), "a\"b<c");
        let t = doc.create_text("1 < 2 & 3 > 2");
        doc.append_child(root, t);
        let out = serialize(&doc, &SerializeOptions::compact());
        assert_eq!(out, "<a x=\"a&quot;b&lt;c\">1 &lt; 2 &amp; 3 &gt; 2</a>");
        // And it reparses to the same values.
        let doc2 = parse(&out).unwrap();
        let r2 = doc2.root_element().unwrap();
        assert_eq!(doc2.attribute(r2, "x"), Some("a\"b<c"));
        assert_eq!(doc2.text_content(r2), "1 < 2 & 3 > 2");
    }

    #[test]
    fn pretty_print_indents_element_only_content() {
        let doc = parse("<a><b><c/></b></a>").unwrap();
        let opts = SerializeOptions { indent: Some(2), ..Default::default() };
        let out = serialize(&doc, &opts);
        assert_eq!(out, "<a>\n  <b>\n    <c/>\n  </b>\n</a>");
    }

    #[test]
    fn pretty_print_leaves_mixed_content_alone() {
        let doc = parse("<a>text<b/>more</a>").unwrap();
        let opts = SerializeOptions { indent: Some(2), ..Default::default() };
        assert_eq!(serialize(&doc, &opts), "<a>text<b/>more</a>");
    }

    #[test]
    fn document_options_emit_prolog() {
        let doc = parse("<?xml version=\"1.0\"?><!DOCTYPE a><a/>").unwrap();
        let out = serialize(&doc, &SerializeOptions::document());
        assert!(out.starts_with("<?xml version=\"1.0\"?>\n<!DOCTYPE a>\n<a/>"), "{out}");
    }

    #[test]
    fn cdata_survives_serialization() {
        let src = "<a><![CDATA[<not & markup>]]></a>";
        let doc = parse(src).unwrap();
        assert_eq!(serialize(&doc, &SerializeOptions::compact()), src);
    }

    #[test]
    fn cdata_containing_terminator_splits_into_sections() {
        let mut doc = Document::new();
        let root = doc.create_root(crate::QName::local("a"));
        let cd = doc.push_node(NodeKind::CData("x]]>y".into()));
        doc.append_child(root, cd);
        let out = serialize(&doc, &SerializeOptions::compact());
        assert_eq!(out, "<a><![CDATA[x]]]]><![CDATA[>y]]></a>");
        // Reparses to the same character data, and a second serialization
        // is a fixpoint.
        let doc2 = parse(&out).unwrap();
        let r2 = doc2.root_element().unwrap();
        assert_eq!(doc2.text_content(r2), "x]]>y");
        assert_eq!(serialize(&doc2, &SerializeOptions::compact()), out);
    }

    #[test]
    fn comment_with_double_dash_is_escaped() {
        let mut doc = Document::new();
        let root = doc.create_root(crate::QName::local("a"));
        for text in ["a--b", "a---b", "ends-", "--", "-"] {
            let c = doc.create_comment(text);
            doc.append_child(root, c);
        }
        let out = serialize(&doc, &SerializeOptions::compact());
        assert_eq!(out, "<a><!--a- -b--><!--a- - -b--><!--ends- --><!--- - --><!--- --></a>");
        // Well-formed: it must reparse, and reserialize to the same bytes.
        let doc2 = parse(&out).unwrap();
        assert_eq!(serialize(&doc2, &SerializeOptions::compact()), out);
    }

    #[test]
    fn pi_with_terminator_in_data_is_escaped() {
        let mut doc = Document::new();
        let root = doc.create_root(crate::QName::local("a"));
        let pi = doc.create_pi("target", "data ?> more");
        doc.append_child(root, pi);
        let out = serialize(&doc, &SerializeOptions::compact());
        assert_eq!(out, "<a><?target data ? > more?></a>");
        let doc2 = parse(&out).unwrap();
        assert_eq!(serialize(&doc2, &SerializeOptions::compact()), out);
    }

    #[test]
    fn entity_resubstitution_restores_references() {
        let mut cat = EntityCatalog::new();
        cat.declare("cs", "Computer Science");
        let doc = parse("<a>BSc Computer Science</a>").unwrap();
        let opts = SerializeOptions::compact().with_entities(cat);
        assert_eq!(serialize(&doc, &opts), "<a>BSc &cs;</a>");
    }

    #[test]
    fn serialize_node_renders_a_subtree() {
        let doc = parse("<a><b k=\"v\">x</b></a>").unwrap();
        let root = doc.root_element().unwrap();
        let b = doc.first_child_named(root, "b").unwrap();
        assert_eq!(serialize_node(&doc, b), "<b k=\"v\">x</b>");
    }

    #[test]
    fn streaming_serialization_is_byte_identical() {
        let mut cat = EntityCatalog::new();
        cat.declare("cs", "Computer Science");
        let sources = [
            "<?xml version=\"1.0\"?><!DOCTYPE a><?p x?><a k=\"q&quot;v\">1 &lt; 2<b/>\
             <![CDATA[raw]]><!--note--></a><!--tail-->",
            "<a><b><c/></b></a>",
            "<a>BSc Computer Science<x/>more</a>",
        ];
        let option_sets = [
            SerializeOptions::compact(),
            SerializeOptions::document(),
            SerializeOptions::compact().with_entities(cat),
        ];
        for src in sources {
            let doc = parse(src).unwrap();
            for opts in &option_sets {
                let in_memory = serialize(&doc, opts);
                let mut streamed = Vec::new();
                serialize_to(&doc, opts, &mut streamed).unwrap();
                assert_eq!(streamed, in_memory.as_bytes(), "{src}");
            }
        }
    }

    #[test]
    fn streaming_serialization_surfaces_io_errors() {
        struct Refuse;
        impl io::Write for Refuse {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "closed"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let doc = parse("<a>text</a>").unwrap();
        let err = serialize_to(&doc, &SerializeOptions::compact(), &mut Refuse).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn prolog_and_epilog_misc_emitted() {
        let doc = parse("<?p a?><a/><!--tail-->").unwrap();
        let out = serialize(&doc, &SerializeOptions::compact());
        assert_eq!(out, "<?p a?><a/><!--tail-->");
    }
}

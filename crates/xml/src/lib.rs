//! # xmlord-xml — XML 1.0 parser, DOM and serializer
//!
//! This crate is substrate **S1** of the reproduction of *Kudrass & Conrad,
//! "Management of XML Documents in Object-Relational Databases" (EDBT 2002)*.
//! It plays the role the Oracle XDK parser plays in the paper's `XML2Oracle`
//! utility (Fig. 1): it checks well-formedness, expands entity references and
//! produces a DOM tree of the document — elements with their values,
//! attributes with their values, plus the comments and processing
//! instructions whose loss the paper discusses in §6.1/§7.
//!
//! The crate is deliberately self-contained (no dependencies) and implements
//! the subset of XML 1.0 the paper's pipeline requires:
//!
//! * prolog (XML declaration, `DOCTYPE` with internal subset capture),
//! * elements, attributes, character data, CDATA sections,
//! * comments and processing instructions (preserved in the DOM so the
//!   round-trip experiments can measure their loss through the database),
//! * character references (`&#10;`, `&#x0A;`) and entity references — the
//!   five predefined entities plus general entities declared in the internal
//!   DTD subset, which are *expanded at their occurrences* exactly as §6.1
//!   describes ("XML2Oracle expands them at their occurrences so that the
//!   expanded entities are stored in the database"),
//! * namespace-aware qualified names (`prefix:local`).
//!
//! ## Quick example
//!
//! ```
//! use xmlord_xml::{parse, serializer::{serialize, SerializeOptions}};
//!
//! let doc = parse("<a x='1'><b>hi</b><!--c--></a>").unwrap();
//! let root = doc.root_element().unwrap();
//! assert_eq!(doc.name(root).local, "a");
//! assert_eq!(doc.attribute(root, "x"), Some("1"));
//! let text = serialize(&doc, &SerializeOptions::compact());
//! assert_eq!(text, "<a x=\"1\"><b>hi</b><!--c--></a>");
//! ```

pub mod cursor;
pub mod dom;
pub mod entities;
pub mod error;
pub mod escape;
pub mod name;
pub mod parser;
pub mod prolog;
pub mod serializer;

pub use dom::{Attribute, Document, ElementData, NodeId, NodeKind};
pub use entities::EntityCatalog;
pub use error::{Position, XmlError, XmlErrorKind};
pub use name::QName;
pub use parser::{parse, parse_with_catalog};
pub use prolog::{DoctypeDecl, XmlDeclaration};

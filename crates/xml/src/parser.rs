//! The XML document parser (well-formedness checker of Fig. 1).
//!
//! Parses a complete document — prolog, DOCTYPE (capturing the internal
//! subset verbatim and scanning it for entity declarations), root element
//! tree, epilog — into a [`Document`]. Entity references are expanded at
//! their occurrences (§6.1); character references are decoded; comments and
//! processing instructions are retained as DOM nodes.

use crate::cursor::{is_xml_ws, Cursor};
use crate::dom::{Document, NodeId, NodeKind};
use crate::entities::EntityCatalog;
use crate::error::{XmlError, XmlErrorKind};
use crate::escape::decode_char_ref;
use crate::name::{is_name_char, is_name_start_char, QName};
use crate::prolog::{DoctypeDecl, ExternalId, XmlDeclaration};

/// Parse a document, starting from an empty entity catalog (entities declared
/// in the internal DTD subset are still picked up).
pub fn parse(input: &str) -> Result<Document, XmlError> {
    parse_with_catalog(input, EntityCatalog::new())
}

/// Parse a document with pre-declared general entities (e.g. entities
/// declared in an *external* DTD that the caller has already parsed).
pub fn parse_with_catalog(input: &str, catalog: EntityCatalog) -> Result<Document, XmlError> {
    let mut parser = Parser { cur: Cursor::new(input), doc: Document::new(), catalog };
    parser.parse_document()?;
    Ok(parser.doc)
}

struct Parser<'a> {
    cur: Cursor<'a>,
    doc: Document,
    catalog: EntityCatalog,
}

impl<'a> Parser<'a> {
    fn parse_document(&mut self) -> Result<(), XmlError> {
        // Optional BOM.
        self.cur.eat("\u{FEFF}");
        // XML declaration must be first if present.
        if self.cur.starts_with("<?xml") && self.cur.peek_nth(5).is_none_or(is_xml_ws) {
            self.doc.declaration = Some(self.parse_xml_declaration()?);
        }
        // Misc and doctype before the root.
        loop {
            self.cur.skip_ws();
            if self.cur.starts_with("<!--") {
                let node = self.parse_comment()?;
                self.doc.prolog_misc.push(node);
            } else if self.cur.starts_with("<?") {
                let node = self.parse_pi()?;
                self.doc.prolog_misc.push(node);
            } else if self.cur.starts_with("<!DOCTYPE") {
                if self.doc.doctype.is_some() {
                    return Err(self.cur.error(XmlErrorKind::StructureViolation(
                        "multiple DOCTYPE declarations".into(),
                    )));
                }
                let dt = self.parse_doctype()?;
                self.doc.doctype = Some(dt);
            } else {
                break;
            }
        }
        // Root element.
        if !self.cur.starts_with("<") {
            return Err(self.cur.error(XmlErrorKind::StructureViolation(
                "document has no root element".into(),
            )));
        }
        let root = self.parse_element()?;
        self.doc.set_root(root);
        // Epilog: only misc allowed.
        loop {
            self.cur.skip_ws();
            if self.cur.is_eof() {
                return Ok(());
            }
            if self.cur.starts_with("<!--") {
                let node = self.parse_comment()?;
                self.doc.epilog_misc.push(node);
            } else if self.cur.starts_with("<?") {
                let node = self.parse_pi()?;
                self.doc.epilog_misc.push(node);
            } else {
                return Err(self.cur.error(XmlErrorKind::StructureViolation(
                    "content after the root element".into(),
                )));
            }
        }
    }

    fn parse_xml_declaration(&mut self) -> Result<XmlDeclaration, XmlError> {
        self.cur.expect("<?xml", "XML declaration")?;
        let mut decl =
            XmlDeclaration { version: String::new(), encoding: None, standalone: None };
        loop {
            let had_ws = self.cur.skip_ws();
            if self.cur.eat("?>") {
                break;
            }
            if !had_ws {
                return Err(self
                    .cur
                    .error(XmlErrorKind::IllegalConstruct("malformed XML declaration".into())));
            }
            let (name, value) = self.parse_pseudo_attr()?;
            match name.as_str() {
                "version" => decl.version = value,
                "encoding" => decl.encoding = Some(value),
                "standalone" => match value.as_str() {
                    "yes" => decl.standalone = Some(true),
                    "no" => decl.standalone = Some(false),
                    other => {
                        return Err(self.cur.error(XmlErrorKind::IllegalConstruct(format!(
                            "standalone must be yes or no, got '{other}'"
                        ))))
                    }
                },
                other => {
                    return Err(self.cur.error(XmlErrorKind::IllegalConstruct(format!(
                        "unknown XML declaration attribute '{other}'"
                    ))))
                }
            }
        }
        if decl.version.is_empty() {
            return Err(self.cur.error(XmlErrorKind::IllegalConstruct(
                "XML declaration lacks a version".into(),
            )));
        }
        Ok(decl)
    }

    /// `name="value"` inside `<?xml ...?>` — no references processed.
    fn parse_pseudo_attr(&mut self) -> Result<(String, String), XmlError> {
        let name = self.parse_raw_name()?;
        self.cur.skip_ws();
        self.cur.expect("=", "'=' in XML declaration")?;
        self.cur.skip_ws();
        let quote = match self.cur.bump() {
            Some(q @ ('"' | '\'')) => q,
            _ => {
                return Err(self
                    .cur
                    .error(XmlErrorKind::IllegalConstruct("expected quoted value".into())))
            }
        };
        let value = self.cur.take_until(&quote.to_string())?.to_string();
        self.cur.eat(&quote.to_string());
        Ok((name, value))
    }

    fn parse_doctype(&mut self) -> Result<DoctypeDecl, XmlError> {
        self.cur.expect("<!DOCTYPE", "DOCTYPE")?;
        if !self.cur.skip_ws() {
            return Err(self.cur.error(XmlErrorKind::IllegalConstruct(
                "whitespace required after <!DOCTYPE".into(),
            )));
        }
        let name = self.parse_raw_name()?;
        self.cur.skip_ws();
        let external_id = if self.cur.eat("SYSTEM") {
            self.cur.skip_ws();
            let system = self.parse_quoted_literal()?;
            Some(ExternalId::System { system })
        } else if self.cur.eat("PUBLIC") {
            self.cur.skip_ws();
            let public = self.parse_quoted_literal()?;
            self.cur.skip_ws();
            let system = self.parse_quoted_literal()?;
            Some(ExternalId::Public { public, system })
        } else {
            None
        };
        self.cur.skip_ws();
        let internal_subset = if self.cur.eat("[") {
            let subset = self.scan_internal_subset()?;
            Some(subset)
        } else {
            None
        };
        self.cur.skip_ws();
        self.cur.expect(">", "'>' closing DOCTYPE")?;
        if let Some(subset) = &internal_subset {
            self.scan_subset_entities(&subset.clone())?;
        }
        Ok(DoctypeDecl { name, external_id, internal_subset })
    }

    /// Consume the internal subset up to its closing `]`, respecting quoted
    /// literals and comments so a `]` inside them does not terminate it.
    fn scan_internal_subset(&mut self) -> Result<String, XmlError> {
        let mut out = String::new();
        loop {
            match self.cur.peek() {
                None => return Err(self.cur.error(XmlErrorKind::UnexpectedEof)),
                Some(']') => {
                    self.cur.bump();
                    return Ok(out);
                }
                Some('"') | Some('\'') => {
                    let quote = self.cur.bump().unwrap();
                    out.push(quote);
                    let lit = self.cur.take_until(&quote.to_string())?;
                    out.push_str(lit);
                    self.cur.eat(&quote.to_string());
                    out.push(quote);
                }
                Some(_) if self.cur.starts_with("<!--") => {
                    self.cur.eat("<!--");
                    out.push_str("<!--");
                    let body = self.cur.take_until("-->")?;
                    out.push_str(body);
                    self.cur.eat("-->");
                    out.push_str("-->");
                }
                Some(ch) => {
                    out.push(ch);
                    self.cur.bump();
                }
            }
        }
    }

    /// Scan the internal subset for `<!ENTITY name "text">` declarations so
    /// general entities can be expanded in document content. Parameter
    /// entities and full markup declarations are handled by `xmlord-dtd`.
    fn scan_subset_entities(&mut self, subset: &str) -> Result<(), XmlError> {
        let mut cur = Cursor::new(subset);
        while !cur.is_eof() {
            if cur.starts_with("<!--") {
                cur.eat("<!--");
                let _ = cur.take_until("-->")?;
                cur.eat("-->");
                continue;
            }
            if cur.starts_with("<!ENTITY") {
                cur.eat("<!ENTITY");
                cur.skip_ws();
                if cur.eat("%") {
                    // Parameter entity — skip its declaration.
                    let _ = cur.take_until(">")?;
                    cur.eat(">");
                    continue;
                }
                let name = cur.take_while(is_name_char).to_string();
                cur.skip_ws();
                match cur.peek() {
                    Some(q @ ('"' | '\'')) => {
                        cur.bump();
                        let raw = cur.take_until(&q.to_string())?.to_string();
                        cur.eat(&q.to_string());
                        cur.skip_ws();
                        cur.eat(">");
                        self.catalog.declare(&name, &raw);
                    }
                    _ => {
                        // External entity (SYSTEM/PUBLIC) — recorded but the
                        // replacement text is unavailable; skip.
                        let _ = cur.take_until(">")?;
                        cur.eat(">");
                    }
                }
                continue;
            }
            cur.bump();
        }
        Ok(())
    }

    fn parse_quoted_literal(&mut self) -> Result<String, XmlError> {
        let quote = match self.cur.bump() {
            Some(q @ ('"' | '\'')) => q,
            _ => {
                return Err(self
                    .cur
                    .error(XmlErrorKind::IllegalConstruct("expected quoted literal".into())))
            }
        };
        let lit = self.cur.take_until(&quote.to_string())?.to_string();
        self.cur.eat(&quote.to_string());
        Ok(lit)
    }

    fn parse_raw_name(&mut self) -> Result<String, XmlError> {
        let start_ok = self.cur.peek().map(|c| is_name_start_char(c) || c == ':').unwrap_or(false);
        if !start_ok {
            return Err(self
                .cur
                .error(XmlErrorKind::InvalidName(self.cur.peek().map(String::from).unwrap_or_default())));
        }
        let name = self.cur.take_while(|c| is_name_char(c) || c == ':');
        Ok(name.to_string())
    }

    fn parse_qname(&mut self) -> Result<QName, XmlError> {
        let raw = self.parse_raw_name()?;
        QName::parse(&raw).ok_or_else(|| self.cur.error(XmlErrorKind::InvalidName(raw)))
    }

    fn parse_element(&mut self) -> Result<NodeId, XmlError> {
        self.cur.expect("<", "start tag")?;
        let name = self.parse_qname()?;
        let element = self.doc.create_element(name.clone());
        // Attributes.
        loop {
            let had_ws = self.cur.skip_ws();
            match self.cur.peek() {
                Some('>') => {
                    self.cur.bump();
                    break;
                }
                Some('/') => {
                    self.cur.bump();
                    self.cur.expect(">", "'>' after '/'")?;
                    return Ok(element); // empty element
                }
                Some(_) if had_ws => {
                    let attr_name = self.parse_qname()?;
                    if self.doc.attribute(element, &attr_name.as_raw()).is_some() {
                        return Err(self
                            .cur
                            .error(XmlErrorKind::DuplicateAttribute(attr_name.as_raw())));
                    }
                    self.cur.skip_ws();
                    self.cur.expect("=", "'=' after attribute name")?;
                    self.cur.skip_ws();
                    let value = self.parse_attr_value()?;
                    self.doc.set_attribute(element, attr_name, &value);
                }
                Some(_) => {
                    return Err(self.cur.error(XmlErrorKind::IllegalConstruct(
                        "whitespace required before attribute".into(),
                    )))
                }
                None => return Err(self.cur.error(XmlErrorKind::UnexpectedEof)),
            }
        }
        // Content until the matching close tag.
        self.parse_content(element, &name)?;
        Ok(element)
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.cur.bump() {
            Some(q @ ('"' | '\'')) => q,
            _ => {
                return Err(self
                    .cur
                    .error(XmlErrorKind::IllegalConstruct("attribute value must be quoted".into())))
            }
        };
        let mut out = String::new();
        loop {
            match self.cur.peek() {
                None => return Err(self.cur.error(XmlErrorKind::UnexpectedEof)),
                Some(ch) if ch == quote => {
                    self.cur.bump();
                    return Ok(out);
                }
                Some('<') => {
                    return Err(self.cur.error(XmlErrorKind::IllegalConstruct(
                        "'<' not allowed in attribute value".into(),
                    )))
                }
                Some('&') => {
                    let expanded = self.parse_reference()?;
                    out.push_str(&expanded);
                }
                // Attribute-value normalization: whitespace → space.
                Some('\t') | Some('\n') | Some('\r') => {
                    self.cur.bump();
                    out.push(' ');
                }
                Some(ch) => {
                    self.cur.bump();
                    out.push(ch);
                }
            }
        }
    }

    /// Parse `&...;` at the cursor and return the fully expanded text.
    fn parse_reference(&mut self) -> Result<String, XmlError> {
        let at = self.cur.position();
        self.cur.expect("&", "reference")?;
        if self.cur.eat("#") {
            let body = self.cur.take_until(";")?.to_string();
            self.cur.eat(";");
            let ch = decode_char_ref(&body).ok_or_else(|| {
                XmlError::new(XmlErrorKind::InvalidCharRef(format!("&#{body};")), at)
            })?;
            Ok(ch.to_string())
        } else {
            let name = self.parse_raw_name()?;
            self.cur.expect(";", "';' terminating entity reference")?;
            match self.catalog.lookup(&name) {
                Some(_) => {
                    // Full recursive expansion via the catalog — mirrors the
                    // paper's expand-at-occurrence behaviour.
                    self.catalog
                        .expand_text(&format!("&{name};"))
                        .map_err(|e| XmlError::new(e.kind, at))
                }
                None => Err(XmlError::new(XmlErrorKind::UnknownEntity(name), at)),
            }
        }
    }

    fn parse_content(&mut self, parent: NodeId, open_name: &QName) -> Result<(), XmlError> {
        let mut text = String::new();
        loop {
            if self.cur.is_eof() {
                return Err(self.cur.error(XmlErrorKind::UnexpectedEof));
            }
            if self.cur.starts_with("</") {
                self.flush_text(parent, &mut text);
                self.cur.eat("</");
                let close = self.parse_qname()?;
                self.cur.skip_ws();
                self.cur.expect(">", "'>' closing end tag")?;
                if &close != open_name {
                    return Err(self.cur.error(XmlErrorKind::MismatchedTag {
                        open: open_name.as_raw(),
                        close: close.as_raw(),
                    }));
                }
                return Ok(());
            }
            if self.cur.starts_with("<!--") {
                self.flush_text(parent, &mut text);
                let node = self.parse_comment()?;
                self.doc.append_child(parent, node);
                continue;
            }
            if self.cur.starts_with("<![CDATA[") {
                self.flush_text(parent, &mut text);
                self.cur.eat("<![CDATA[");
                let body = self.cur.take_until("]]>")?.to_string();
                self.cur.eat("]]>");
                let node = self.doc.push_node(NodeKind::CData(body));
                self.doc.append_child(parent, node);
                continue;
            }
            if self.cur.starts_with("<?") {
                self.flush_text(parent, &mut text);
                let node = self.parse_pi()?;
                self.doc.append_child(parent, node);
                continue;
            }
            if self.cur.starts_with("<") {
                self.flush_text(parent, &mut text);
                let child = self.parse_element()?;
                self.doc.append_child(parent, child);
                continue;
            }
            if self.cur.starts_with("&") {
                let expanded = self.parse_reference()?;
                text.push_str(&expanded);
                continue;
            }
            if self.cur.starts_with("]]>") {
                return Err(self.cur.error(XmlErrorKind::IllegalConstruct(
                    "']]>' not allowed in character data".into(),
                )));
            }
            let ch = self.cur.bump().unwrap();
            text.push(ch);
        }
    }

    fn flush_text(&mut self, parent: NodeId, text: &mut String) {
        if text.is_empty() {
            return;
        }
        let node = self.doc.create_text(text);
        self.doc.append_child(parent, node);
        text.clear();
    }

    fn parse_comment(&mut self) -> Result<NodeId, XmlError> {
        self.cur.expect("<!--", "comment")?;
        let body = self.cur.take_until("--")?.to_string();
        self.cur.eat("--");
        if !self.cur.eat(">") {
            return Err(self
                .cur
                .error(XmlErrorKind::IllegalConstruct("'--' not allowed inside a comment".into())));
        }
        Ok(self.doc.create_comment(&body))
    }

    fn parse_pi(&mut self) -> Result<NodeId, XmlError> {
        self.cur.expect("<?", "processing instruction")?;
        let target = self.parse_raw_name()?;
        if target.eq_ignore_ascii_case("xml") {
            return Err(self.cur.error(XmlErrorKind::IllegalConstruct(
                "processing instruction target 'xml' is reserved".into(),
            )));
        }
        let data = if self.cur.eat("?>") {
            String::new()
        } else {
            if !self.cur.skip_ws() {
                return Err(self.cur.error(XmlErrorKind::IllegalConstruct(
                    "whitespace required after PI target".into(),
                )));
            }
            let body = self.cur.take_until("?>")?.to_string();
            self.cur.eat("?>");
            body
        };
        Ok(self.doc.create_pi(&target, &data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_document() {
        let doc = parse("<a/>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root).local, "a");
        assert!(doc.children(root).is_empty());
    }

    #[test]
    fn parses_nested_elements_and_text() {
        let doc = parse("<a><b>hello</b><b>world</b></a>").unwrap();
        let root = doc.root_element().unwrap();
        let bs = doc.child_elements_named(root, "b");
        assert_eq!(bs.len(), 2);
        assert_eq!(doc.text_content(bs[0]), "hello");
        assert_eq!(doc.text_content(bs[1]), "world");
    }

    #[test]
    fn parses_attributes_with_both_quote_styles() {
        let doc = parse(r#"<a x="1" y='two'/>"#).unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.attribute(root, "x"), Some("1"));
        assert_eq!(doc.attribute(root, "y"), Some("two"));
    }

    #[test]
    fn rejects_duplicate_attributes() {
        let err = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn rejects_content_after_root() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::StructureViolation(_)));
    }

    #[test]
    fn expands_predefined_entities_in_text_and_attrs() {
        let doc = parse(r#"<a t="&lt;x&gt;">&amp;&apos;&quot;</a>"#).unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.attribute(root, "t"), Some("<x>"));
        assert_eq!(doc.text_content(root), "&'\"");
    }

    #[test]
    fn expands_char_refs() {
        let doc = parse("<a>&#65;&#x42;</a>").unwrap();
        assert_eq!(doc.text_content(doc.root_element().unwrap()), "AB");
    }

    #[test]
    fn expands_internal_subset_entities_like_the_paper() {
        // Appendix A: <!ENTITY cs "Computer Science">
        let input = r#"<!DOCTYPE University [<!ENTITY cs "Computer Science">]>
<University><StudyCourse>&cs;</StudyCourse></University>"#;
        let doc = parse(input).unwrap();
        let root = doc.root_element().unwrap();
        let sc = doc.first_child_named(root, "StudyCourse").unwrap();
        assert_eq!(doc.text_content(sc), "Computer Science");
        assert_eq!(doc.doctype.as_ref().unwrap().name, "University");
    }

    #[test]
    fn unknown_entity_is_an_error() {
        let err = parse("<a>&nope;</a>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::UnknownEntity(_)));
    }

    #[test]
    fn keeps_comments_and_pis_in_the_dom() {
        let doc = parse("<?pi data?><a><!--note--><?p q?></a><!--tail-->").unwrap();
        assert_eq!(doc.prolog_misc.len(), 1);
        assert_eq!(doc.epilog_misc.len(), 1);
        let root = doc.root_element().unwrap();
        assert_eq!(doc.children(root).len(), 2);
        assert!(matches!(doc.kind(doc.children(root)[0]), NodeKind::Comment(c) if c == "note"));
    }

    #[test]
    fn parses_cdata_sections() {
        let doc = parse("<a><![CDATA[<raw> & stuff]]></a>").unwrap();
        let root = doc.root_element().unwrap();
        assert!(matches!(doc.kind(doc.children(root)[0]), NodeKind::CData(c) if c == "<raw> & stuff"));
        assert_eq!(doc.text_content(root), "<raw> & stuff");
    }

    #[test]
    fn parses_xml_declaration_fields() {
        let doc =
            parse("<?xml version=\"1.0\" encoding=\"UTF-8\" standalone=\"yes\"?><a/>").unwrap();
        let decl = doc.declaration.unwrap();
        assert_eq!(decl.version, "1.0");
        assert_eq!(decl.encoding.as_deref(), Some("UTF-8"));
        assert_eq!(decl.standalone, Some(true));
    }

    #[test]
    fn doctype_with_system_id() {
        let doc = parse("<!DOCTYPE a SYSTEM \"a.dtd\"><a/>").unwrap();
        let dt = doc.doctype.unwrap();
        assert_eq!(dt.name, "a");
        assert!(matches!(dt.external_id, Some(ExternalId::System { ref system }) if system == "a.dtd"));
    }

    #[test]
    fn internal_subset_is_captured_verbatim() {
        let input = "<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a/>";
        let doc = parse(input).unwrap();
        assert_eq!(doc.doctype.unwrap().internal_subset.unwrap(), "<!ELEMENT a (#PCDATA)>");
    }

    #[test]
    fn attr_value_normalizes_whitespace() {
        let doc = parse("<a x=\"l1\nl2\tl3\"/>").unwrap();
        assert_eq!(doc.attribute(doc.root_element().unwrap(), "x"), Some("l1 l2 l3"));
    }

    #[test]
    fn lt_in_attr_value_is_error() {
        assert!(parse("<a x=\"<\"/>").is_err());
    }

    #[test]
    fn double_dash_in_comment_is_error() {
        assert!(parse("<a><!-- no -- no --></a>").is_err());
    }

    #[test]
    fn cdata_end_in_text_is_error() {
        assert!(parse("<a>bad ]]> here</a>").is_err());
    }

    #[test]
    fn reserved_pi_target_is_error() {
        assert!(parse("<a><?xml version=\"1.0\"?></a>").is_err());
    }

    #[test]
    fn parses_prefixed_names() {
        let doc = parse("<u:a xmlns:u=\"urn:x\"><u:b/></u:a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root).prefix, "u");
        assert_eq!(doc.attribute(root, "xmlns:u"), Some("urn:x"));
    }

    #[test]
    fn empty_document_is_error() {
        assert!(parse("").is_err());
        assert!(parse("   \n ").is_err());
    }

    #[test]
    fn unterminated_tag_is_eof_error() {
        let err = parse("<a><b>text").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::UnexpectedEof));
    }

    #[test]
    fn external_catalog_entities_expand() {
        let mut cat = EntityCatalog::new();
        cat.declare("brand", "ACME");
        let doc = parse_with_catalog("<a>&brand;</a>", cat).unwrap();
        assert_eq!(doc.text_content(doc.root_element().unwrap()), "ACME");
    }

    #[test]
    fn whitespace_only_text_is_preserved_inside_elements() {
        let doc = parse("<a> <b/> </a>").unwrap();
        let root = doc.root_element().unwrap();
        // text, element, text
        assert_eq!(doc.children(root).len(), 3);
    }

    #[test]
    fn appendix_a_university_document_parses() {
        let input = r#"<?xml version="1.0"?>
<!DOCTYPE University [
  <!ELEMENT University (StudyCourse,Student*)>
  <!ELEMENT Student (LName,FName,Course*)>
  <!ATTLIST Student StudNr CDATA #REQUIRED>
  <!ELEMENT Course (Name,Professor*,CreditPts?)>
  <!ELEMENT Professor (PName,Subject+,Dept)>
  <!ENTITY cs "Computer Science">
  <!ELEMENT LName (#PCDATA)>
  <!ELEMENT FName (#PCDATA)>
  <!ELEMENT Name (#PCDATA)>
  <!ELEMENT PName (#PCDATA)>
  <!ELEMENT Subject (#PCDATA)>
  <!ELEMENT Dept (#PCDATA)>
  <!ELEMENT StudyCourse (#PCDATA)>
]>
<University>
  <StudyCourse>&cs;</StudyCourse>
  <Student StudNr="23374">
    <LName>Conrad</LName>
    <FName>Matthias</FName>
    <Course>
      <Name>Database Systems II</Name>
      <Professor>
        <PName>Kudrass</PName>
        <Subject>Database Systems</Subject>
        <Subject>Operat. Systems</Subject>
        <Dept>&cs;</Dept>
      </Professor>
      <CreditPts>4</CreditPts>
    </Course>
  </Student>
</University>"#;
        let doc = parse(input).unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root).local, "University");
        let student = doc.first_child_named(root, "Student").unwrap();
        assert_eq!(doc.attribute(student, "StudNr"), Some("23374"));
        let course = doc.first_child_named(student, "Course").unwrap();
        let prof = doc.first_child_named(course, "Professor").unwrap();
        assert_eq!(doc.child_elements_named(prof, "Subject").len(), 2);
        assert_eq!(doc.text_content(doc.first_child_named(prof, "Dept").unwrap()), "Computer Science");
    }
}

//! Property-based tests for the XML substrate: escaping and parse/serialize
//! round trips must be lossless for arbitrary content.

use xmlord_prng::Prng;
use xmlord_xml::escape::{escape_attr, escape_text};
use xmlord_xml::serializer::{serialize, SerializeOptions};
use xmlord_xml::{parse, Document, NodeKind, QName};

/// Random text legal in XML content (excluding CR, which parsers
/// normalize): mostly printable ASCII — including every character that
/// needs escaping — plus tabs, newlines and a few non-ASCII ranges.
fn xml_text(rng: &mut Prng) -> String {
    let len = rng.gen_range(0usize..40);
    (0..len)
        .map(|_| match rng.gen_range(0u32..8) {
            0..=4 => char::from_u32(rng.gen_range(' ' as u32..'~' as u32 + 1)).unwrap(),
            5 => '\n',
            6 => '\t',
            _ => {
                if rng.gen_bool(0.5) {
                    char::from_u32(rng.gen_range(0xA0u32..0x300)).unwrap()
                } else {
                    char::from_u32(rng.gen_range(0x4E00u32..0x4F00)).unwrap()
                }
            }
        })
        .collect()
}

fn ncname(rng: &mut Prng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-";
    let mut s = String::new();
    s.push(*rng.choose(FIRST) as char);
    for _ in 0..rng.gen_range(0usize..12) {
        s.push(*rng.choose(REST) as char);
    }
    s
}

#[derive(Debug, Clone)]
struct TreeSpec {
    name: String,
    attrs: Vec<(String, String)>,
    text: Option<String>,
    children: Vec<TreeSpec>,
}

/// A small random element tree, depth-bounded like the old proptest
/// `prop_recursive(3, ..)` strategy.
fn arb_tree(rng: &mut Prng, depth: u32) -> TreeSpec {
    if depth == 0 || rng.gen_bool(0.3) {
        return TreeSpec {
            name: ncname(rng),
            attrs: vec![],
            text: Some(xml_text(rng)),
            children: vec![],
        };
    }
    let mut attrs: Vec<(String, String)> =
        (0..rng.gen_range(0usize..3)).map(|_| (ncname(rng), xml_text(rng))).collect();
    // Attribute names must be unique on one element.
    attrs.sort_by(|a, b| a.0.cmp(&b.0));
    attrs.dedup_by(|a, b| a.0 == b.0);
    let children = (0..rng.gen_range(0usize..4)).map(|_| arb_tree(rng, depth - 1)).collect();
    TreeSpec { name: ncname(rng), attrs, text: None, children }
}

fn build(doc: &mut Document, spec: &TreeSpec) -> xmlord_xml::NodeId {
    let el = doc.create_element(QName::local(&spec.name));
    for (k, v) in &spec.attrs {
        doc.set_attribute(el, QName::local(k), v);
    }
    if let Some(text) = &spec.text {
        if !text.is_empty() {
            let t = doc.create_text(text);
            doc.append_child(el, t);
        }
    }
    for child in &spec.children {
        let c = build(doc, child);
        doc.append_child(el, c);
    }
    el
}

/// Structural equality that ignores arena layout: name, attrs, child kinds.
fn tree_eq(a: &Document, an: xmlord_xml::NodeId, b: &Document, bn: xmlord_xml::NodeId) -> bool {
    match (a.kind(an), b.kind(bn)) {
        (NodeKind::Element(ea), NodeKind::Element(eb)) => {
            ea.name == eb.name
                && ea.attributes == eb.attributes
                && ea.children.len() == eb.children.len()
                && ea
                    .children
                    .iter()
                    .zip(&eb.children)
                    .all(|(x, y)| tree_eq(a, *x, b, *y))
        }
        (ka, kb) => ka == kb,
    }
}

#[test]
fn escaped_text_reparses_to_original() {
    for case in 0..256u64 {
        let mut rng = Prng::seed_from_u64(0xE5C + case);
        let text = xml_text(&mut rng);
        let xml = format!("<a>{}</a>", escape_text(&text));
        let doc = parse(&xml).unwrap();
        assert_eq!(doc.text_content(doc.root_element().unwrap()), text, "case {case}");
    }
}

#[test]
fn escaped_attr_reparses_to_original() {
    for case in 0..256u64 {
        let mut rng = Prng::seed_from_u64(0xA77 + case);
        let value = xml_text(&mut rng);
        let xml = format!("<a x=\"{}\"/>", escape_attr(&value));
        let doc = parse(&xml).unwrap();
        // Attribute-value normalization folds tab/newline to space — the
        // escaper emits char refs for them precisely to survive it.
        assert_eq!(
            doc.attribute(doc.root_element().unwrap(), "x").unwrap(),
            value,
            "case {case}"
        );
    }
}

#[test]
fn serialize_then_parse_is_identity() {
    for case in 0..256u64 {
        let mut rng = Prng::seed_from_u64(0x5E1 + case);
        let spec = arb_tree(&mut rng, 3);
        let mut doc = Document::new();
        let root = build(&mut doc, &spec);
        doc.set_root(root);
        let text = serialize(&doc, &SerializeOptions::compact());
        let reparsed = parse(&text).unwrap();
        assert!(
            tree_eq(
                &doc,
                doc.root_element().unwrap(),
                &reparsed,
                reparsed.root_element().unwrap(),
            ),
            "case {case} serialized: {text}"
        );
    }
}

/// Random payload deliberately salted with the delimiter sequences each
/// node kind cannot legally contain (`]]>`, `--`, `?>`), plus lone
/// fragments of them, so the serializer's escaping is what keeps the
/// output well-formed.
fn hostile_payload(rng: &mut Prng) -> String {
    const TOKENS: &[&str] = &["]]>", "--", "?>", "-", "]", ">", "?", "]]", "a", " ", "x1"];
    let n = rng.gen_range(1usize..8);
    (0..n).map(|_| *rng.choose(TOKENS)).collect()
}

/// The acceptance property for the serializer bugfix batch: documents whose
/// text/CDATA/comment/PI payloads contain `]]>`, `--` or `?>` must
/// serialize to well-formed XML, preserve character data (text and CDATA),
/// and reach a parse∘serialize fixpoint after one round.
#[test]
fn hostile_delimiters_round_trip() {
    for case in 0..512u64 {
        let mut rng = Prng::seed_from_u64(0xBAD + case);
        let payload = hostile_payload(&mut rng);

        let mut doc = Document::new();
        let root = doc.create_root(QName::local("a"));
        let kind = rng.gen_range(0u32..4);
        let node = match kind {
            0 => doc.create_text(&payload),
            1 => doc.push_node(NodeKind::CData(payload.clone())),
            2 => doc.create_comment(&payload),
            // Leading whitespace in PI data merges into the target/data
            // separator when reparsed, so keep the generator off that case.
            _ => doc.create_pi("pi", payload.trim_start()),
        };
        doc.append_child(root, node);

        let once = serialize(&doc, &SerializeOptions::compact());
        let reparsed = parse(&once)
            .unwrap_or_else(|e| panic!("case {case} kind {kind}: not well-formed: {e}\n{once}"));
        if kind < 2 {
            // Character data must survive exactly (CDATA may reparse as
            // several adjacent sections, but the content concatenates back).
            assert_eq!(
                reparsed.text_content(reparsed.root_element().unwrap()),
                payload,
                "case {case} kind {kind}: {once}"
            );
        }
        let twice = serialize(&reparsed, &SerializeOptions::compact());
        assert_eq!(once, twice, "case {case} kind {kind}: not a fixpoint");
    }
}

#[test]
fn compact_serialization_is_a_fixpoint() {
    for case in 0..256u64 {
        let mut rng = Prng::seed_from_u64(0xF1F + case);
        let spec = arb_tree(&mut rng, 3);
        let mut doc = Document::new();
        let root = build(&mut doc, &spec);
        doc.set_root(root);
        let once = serialize(&doc, &SerializeOptions::compact());
        let twice = serialize(&parse(&once).unwrap(), &SerializeOptions::compact());
        assert_eq!(once, twice, "case {case}");
    }
}

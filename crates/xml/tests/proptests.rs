//! Property-based tests for the XML substrate: escaping and parse/serialize
//! round trips must be lossless for arbitrary content.

use proptest::prelude::*;
use xmlord_xml::escape::{escape_attr, escape_text};
use xmlord_xml::serializer::{serialize, SerializeOptions};
use xmlord_xml::{parse, Document, NodeKind, QName};

/// Characters legal in XML content (excluding CR, which parsers normalize).
fn xml_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            // Mostly printable ASCII including the characters that need escaping.
            proptest::char::range(' ', '~'),
            Just('\n'),
            Just('\t'),
            proptest::char::range('\u{A0}', '\u{2FF}'),
            proptest::char::range('\u{4E00}', '\u{4EFF}'),
        ],
        0..40,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn ncname() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_.-]{0,11}"
}

/// A small random element tree.
fn arb_tree() -> impl Strategy<Value = TreeSpec> {
    let leaf = (ncname(), xml_text()).prop_map(|(name, text)| TreeSpec {
        name,
        attrs: vec![],
        text: Some(text),
        children: vec![],
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            ncname(),
            proptest::collection::vec((ncname(), xml_text()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, mut attrs, children)| {
                // Attribute names must be unique on one element.
                attrs.sort_by(|a, b| a.0.cmp(&b.0));
                attrs.dedup_by(|a, b| a.0 == b.0);
                TreeSpec { name, attrs, text: None, children }
            })
    })
}

#[derive(Debug, Clone)]
struct TreeSpec {
    name: String,
    attrs: Vec<(String, String)>,
    text: Option<String>,
    children: Vec<TreeSpec>,
}

fn build(doc: &mut Document, spec: &TreeSpec) -> xmlord_xml::NodeId {
    let el = doc.create_element(QName::local(&spec.name));
    for (k, v) in &spec.attrs {
        doc.set_attribute(el, QName::local(k), v);
    }
    if let Some(text) = &spec.text {
        if !text.is_empty() {
            let t = doc.create_text(text);
            doc.append_child(el, t);
        }
    }
    for child in &spec.children {
        let c = build(doc, child);
        doc.append_child(el, c);
    }
    el
}

/// Structural equality that ignores arena layout: name, attrs, child kinds.
fn tree_eq(a: &Document, an: xmlord_xml::NodeId, b: &Document, bn: xmlord_xml::NodeId) -> bool {
    match (a.kind(an), b.kind(bn)) {
        (NodeKind::Element(ea), NodeKind::Element(eb)) => {
            ea.name == eb.name
                && ea.attributes == eb.attributes
                && ea.children.len() == eb.children.len()
                && ea
                    .children
                    .iter()
                    .zip(&eb.children)
                    .all(|(x, y)| tree_eq(a, *x, b, *y))
        }
        (ka, kb) => ka == kb,
    }
}

proptest! {
    #[test]
    fn escaped_text_reparses_to_original(text in xml_text()) {
        let xml = format!("<a>{}</a>", escape_text(&text));
        let doc = parse(&xml).unwrap();
        prop_assert_eq!(doc.text_content(doc.root_element().unwrap()), text);
    }

    #[test]
    fn escaped_attr_reparses_to_original(value in xml_text()) {
        let xml = format!("<a x=\"{}\"/>", escape_attr(&value));
        let doc = parse(&xml).unwrap();
        // Attribute-value normalization folds tab/newline to space — the
        // escaper emits char refs for them precisely to survive it.
        prop_assert_eq!(doc.attribute(doc.root_element().unwrap(), "x").unwrap(), value);
    }

    #[test]
    fn serialize_then_parse_is_identity(spec in arb_tree()) {
        let mut doc = Document::new();
        let root = build(&mut doc, &spec);
        doc.set_root(root);
        let text = serialize(&doc, &SerializeOptions::compact());
        let reparsed = parse(&text).unwrap();
        prop_assert!(tree_eq(
            &doc, doc.root_element().unwrap(),
            &reparsed, reparsed.root_element().unwrap(),
        ), "serialized: {text}");
    }

    #[test]
    fn compact_serialization_is_a_fixpoint(spec in arb_tree()) {
        let mut doc = Document::new();
        let root = build(&mut doc, &spec);
        doc.set_root(root);
        let once = serialize(&doc, &SerializeOptions::compact());
        let twice = serialize(&parse(&once).unwrap(), &SerializeOptions::compact());
        prop_assert_eq!(once, twice);
    }
}

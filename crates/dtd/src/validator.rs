//! Document validation against a DTD — the "Well-Formedness / Validity
//! Check" box of the paper's Fig. 1.
//!
//! Checks, per XML 1.0:
//! * the root element matches the DOCTYPE name (when one is given),
//! * every element is declared,
//! * element content matches its content model (via [`crate::matcher`]),
//! * character data only appears where the model allows it,
//! * attributes are declared, required attributes are present, enumerated
//!   and NMTOKEN values are lexically valid, `#FIXED` values match,
//! * ID attributes are unique document-wide and IDREF/IDREFS targets exist.
//!
//! The mapping layer requires a *valid* document before loading (§3), and
//! the IDREF resolution performed here is also what lets §4.4 determine
//! "which ID attribute is referenced by an IDREF value — this kind of
//! information cannot be captured from the DTD, rather from the XML
//! document".

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use xmlord_xml::{Document, NodeId, NodeKind};

use crate::ast::{AttType, DefaultDecl, Dtd};
use crate::matcher::{ContentMatcher, ContentModel};

/// What went wrong, where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Path of element names from the root, e.g. `University/Student`.
    pub path: String,
    pub kind: ValidationErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationErrorKind {
    RootMismatch { declared: String, actual: String },
    UndeclaredElement(String),
    ContentModelViolation { element: String, model: String, found: Vec<String> },
    TextNotAllowed { element: String },
    UndeclaredAttribute { element: String, attribute: String },
    RequiredAttributeMissing { element: String, attribute: String },
    FixedAttributeMismatch { element: String, attribute: String, expected: String, found: String },
    InvalidAttributeValue { element: String, attribute: String, value: String, expected: String },
    DuplicateId(String),
    UnresolvedIdref(String),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at {}: ", self.path)?;
        match &self.kind {
            ValidationErrorKind::RootMismatch { declared, actual } => {
                write!(f, "root element is <{actual}> but DOCTYPE declares {declared}")
            }
            ValidationErrorKind::UndeclaredElement(name) => {
                write!(f, "element <{name}> is not declared")
            }
            ValidationErrorKind::ContentModelViolation { element, model, found } => write!(
                f,
                "children of <{element}> do not match {model}: found ({})",
                found.join(",")
            ),
            ValidationErrorKind::TextNotAllowed { element } => {
                write!(f, "character data not allowed in <{element}>")
            }
            ValidationErrorKind::UndeclaredAttribute { element, attribute } => {
                write!(f, "attribute '{attribute}' is not declared on <{element}>")
            }
            ValidationErrorKind::RequiredAttributeMissing { element, attribute } => {
                write!(f, "required attribute '{attribute}' missing on <{element}>")
            }
            ValidationErrorKind::FixedAttributeMismatch { element, attribute, expected, found } => {
                write!(
                    f,
                    "#FIXED attribute '{attribute}' on <{element}> must be '{expected}', found '{found}'"
                )
            }
            ValidationErrorKind::InvalidAttributeValue { element, attribute, value, expected } => {
                write!(
                    f,
                    "attribute '{attribute}' on <{element}> has value '{value}', expected {expected}"
                )
            }
            ValidationErrorKind::DuplicateId(id) => write!(f, "duplicate ID value '{id}'"),
            ValidationErrorKind::UnresolvedIdref(id) => {
                write!(f, "IDREF '{id}' does not match any ID in the document")
            }
        }
    }
}

/// Result of a validation run: all errors, plus the ID → element index that
/// §4.4's IDREF→REF mapping consumes.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    pub errors: Vec<ValidationError>,
    /// ID attribute value → element node carrying it.
    pub ids: BTreeMap<String, NodeId>,
    /// (referencing element, attribute name, target id) for each IDREF use.
    pub idrefs: Vec<(NodeId, String, String)>,
}

impl ValidationReport {
    pub fn is_valid(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Validate `doc` against `dtd`. Returns the full report; use
/// [`ValidationReport::is_valid`] for a pass/fail answer.
pub fn validate(doc: &Document, dtd: &Dtd) -> ValidationReport {
    let mut ctx = Validator {
        doc,
        dtd,
        report: ValidationReport::default(),
        models: BTreeMap::new(),
    };
    if let Some(root) = doc.root_element() {
        if let Some(doctype) = &doc.doctype {
            let actual = doc.name(root).as_raw();
            if doctype.name != actual {
                ctx.report.errors.push(ValidationError {
                    path: actual.clone(),
                    kind: ValidationErrorKind::RootMismatch {
                        declared: doctype.name.clone(),
                        actual,
                    },
                });
            }
        }
        ctx.validate_element(root, String::new());
    }
    // Resolve IDREFs after the whole document is indexed.
    let ids: BTreeSet<&str> = ctx.report.ids.keys().map(String::as_str).collect();
    let mut unresolved = Vec::new();
    for (_, _, target) in &ctx.report.idrefs {
        if !ids.contains(target.as_str()) {
            unresolved.push(target.clone());
        }
    }
    for target in unresolved {
        ctx.report.errors.push(ValidationError {
            path: String::new(),
            kind: ValidationErrorKind::UnresolvedIdref(target),
        });
    }
    ctx.report
}

struct Validator<'a> {
    doc: &'a Document,
    dtd: &'a Dtd,
    report: ValidationReport,
    /// Cache of compiled content models per element name.
    models: BTreeMap<String, ContentModel>,
}

impl<'a> Validator<'a> {
    fn validate_element(&mut self, id: NodeId, parent_path: String) {
        let name = self.doc.name(id).as_raw();
        let path =
            if parent_path.is_empty() { name.clone() } else { format!("{parent_path}/{name}") };

        let declared = self.dtd.element(&name).is_some();
        if !declared {
            self.report.errors.push(ValidationError {
                path: path.clone(),
                kind: ValidationErrorKind::UndeclaredElement(name.clone()),
            });
        } else {
            self.check_content(id, &name, &path);
        }
        self.check_attributes(id, &name, &path);

        for child in self.doc.child_elements(id) {
            self.validate_element(child, path.clone());
        }
    }

    fn check_content(&mut self, id: NodeId, name: &str, path: &str) {
        if !self.models.contains_key(name) {
            let spec = &self.dtd.element(name).unwrap().content;
            self.models.insert(name.to_string(), ContentMatcher::compile(spec));
        }
        let model = &self.models[name];

        let child_names: Vec<String> = self
            .doc
            .child_elements(id)
            .iter()
            .map(|c| self.doc.name(*c).as_raw())
            .collect();
        let child_refs: Vec<&str> = child_names.iter().map(String::as_str).collect();
        if !model.matches_children(&child_refs) {
            let spec = &self.dtd.element(name).unwrap().content;
            self.report.errors.push(ValidationError {
                path: path.to_string(),
                kind: ValidationErrorKind::ContentModelViolation {
                    element: name.to_string(),
                    model: spec.to_string(),
                    found: child_names.clone(),
                },
            });
        }
        if !model.allows_text() {
            let has_text = self.doc.children(id).iter().any(|c| match self.doc.kind(*c) {
                NodeKind::Text(t) => !t.trim().is_empty(),
                NodeKind::CData(_) => true,
                _ => false,
            });
            if has_text {
                self.report.errors.push(ValidationError {
                    path: path.to_string(),
                    kind: ValidationErrorKind::TextNotAllowed { element: name.to_string() },
                });
            }
        }
    }

    fn check_attributes(&mut self, id: NodeId, name: &str, path: &str) {
        let defs = self.dtd.attributes_of(name);
        // Declared attributes: presence, defaults, value constraints.
        for def in defs {
            let value = self.doc.attribute(id, &def.name);
            match (&def.default, value) {
                (DefaultDecl::Required, None) => {
                    self.report.errors.push(ValidationError {
                        path: path.to_string(),
                        kind: ValidationErrorKind::RequiredAttributeMissing {
                            element: name.to_string(),
                            attribute: def.name.clone(),
                        },
                    });
                }
                (DefaultDecl::Fixed(expected), Some(found)) if found != expected => {
                    self.report.errors.push(ValidationError {
                        path: path.to_string(),
                        kind: ValidationErrorKind::FixedAttributeMismatch {
                            element: name.to_string(),
                            attribute: def.name.clone(),
                            expected: expected.clone(),
                            found: found.to_string(),
                        },
                    });
                }
                _ => {}
            }
            let effective: Option<String> = value
                .map(str::to_string)
                .or_else(|| def.default.default_value().map(str::to_string));
            let Some(val) = effective else { continue };
            self.check_attribute_value(id, name, path, &def.name, &def.att_type, &val);
        }
        // Undeclared attributes (namespace declarations are exempt — they
        // are infrastructure, stored by the §5 meta-table instead).
        for attr in self.doc.attributes(id) {
            let raw = attr.name.as_raw();
            if raw == "xmlns" || raw.starts_with("xmlns:") {
                continue;
            }
            if !defs.iter().any(|d| d.name == raw) {
                self.report.errors.push(ValidationError {
                    path: path.to_string(),
                    kind: ValidationErrorKind::UndeclaredAttribute {
                        element: name.to_string(),
                        attribute: raw,
                    },
                });
            }
        }
    }

    fn check_attribute_value(
        &mut self,
        id: NodeId,
        element: &str,
        path: &str,
        attribute: &str,
        att_type: &AttType,
        value: &str,
    ) {
        use xmlord_xml::name::{is_valid_ncname, is_valid_nmtoken};
        let invalid = |expected: &str, this: &mut Self| {
            this.report.errors.push(ValidationError {
                path: path.to_string(),
                kind: ValidationErrorKind::InvalidAttributeValue {
                    element: element.to_string(),
                    attribute: attribute.to_string(),
                    value: value.to_string(),
                    expected: expected.to_string(),
                },
            });
        };
        match att_type {
            AttType::Cdata => {}
            AttType::Id => {
                if !is_valid_ncname(value) {
                    invalid("an XML name", self);
                } else if self.report.ids.contains_key(value) {
                    self.report.errors.push(ValidationError {
                        path: path.to_string(),
                        kind: ValidationErrorKind::DuplicateId(value.to_string()),
                    });
                } else {
                    self.report.ids.insert(value.to_string(), id);
                }
            }
            AttType::Idref => {
                if !is_valid_ncname(value) {
                    invalid("an XML name", self);
                } else {
                    self.report.idrefs.push((id, attribute.to_string(), value.to_string()));
                }
            }
            AttType::Idrefs => {
                for token in value.split_whitespace() {
                    if !is_valid_ncname(token) {
                        invalid("XML names", self);
                    } else {
                        self.report.idrefs.push((id, attribute.to_string(), token.to_string()));
                    }
                }
            }
            AttType::Nmtoken => {
                if !is_valid_nmtoken(value) {
                    invalid("an NMTOKEN", self);
                }
            }
            AttType::Nmtokens => {
                if value.split_whitespace().next().is_none()
                    || !value.split_whitespace().all(is_valid_nmtoken)
                {
                    invalid("NMTOKENs", self);
                }
            }
            AttType::Entity | AttType::Entities => {
                // Entity attributes reference unparsed entities; accepted
                // lexically (non-validating stance, like the paper's parser).
                if !is_valid_nmtoken(value) {
                    invalid("an entity name", self);
                }
            }
            AttType::Notation(allowed) | AttType::Enumerated(allowed) => {
                if !allowed.iter().any(|a| a == value) {
                    invalid(&format!("one of ({})", allowed.join("|")), self);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dtd;
    use xmlord_xml::parse;

    const UNIVERSITY: &str = r#"
<!ELEMENT University (StudyCourse,Student*)>
<!ELEMENT Student (LName,FName,Course*)>
<!ATTLIST Student StudNr CDATA #REQUIRED>
<!ELEMENT Course (Name,Professor*,CreditPts?)>
<!ELEMENT Professor (PName,Subject+,Dept)>
<!ELEMENT LName (#PCDATA)> <!ELEMENT FName (#PCDATA)>
<!ELEMENT Name (#PCDATA)> <!ELEMENT PName (#PCDATA)>
<!ELEMENT Subject (#PCDATA)> <!ELEMENT Dept (#PCDATA)>
<!ELEMENT StudyCourse (#PCDATA)>
<!ELEMENT CreditPts (#PCDATA)>
"#;

    fn check(dtd_text: &str, xml: &str) -> ValidationReport {
        let dtd = parse_dtd(dtd_text).unwrap();
        let doc = parse(xml).unwrap();
        validate(&doc, &dtd)
    }

    #[test]
    fn valid_university_document_passes() {
        let report = check(
            UNIVERSITY,
            r#"<University><StudyCourse>CS</StudyCourse>
               <Student StudNr="1"><LName>Conrad</LName><FName>M</FName>
                 <Course><Name>DB</Name>
                   <Professor><PName>Kudrass</PName><Subject>DBS</Subject><Dept>CS</Dept></Professor>
                   <CreditPts>4</CreditPts>
                 </Course>
               </Student></University>"#,
        );
        assert!(report.is_valid(), "{:?}", report.errors);
    }

    #[test]
    fn missing_required_attribute_fails() {
        let report = check(
            UNIVERSITY,
            "<University><StudyCourse>CS</StudyCourse><Student><LName>a</LName><FName>b</FName></Student></University>",
        );
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::RequiredAttributeMissing { .. })));
    }

    #[test]
    fn wrong_child_order_fails_content_model() {
        let report = check(
            UNIVERSITY,
            r#"<University><StudyCourse>CS</StudyCourse>
               <Student StudNr="1"><FName>M</FName><LName>Conrad</LName></Student></University>"#,
        );
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::ContentModelViolation { .. })));
    }

    #[test]
    fn missing_plus_element_fails() {
        // Professor requires Subject+.
        let report = check(
            UNIVERSITY,
            r#"<University><StudyCourse>CS</StudyCourse>
               <Student StudNr="1"><LName>a</LName><FName>b</FName>
                 <Course><Name>DB</Name>
                   <Professor><PName>K</PName><Dept>CS</Dept></Professor>
                 </Course></Student></University>"#,
        );
        assert!(!report.is_valid());
    }

    #[test]
    fn undeclared_element_fails() {
        let report = check(UNIVERSITY, "<University><Bogus/></University>");
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::UndeclaredElement(ref n) if n == "Bogus")));
    }

    #[test]
    fn text_in_element_content_fails() {
        let report = check(
            UNIVERSITY,
            r#"<University>stray text<StudyCourse>CS</StudyCourse></University>"#,
        );
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::TextNotAllowed { .. })));
    }

    #[test]
    fn whitespace_between_elements_is_fine() {
        let report = check(
            UNIVERSITY,
            "<University>\n  <StudyCourse>CS</StudyCourse>\n</University>",
        );
        assert!(report.is_valid(), "{:?}", report.errors);
    }

    #[test]
    fn root_mismatch_reported() {
        let dtd = parse_dtd("<!ELEMENT a EMPTY><!ELEMENT b EMPTY>").unwrap();
        let doc = parse("<!DOCTYPE a><b/>").unwrap();
        let report = validate(&doc, &dtd);
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::RootMismatch { .. })));
    }

    #[test]
    fn undeclared_attribute_reported_but_xmlns_exempt() {
        let dtd = parse_dtd("<!ELEMENT a EMPTY>").unwrap();
        let doc = parse(r#"<a xmlns:x="urn:y" rogue="1"/>"#).unwrap();
        let report = validate(&doc, &dtd);
        assert_eq!(report.errors.len(), 1);
        assert!(matches!(
            report.errors[0].kind,
            ValidationErrorKind::UndeclaredAttribute { ref attribute, .. } if attribute == "rogue"
        ));
    }

    #[test]
    fn id_uniqueness_and_idref_resolution() {
        let dtd_text = r#"
            <!ELEMENT db (person*)>
            <!ELEMENT person (#PCDATA)>
            <!ATTLIST person id ID #REQUIRED boss IDREF #IMPLIED>"#;
        let ok = check(
            dtd_text,
            r#"<db><person id="p1">A</person><person id="p2" boss="p1">B</person></db>"#,
        );
        assert!(ok.is_valid(), "{:?}", ok.errors);
        assert_eq!(ok.ids.len(), 2);
        assert_eq!(ok.idrefs.len(), 1);

        let dup = check(dtd_text, r#"<db><person id="p1">A</person><person id="p1">B</person></db>"#);
        assert!(dup.errors.iter().any(|e| matches!(e.kind, ValidationErrorKind::DuplicateId(_))));

        let dangling = check(dtd_text, r#"<db><person id="p1" boss="ghost">A</person></db>"#);
        assert!(dangling
            .errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::UnresolvedIdref(ref t) if t == "ghost")));
    }

    #[test]
    fn idrefs_resolve_each_token() {
        let dtd_text = r#"
            <!ELEMENT db (p*)>
            <!ELEMENT p EMPTY>
            <!ATTLIST p id ID #IMPLIED friends IDREFS #IMPLIED>"#;
        let report = check(
            dtd_text,
            r#"<db><p id="a"/><p id="b"/><p friends="a b"/></db>"#,
        );
        assert!(report.is_valid(), "{:?}", report.errors);
        assert_eq!(report.idrefs.len(), 2);
    }

    #[test]
    fn enumerated_attribute_values_checked() {
        let dtd_text = r#"<!ELEMENT e EMPTY><!ATTLIST e kind (x|y) "x">"#;
        assert!(check(dtd_text, r#"<e kind="y"/>"#).is_valid());
        assert!(!check(dtd_text, r#"<e kind="z"/>"#).is_valid());
    }

    #[test]
    fn fixed_attribute_mismatch_detected() {
        let dtd_text = r#"<!ELEMENT e EMPTY><!ATTLIST e v CDATA #FIXED "1">"#;
        assert!(check(dtd_text, r#"<e v="1"/>"#).is_valid());
        assert!(!check(dtd_text, r#"<e v="2"/>"#).is_valid());
        // Absent fixed attribute is fine — the default applies.
        assert!(check(dtd_text, "<e/>").is_valid());
    }

    #[test]
    fn nmtoken_lexical_check() {
        let dtd_text = r#"<!ELEMENT e EMPTY><!ATTLIST e n NMTOKEN #IMPLIED>"#;
        assert!(check(dtd_text, r#"<e n="a-1"/>"#).is_valid());
        assert!(!check(dtd_text, r#"<e n="has space"/>"#).is_valid());
    }

    #[test]
    fn error_messages_are_informative() {
        let report = check(UNIVERSITY, "<University><Bogus/></University>");
        let all: String = report.errors.iter().map(|e| e.to_string()).collect();
        assert!(all.contains("Bogus"), "{all}");
        assert!(all.contains("University"), "{all}");
    }
}

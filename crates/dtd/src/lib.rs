//! # xmlord-dtd — DTD parser, DTD DOM tree, validator and element graph
//!
//! Substrate **S2** of the reproduction of *Kudrass & Conrad (EDBT 2002)*.
//! It plays the role the Wutka DTD parser \[10\] plays in the paper's
//! `XML2Oracle` (Fig. 1): a non-validating parser that "analyzes the DTD
//! only and transforms it into a DTD Document Object Model".
//!
//! The crate provides, in paper order:
//!
//! * [`ast`] — the declaration-level model: `<!ELEMENT>` content models with
//!   the `?`/`*`/`+` iteration and optionality operators of §4.2/§4.3,
//!   `<!ATTLIST>` with the attribute types of §4.4 (`CDATA`, `ID`, `IDREF`,
//!   `NMTOKEN`, …) and default declarations (`#REQUIRED`, `#IMPLIED`, fixed
//!   and literal defaults), `<!ENTITY>` (general and parameter), and
//!   `<!NOTATION>`.
//! * [`parser`] — the DTD text parser, with internal parameter-entity
//!   expansion.
//! * [`tree`] — the "DTD DOM tree" the mapping algorithm of Fig. 2 consumes:
//!   a tree of element nodes annotated with occurrence ("set-valued") and
//!   optionality, with the element's attribute list attached to each node.
//! * [`graph`] — the element dependency graph of §6.2: detects elements with
//!   multiple parents (Fig. 3) and recursive element relationships, which
//!   the tree representation cannot express and which the mapping layer must
//!   break with `REF` attributes.
//! * [`lint`] — per-strategy static analysis of a DTD (maplint level 1):
//!   span-carrying diagnostics for constructs each mapping strategy
//!   handles lossily or not at all.
//! * [`matcher`] — content-model matching engine (Glushkov-style NFA).
//! * [`validator`] — validates a parsed document against the DTD: content
//!   models, attribute constraints, ID uniqueness and IDREF resolution —
//!   the "validity check" box of Fig. 1.
//! * [`xsd`] — the paper's §7 future-work item: an XML Schema subset
//!   analyzed into the same structural model, plus scalar type hints.

pub mod ast;
pub mod graph;
pub mod lint;
pub mod matcher;
pub mod parser;
pub mod tree;
pub mod validator;
pub mod xsd;

pub use ast::{
    AttDef, AttType, AttlistDecl, ContentParticle, ContentSpec, DefaultDecl, Dtd, ElementDecl,
    EntityDecl, Occurrence,
};
pub use graph::ElementGraph;
pub use lint::{lint_dtd, parse_dtd_spanned, DtdSource, MappingStrategy, StrategyVerdict};
pub use parser::parse_dtd;
pub use tree::{DtdTree, DtdTreeNode, NodeCardinality};
pub use validator::{validate, ValidationError, ValidationErrorKind};

//! Element dependency graph (§6.2, "Non-hierarchical and Recursive
//! Relationships").
//!
//! "The usage of a tree as an intermediate data structure implies
//! restrictions for some documents. … In such cases a graph should be the
//! preferred data structure." This module is that graph: nodes are element
//! types, edges are parent→child relationships from the content models. The
//! mapping layer uses it to find elements with multiple parents (Fig. 3) and
//! the edges on cycles that must be broken with REF-valued attributes.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::Dtd;

/// Directed graph over element type names.
#[derive(Debug, Clone, Default)]
pub struct ElementGraph {
    /// parent → children (deduplicated, ordered).
    edges: BTreeMap<String, Vec<String>>,
    /// child → parents.
    reverse: BTreeMap<String, Vec<String>>,
    nodes: BTreeSet<String>,
}

impl ElementGraph {
    /// Build the graph from all element declarations of a DTD.
    pub fn build(dtd: &Dtd) -> ElementGraph {
        let mut graph = ElementGraph::default();
        for (name, decl) in &dtd.elements {
            graph.nodes.insert(name.clone());
            for child in decl.content.child_names() {
                graph.add_edge(name, &child);
            }
        }
        graph
    }

    fn add_edge(&mut self, parent: &str, child: &str) {
        self.nodes.insert(parent.to_string());
        self.nodes.insert(child.to_string());
        let children = self.edges.entry(parent.to_string()).or_default();
        if !children.iter().any(|c| c == child) {
            children.push(child.to_string());
        }
        let parents = self.reverse.entry(child.to_string()).or_default();
        if !parents.iter().any(|p| p == parent) {
            parents.push(parent.to_string());
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.values().map(Vec::len).sum()
    }

    pub fn children_of(&self, name: &str) -> &[String] {
        self.edges.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn parents_of(&self, name: &str) -> &[String] {
        self.reverse.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Elements with more than one distinct parent — the Fig. 3 situation
    /// that duplicates nodes in the DTD tree.
    pub fn multi_parent_elements(&self) -> Vec<&str> {
        self.reverse
            .iter()
            .filter(|(_, parents)| parents.len() > 1)
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// Candidate root elements: declared elements that appear as nobody's
    /// child. (A document's actual root is named by its DOCTYPE; this is the
    /// structural guess when none is given.)
    pub fn root_candidates(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter(|n| self.parents_of(n).is_empty())
            .map(String::as_str)
            .collect()
    }

    /// True if `name` can (transitively) contain itself.
    pub fn is_recursive(&self, name: &str) -> bool {
        let mut stack: Vec<&str> = self.children_of(name).iter().map(String::as_str).collect();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        while let Some(cur) = stack.pop() {
            if cur == name {
                return true;
            }
            if seen.insert(cur) {
                stack.extend(self.children_of(cur).iter().map(String::as_str));
            }
        }
        false
    }

    /// All elements that lie on at least one cycle.
    pub fn recursive_elements(&self) -> Vec<&str> {
        self.nodes.iter().filter(|n| self.is_recursive(n)).map(String::as_str).collect()
    }

    /// Edges whose removal breaks all cycles (a simple DFS back-edge
    /// computation; deterministic because children are ordered). The mapping
    /// layer represents each returned `(parent, child)` edge as a REF-valued
    /// attribute instead of direct aggregation (§6.2).
    pub fn back_edges(&self) -> Vec<(String, String)> {
        self.back_edges_from(None)
    }

    /// Like [`Self::back_edges`], but starts the DFS at `root` so cycles
    /// break on the natural document-down orientation (e.g. in §6.2's
    /// Professor⇄Dept cycle rooted at Professor, the broken edge is
    /// Dept→Professor — the paper's `TabRefProfessor` direction).
    pub fn back_edges_from(&self, root: Option<&str>) -> Vec<(String, String)> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color: BTreeMap<&str, Color> =
            self.nodes.iter().map(|n| (n.as_str(), Color::White)).collect();
        let mut back = Vec::new();

        // Iterative DFS preserving discovery order; the chosen root (if any)
        // is explored first.
        let starts: Vec<&String> = root
            .and_then(|r| self.nodes.get(r))
            .into_iter()
            .chain(self.nodes.iter())
            .collect();
        for start in starts {
            if color[start.as_str()] != Color::White {
                continue;
            }
            // Stack of (node, next-child-index).
            let mut stack: Vec<(&str, usize)> = vec![(start.as_str(), 0)];
            color.insert(start.as_str(), Color::Grey);
            while let Some((node, idx)) = stack.pop() {
                let children = self.children_of(node);
                if idx < children.len() {
                    stack.push((node, idx + 1));
                    let child = children[idx].as_str();
                    match color[child] {
                        Color::White => {
                            color.insert(child, Color::Grey);
                            stack.push((child, 0));
                        }
                        Color::Grey => back.push((node.to_string(), child.to_string())),
                        Color::Black => {}
                    }
                } else {
                    color.insert(node, Color::Black);
                }
            }
        }
        back
    }

    /// Topological order of the non-cyclic part: children before parents
    /// (the order in which object types must be created, §4.1). Elements on
    /// cycles are appended at the end in name order — the DDL generator
    /// handles them with forward (incomplete) type declarations.
    pub fn bottom_up_order(&self) -> Vec<String> {
        self.bottom_up_order_from(None)
    }

    /// [`Self::bottom_up_order`] with cycle-breaking consistent with
    /// [`Self::back_edges_from`] for the given root.
    pub fn bottom_up_order_from(&self, root: Option<&str>) -> Vec<String> {
        let back: BTreeSet<(String, String)> =
            self.back_edges_from(root).into_iter().collect();
        let mut order = Vec::new();
        let mut done: BTreeSet<&str> = BTreeSet::new();
        // Kahn-style: repeatedly take nodes whose (non-back-edge) children
        // are all done.
        loop {
            let mut progressed = false;
            for node in &self.nodes {
                if done.contains(node.as_str()) {
                    continue;
                }
                let ready = self.children_of(node).iter().all(|c| {
                    c == node
                        || done.contains(c.as_str())
                        || back.contains(&(node.clone(), c.clone()))
                });
                if ready {
                    order.push(node.clone());
                    done.insert(node.as_str());
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        // Any remaining nodes (pathological cycles): append deterministically.
        for node in &self.nodes {
            if !done.contains(node.as_str()) {
                order.push(node.clone());
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dtd;

    #[test]
    fn university_graph_shape() {
        let dtd = parse_dtd(
            r#"<!ELEMENT University (StudyCourse,Student*)>
               <!ELEMENT Student (LName,FName,Course*)>
               <!ELEMENT Course (Name,Professor*,CreditPts?)>
               <!ELEMENT Professor (PName,Subject+,Dept)>
               <!ELEMENT LName (#PCDATA)> <!ELEMENT FName (#PCDATA)>
               <!ELEMENT Name (#PCDATA)> <!ELEMENT PName (#PCDATA)>
               <!ELEMENT Subject (#PCDATA)> <!ELEMENT Dept (#PCDATA)>
               <!ELEMENT StudyCourse (#PCDATA)>
<!ELEMENT CreditPts (#PCDATA)>"#,
        )
        .unwrap();
        let g = ElementGraph::build(&dtd);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.children_of("Course"), &["Name", "Professor", "CreditPts"]);
        assert_eq!(g.parents_of("Professor"), &["Course"]);
        assert_eq!(g.root_candidates(), vec!["University"]);
        assert!(g.multi_parent_elements().is_empty());
        assert!(g.recursive_elements().is_empty());
        assert!(g.back_edges().is_empty());
    }

    #[test]
    fn fig3_multi_parent_detection() {
        let dtd = parse_dtd(
            r#"<!ELEMENT Faculty (Professor,Student)>
               <!ELEMENT Professor (PName,Address)>
               <!ELEMENT Address (Street,City)>
               <!ELEMENT Student (Address,SName)>
               <!ELEMENT PName (#PCDATA)> <!ELEMENT SName (#PCDATA)>
               <!ELEMENT Street (#PCDATA)> <!ELEMENT City (#PCDATA)>"#,
        )
        .unwrap();
        let g = ElementGraph::build(&dtd);
        assert_eq!(g.multi_parent_elements(), vec!["Address"]);
        assert_eq!(g.parents_of("Address"), &["Professor", "Student"]);
    }

    #[test]
    fn section_6_2_recursion_detection() {
        let dtd = parse_dtd(
            r#"<!ELEMENT Professor (PName,Dept)>
               <!ELEMENT Dept (DName,Professor*)>
               <!ELEMENT PName (#PCDATA)>
               <!ELEMENT DName (#PCDATA)>"#,
        )
        .unwrap();
        let g = ElementGraph::build(&dtd);
        assert!(g.is_recursive("Professor"));
        assert!(g.is_recursive("Dept"));
        assert!(!g.is_recursive("PName"));
        let back = g.back_edges();
        assert_eq!(back.len(), 1);
        // The cycle Professor→Dept→Professor is broken at exactly one edge.
        let (from, to) = &back[0];
        assert!(
            (from == "Dept" && to == "Professor") || (from == "Professor" && to == "Dept"),
            "unexpected back edge {from}->{to}"
        );
    }

    #[test]
    fn self_recursive_element() {
        let dtd = parse_dtd("<!ELEMENT part (name,part*)><!ELEMENT name (#PCDATA)>").unwrap();
        let g = ElementGraph::build(&dtd);
        assert!(g.is_recursive("part"));
        assert_eq!(g.back_edges(), vec![("part".to_string(), "part".to_string())]);
    }

    #[test]
    fn bottom_up_order_puts_children_first() {
        let dtd = parse_dtd(
            r#"<!ELEMENT a (b,c)><!ELEMENT b (d)><!ELEMENT c (#PCDATA)>
               <!ELEMENT d (#PCDATA)>"#,
        )
        .unwrap();
        let g = ElementGraph::build(&dtd);
        let order = g.bottom_up_order();
        let pos = |n: &str| order.iter().position(|x| x == n).unwrap();
        assert!(pos("d") < pos("b"));
        assert!(pos("b") < pos("a"));
        assert!(pos("c") < pos("a"));
    }

    #[test]
    fn bottom_up_order_handles_cycles() {
        let dtd = parse_dtd(
            r#"<!ELEMENT Professor (PName,Dept)>
               <!ELEMENT Dept (DName,Professor*)>
               <!ELEMENT PName (#PCDATA)>
               <!ELEMENT DName (#PCDATA)>"#,
        )
        .unwrap();
        let g = ElementGraph::build(&dtd);
        let order = g.bottom_up_order();
        assert_eq!(order.len(), 4);
        // Every element appears exactly once.
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn edge_count_deduplicates() {
        // b referenced twice in one model — single edge.
        let dtd = parse_dtd("<!ELEMENT a (b,b)><!ELEMENT b (#PCDATA)>").unwrap();
        let g = ElementGraph::build(&dtd);
        assert_eq!(g.edge_count(), 1);
    }
}

//! Content-model matching.
//!
//! Decides whether a sequence of child-element names conforms to a content
//! particle — the core of the Fig. 1 validity check. The implementation is a
//! Glushkov-style position automaton built directly from the
//! [`ContentParticle`] tree: every `Name` leaf becomes a position, and the
//! standard nullable/first/last/follow sets give an ε-free NFA that is
//! simulated with a set of active positions. This is linear in
//! `input × positions` and — unlike naive backtracking — has no exponential
//! blow-up on nested `*` groups.

use std::collections::BTreeSet;

use crate::ast::{ContentParticle, ContentSpec, Occurrence};

/// Compiled matcher for one element's content model.
#[derive(Debug, Clone)]
pub struct ContentMatcher {
    /// Position index → element name expected at that position.
    symbols: Vec<String>,
    nullable: bool,
    first: BTreeSet<usize>,
    last: BTreeSet<usize>,
    /// `follow[p]` = positions that may come directly after p.
    follow: Vec<BTreeSet<usize>>,
}

impl ContentMatcher {
    /// Compile a matcher from a content specification. `Empty` accepts only
    /// the empty sequence; `Any`/`PcData`/`Mixed` accept accordingly.
    pub fn compile(spec: &ContentSpec) -> ContentModel {
        match spec {
            ContentSpec::Empty => ContentModel::Empty,
            ContentSpec::Any => ContentModel::Any,
            ContentSpec::PcData => ContentModel::PcDataOnly,
            ContentSpec::Mixed(names) => ContentModel::Mixed(names.iter().cloned().collect()),
            ContentSpec::Children(cp) => ContentModel::Children(Self::from_particle(cp)),
        }
    }

    /// Build the Glushkov automaton for a particle.
    pub fn from_particle(cp: &ContentParticle) -> ContentMatcher {
        let mut symbols = Vec::new();
        collect_symbols(cp, &mut symbols);
        let mut follow = vec![BTreeSet::new(); symbols.len()];
        let info = build_glushkov(cp, &mut PositionCounter::default(), &mut follow);
        ContentMatcher {
            symbols,
            nullable: info.nullable,
            first: info.first,
            last: info.last,
            follow,
        }
    }

    /// Does `children` (names of child elements, in order) match?
    pub fn matches(&self, children: &[&str]) -> bool {
        if children.is_empty() {
            return self.nullable;
        }
        let mut active: BTreeSet<usize> = self
            .first
            .iter()
            .copied()
            .filter(|&p| self.symbols[p] == children[0])
            .collect();
        if active.is_empty() {
            return false;
        }
        for name in &children[1..] {
            let mut next = BTreeSet::new();
            for &p in &active {
                for &q in &self.follow[p] {
                    if self.symbols[q] == *name {
                        next.insert(q);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            active = next;
        }
        active.iter().any(|p| self.last.contains(p))
    }

    /// Names that may legally appear first.
    pub fn first_names(&self) -> BTreeSet<&str> {
        self.first.iter().map(|&p| self.symbols[p].as_str()).collect()
    }
}

/// A compiled content model covering every [`ContentSpec`] variant.
#[derive(Debug, Clone)]
pub enum ContentModel {
    Empty,
    Any,
    PcDataOnly,
    /// Allowed child element names in mixed content.
    Mixed(BTreeSet<String>),
    Children(ContentMatcher),
}

impl ContentModel {
    /// Check a child-element name sequence (text handled separately).
    pub fn matches_children(&self, children: &[&str]) -> bool {
        match self {
            ContentModel::Empty => children.is_empty(),
            ContentModel::Any => true,
            ContentModel::PcDataOnly => children.is_empty(),
            ContentModel::Mixed(allowed) => {
                children.iter().all(|c| allowed.contains(*c))
            }
            ContentModel::Children(m) => m.matches(children),
        }
    }

    /// May the element contain character data (other than whitespace)?
    pub fn allows_text(&self) -> bool {
        matches!(self, ContentModel::Any | ContentModel::PcDataOnly | ContentModel::Mixed(_))
    }
}

// ---------------------------------------------------------------------------
// Glushkov construction
// ---------------------------------------------------------------------------

struct GlushkovInfo {
    nullable: bool,
    first: BTreeSet<usize>,
    last: BTreeSet<usize>,
}

fn apply_occurrence(mut info: GlushkovInfo, occ: Occurrence) -> GlushkovInfo {
    match occ {
        Occurrence::One | Occurrence::OneOrMore => {}
        Occurrence::Optional | Occurrence::ZeroOrMore => info.nullable = true,
    }
    info
}

/// Number the leaves depth-first: position = index into `symbols`.
fn collect_symbols(cp: &ContentParticle, symbols: &mut Vec<String>) {
    match cp {
        ContentParticle::Name(name, _) => symbols.push(name.clone()),
        ContentParticle::Seq(children, _) | ContentParticle::Choice(children, _) => {
            for child in children {
                collect_symbols(child, symbols);
            }
        }
    }
}

#[derive(Default)]
struct PositionCounter {
    next: usize,
}

/// Single recursive pass computing nullable/first/last and filling the
/// `follow` sets. Leaves are numbered in the same depth-first order as in
/// [`collect_symbols`].
fn build_glushkov(
    cp: &ContentParticle,
    counter: &mut PositionCounter,
    follow: &mut [BTreeSet<usize>],
) -> GlushkovInfo {
    let base = match cp {
        ContentParticle::Name(_, _) => {
            let pos = counter.next;
            counter.next += 1;
            GlushkovInfo {
                nullable: false,
                first: BTreeSet::from([pos]),
                last: BTreeSet::from([pos]),
            }
        }
        ContentParticle::Seq(children, _) => {
            let infos: Vec<GlushkovInfo> =
                children.iter().map(|c| build_glushkov(c, counter, follow)).collect();
            // For each adjacent pair (considering nullable skipping):
            // last(i) connects to first(j) for the next non-skippable j chain.
            for i in 0..infos.len() {
                let mut j = i + 1;
                while j < infos.len() {
                    for &p in &infos[i].last {
                        for &q in &infos[j].first {
                            follow[p].insert(q);
                        }
                    }
                    if infos[j].nullable {
                        j += 1;
                    } else {
                        break;
                    }
                }
            }
            let nullable = infos.iter().all(|i| i.nullable);
            let mut first = BTreeSet::new();
            for info in &infos {
                first.extend(&info.first);
                if !info.nullable {
                    break;
                }
            }
            let mut last = BTreeSet::new();
            for info in infos.iter().rev() {
                last.extend(&info.last);
                if !info.nullable {
                    break;
                }
            }
            GlushkovInfo { nullable, first, last }
        }
        ContentParticle::Choice(children, _) => {
            let infos: Vec<GlushkovInfo> =
                children.iter().map(|c| build_glushkov(c, counter, follow)).collect();
            GlushkovInfo {
                nullable: infos.iter().any(|i| i.nullable),
                first: infos.iter().flat_map(|i| i.first.iter().copied()).collect(),
                last: infos.iter().flat_map(|i| i.last.iter().copied()).collect(),
            }
        }
    };
    // Repetition: last positions loop back to first positions.
    let occ = cp.occurrence();
    if matches!(occ, Occurrence::ZeroOrMore | Occurrence::OneOrMore) {
        for &p in &base.last {
            for &q in &base.first {
                follow[p].insert(q);
            }
        }
    }
    apply_occurrence(base, occ)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dtd;

    fn matcher_for(model: &str) -> ContentModel {
        let dtd = parse_dtd(&format!("<!ELEMENT root {model}>")).unwrap();
        ContentMatcher::compile(&dtd.element("root").unwrap().content)
    }

    fn check(model: &str, children: &[&str]) -> bool {
        matcher_for(model).matches_children(children)
    }

    #[test]
    fn sequence_matching() {
        assert!(check("(a,b,c)", &["a", "b", "c"]));
        assert!(!check("(a,b,c)", &["a", "c", "b"]));
        assert!(!check("(a,b,c)", &["a", "b"]));
        assert!(!check("(a,b,c)", &["a", "b", "c", "c"]));
        assert!(!check("(a,b,c)", &[]));
    }

    #[test]
    fn optional_elements() {
        assert!(check("(a,b?,c)", &["a", "b", "c"]));
        assert!(check("(a,b?,c)", &["a", "c"]));
        assert!(!check("(a,b?,c)", &["a", "b", "b", "c"]));
    }

    #[test]
    fn star_and_plus() {
        assert!(check("(a*)", &[]));
        assert!(check("(a*)", &["a", "a", "a"]));
        assert!(check("(a+)", &["a"]));
        assert!(!check("(a+)", &[]));
        assert!(check("(a,b*)", &["a"]));
        assert!(check("(a,b*)", &["a", "b", "b"]));
    }

    #[test]
    fn choices() {
        assert!(check("(a|b)", &["a"]));
        assert!(check("(a|b)", &["b"]));
        assert!(!check("(a|b)", &["a", "b"]));
        assert!(!check("(a|b)", &["c"]));
    }

    #[test]
    fn nested_groups() {
        // ((a,b)|c)+ : one or more of either "a b" or "c".
        assert!(check("((a,b)|c)+", &["a", "b"]));
        assert!(check("((a,b)|c)+", &["c", "a", "b", "c"]));
        assert!(!check("((a,b)|c)+", &["a", "c"]));
        assert!(!check("((a,b)|c)+", &[]));
    }

    #[test]
    fn repeated_groups_loop_correctly() {
        // (a,b)* : pairs only.
        assert!(check("((a,b))*", &[]));
        assert!(check("((a,b))*", &["a", "b", "a", "b"]));
        assert!(!check("((a,b))*", &["a", "b", "a"]));
    }

    #[test]
    fn university_content_model() {
        // From Appendix A: (Name,Professor*,CreditPts?)
        let m = matcher_for("(Name,Professor*,CreditPts?)");
        assert!(m.matches_children(&["Name"]));
        assert!(m.matches_children(&["Name", "Professor", "Professor"]));
        assert!(m.matches_children(&["Name", "Professor", "CreditPts"]));
        assert!(m.matches_children(&["Name", "CreditPts"]));
        assert!(!m.matches_children(&["Professor", "Name"]));
        assert!(!m.matches_children(&["Name", "CreditPts", "Professor"]));
    }

    #[test]
    fn nullable_prefixes_in_sequences() {
        // (a?,b?,c) — c may come first.
        assert!(check("(a?,b?,c)", &["c"]));
        assert!(check("(a?,b?,c)", &["b", "c"]));
        assert!(check("(a?,b?,c)", &["a", "c"]));
        assert!(!check("(a?,b?,c)", &["b", "a", "c"]));
    }

    #[test]
    fn empty_and_any_and_pcdata_models() {
        let dtd = parse_dtd("<!ELEMENT e EMPTY><!ELEMENT a ANY><!ELEMENT p (#PCDATA)>").unwrap();
        let e = ContentMatcher::compile(&dtd.element("e").unwrap().content);
        assert!(e.matches_children(&[]) && !e.matches_children(&["x"]) && !e.allows_text());
        let a = ContentMatcher::compile(&dtd.element("a").unwrap().content);
        assert!(a.matches_children(&["x", "y"]) && a.allows_text());
        let p = ContentMatcher::compile(&dtd.element("p").unwrap().content);
        assert!(p.matches_children(&[]) && !p.matches_children(&["x"]) && p.allows_text());
    }

    #[test]
    fn mixed_model_accepts_declared_names_any_order() {
        let dtd = parse_dtd("<!ELEMENT m (#PCDATA|i|b)*>").unwrap();
        let m = ContentMatcher::compile(&dtd.element("m").unwrap().content);
        assert!(m.matches_children(&[]));
        assert!(m.matches_children(&["b", "i", "b"]));
        assert!(!m.matches_children(&["u"]));
        assert!(m.allows_text());
    }

    #[test]
    fn first_names_reported() {
        let dtd = parse_dtd("<!ELEMENT r (a?,b)>").unwrap();
        if let ContentSpec::Children(cp) = &dtd.element("r").unwrap().content {
            let m = ContentMatcher::from_particle(cp);
            let names: Vec<&str> = m.first_names().into_iter().collect();
            assert_eq!(names, vec!["a", "b"]);
        } else {
            panic!("expected children model");
        }
    }

    /// Same-name positions: (a,a) must require exactly two.
    #[test]
    fn duplicate_names_in_model() {
        assert!(check("(a,a)", &["a", "a"]));
        assert!(!check("(a,a)", &["a"]));
        assert!(!check("(a,a)", &["a", "a", "a"]));
    }
}

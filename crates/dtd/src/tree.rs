//! The "DTD DOM tree" — the paper's intermediate representation.
//!
//! Fig. 1: "The DTD is also represented in a tree structure considering
//! constraints, such as occurrence and optionality of elements. The DTD tree
//! representation is the precondition for the definition of the database
//! schema." This module builds that tree: starting from a root element, each
//! node is an element type annotated with the *cardinality* it has in its
//! parent's content model, plus its attribute definitions.
//!
//! §6.2 notes the limits of a tree: an element with multiple parents is
//! "represented repeatedly as node in the generated DTD tree" (we do the
//! same), and recursion cannot be represented at all. Recursive expansions
//! are cut by marking the node [`DtdTreeNode::recursion_cut`]; the mapping
//! layer consults the [`crate::graph::ElementGraph`] and breaks such edges
//! with `REF` attributes.

use std::fmt;

use crate::ast::{AttDef, ContentParticle, ContentSpec, Dtd, Occurrence};

/// Occurrence and optionality of a node below its parent.
///
/// Aggregates the operators on the path from the parent's content model root
/// down to the child name: nested groups can make an element both
/// "set-valued" and "optional" even if the name itself carries no operator
/// (e.g. `(a,b)*` makes `b` set-valued and optional).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCardinality {
    /// May occur more than once (paper: "set-valued element", §4.2).
    pub set_valued: bool,
    /// May be absent (paper: nullable, §4.3).
    pub optional: bool,
}

impl NodeCardinality {
    pub const ROOT: NodeCardinality = NodeCardinality { set_valued: false, optional: false };

    fn from_occurrence(occ: Occurrence) -> Self {
        NodeCardinality { set_valued: occ.is_set_valued(), optional: occ.is_optional() }
    }

    fn under(self, outer: Occurrence) -> Self {
        NodeCardinality {
            set_valued: self.set_valued || outer.is_set_valued(),
            optional: self.optional || outer.is_optional(),
        }
    }

    /// §4.3: mandatory elements map to NOT NULL columns.
    pub fn is_mandatory(self) -> bool {
        !self.optional
    }
}

impl fmt::Display for NodeCardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.set_valued, self.optional) {
            (false, false) => write!(f, "1"),
            (false, true) => write!(f, "?"),
            (true, false) => write!(f, "+"),
            (true, true) => write!(f, "*"),
        }
    }
}

/// One node of the DTD tree: an element type in a specific parent context.
#[derive(Debug, Clone)]
pub struct DtdTreeNode {
    /// Element type name.
    pub name: String,
    /// Cardinality within the parent (ROOT for the root node).
    pub cardinality: NodeCardinality,
    /// Content classification of the element type.
    pub content: ContentSpec,
    /// Attribute definitions from the merged ATTLISTs.
    pub attributes: Vec<AttDef>,
    /// Child nodes in content-model order (complex elements only).
    pub children: Vec<DtdTreeNode>,
    /// True when this element already occurred on the path from the root —
    /// expansion stops here and the mapping layer must emit a REF (§6.2).
    pub recursion_cut: bool,
    /// True when the element is declared as a child somewhere in the DTD but
    /// has no `<!ELEMENT>` declaration of its own.
    pub undeclared: bool,
}

impl DtdTreeNode {
    /// Paper §4.1: simple = `(#PCDATA)` only.
    pub fn is_simple(&self) -> bool {
        self.content.is_simple()
    }

    pub fn is_complex(&self) -> bool {
        self.content.is_complex()
    }

    /// Depth-first pre-order walk.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a DtdTreeNode, usize)) {
        self.walk_at(0, visit);
    }

    fn walk_at<'a>(&'a self, depth: usize, visit: &mut impl FnMut(&'a DtdTreeNode, usize)) {
        visit(self, depth);
        for child in &self.children {
            child.walk_at(depth + 1, visit);
        }
    }

    /// Render an indented outline (used by examples and tests).
    pub fn outline(&self) -> String {
        let mut out = String::new();
        self.walk(&mut |node, depth| {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&node.name);
            if node.cardinality != NodeCardinality::ROOT {
                out.push_str(&format!(" [{}]", node.cardinality));
            }
            if node.recursion_cut {
                out.push_str(" (recursive)");
            }
            if node.is_simple() {
                out.push_str(" #PCDATA");
            }
            for attr in &node.attributes {
                out.push_str(&format!(" @{}", attr.name));
            }
            out.push('\n');
        });
        out
    }
}

/// The DTD tree rooted at a chosen document element.
#[derive(Debug, Clone)]
pub struct DtdTree {
    pub root: DtdTreeNode,
}

impl DtdTree {
    /// Build the tree for `root_element`. Elements with multiple parents are
    /// duplicated (as the paper's Fig. 3 shows); recursion is cut with
    /// [`DtdTreeNode::recursion_cut`].
    pub fn build(dtd: &Dtd, root_element: &str) -> DtdTree {
        let mut path = Vec::new();
        let root = build_node(dtd, root_element, NodeCardinality::ROOT, &mut path);
        DtdTree { root }
    }

    /// All nodes in pre-order.
    pub fn nodes(&self) -> Vec<&DtdTreeNode> {
        let mut out = Vec::new();
        self.root.walk(&mut |node, _| out.push(node));
        out
    }

    /// Count of nodes whose element name is `name` (multi-parent elements
    /// appear once per parent context).
    pub fn occurrences_of(&self, name: &str) -> usize {
        self.nodes().iter().filter(|n| n.name == name).count()
    }

    /// True if any node was cut due to recursion.
    pub fn has_recursion(&self) -> bool {
        self.nodes().iter().any(|n| n.recursion_cut)
    }
}

fn build_node(
    dtd: &Dtd,
    name: &str,
    cardinality: NodeCardinality,
    path: &mut Vec<String>,
) -> DtdTreeNode {
    let attributes = dtd.attributes_of(name).to_vec();
    let decl = dtd.element(name);
    let content = decl.map(|d| d.content.clone()).unwrap_or(ContentSpec::Any);
    let undeclared = decl.is_none();
    if path.iter().any(|p| p == name) {
        return DtdTreeNode {
            name: name.to_string(),
            cardinality,
            content,
            attributes,
            children: Vec::new(),
            recursion_cut: true,
            undeclared,
        };
    }
    path.push(name.to_string());
    let mut children = Vec::new();
    if !undeclared {
        match &content {
            ContentSpec::Children(cp) => {
                collect_children(dtd, cp, Occurrence::One, path, &mut children);
            }
            ContentSpec::Mixed(names) => {
                // Mixed-content children are inherently set-valued & optional.
                for child_name in names {
                    children.push(build_node(
                        dtd,
                        child_name,
                        NodeCardinality { set_valued: true, optional: true },
                        path,
                    ));
                }
            }
            _ => {}
        }
    }
    path.pop();
    DtdTreeNode {
        name: name.to_string(),
        cardinality,
        content,
        attributes,
        children,
        recursion_cut: false,
        undeclared,
    }
}

/// Walk a content particle, accumulating outer-group occurrence into each
/// name's cardinality. Duplicate names inside one model produce one node per
/// mention position; the mapping layer deduplicates by name.
fn collect_children(
    dtd: &Dtd,
    cp: &ContentParticle,
    outer: Occurrence,
    path: &mut Vec<String>,
    out: &mut Vec<DtdTreeNode>,
) {
    match cp {
        ContentParticle::Name(name, occ) => {
            let card = NodeCardinality::from_occurrence(*occ).under(outer);
            out.push(build_node(dtd, name, card, path));
        }
        ContentParticle::Seq(children, occ) => {
            let combined = combine(outer, *occ);
            for child in children {
                collect_children(dtd, child, combined, path, out);
            }
        }
        ContentParticle::Choice(children, occ) => {
            // Members of a choice are individually optional: a valid document
            // may pick any single alternative.
            let combined = combine_choice(combine(outer, *occ));
            for child in children {
                collect_children(dtd, child, combined, path, out);
            }
        }
    }
}

/// Combine two nesting occurrence levels into the stronger one.
fn combine(outer: Occurrence, inner: Occurrence) -> Occurrence {
    let set = outer.is_set_valued() || inner.is_set_valued();
    let opt = outer.is_optional() || inner.is_optional();
    match (set, opt) {
        (false, false) => Occurrence::One,
        (false, true) => Occurrence::Optional,
        (true, false) => Occurrence::OneOrMore,
        (true, true) => Occurrence::ZeroOrMore,
    }
}

/// A choice makes each member optional (the other branch may be taken).
fn combine_choice(occ: Occurrence) -> Occurrence {
    match occ {
        Occurrence::One | Occurrence::Optional => Occurrence::Optional,
        Occurrence::OneOrMore | Occurrence::ZeroOrMore => Occurrence::ZeroOrMore,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dtd;

    const UNIVERSITY: &str = r#"
<!ELEMENT University (StudyCourse,Student*)>
<!ELEMENT Student (LName,FName,Course*)>
<!ATTLIST Student StudNr CDATA #REQUIRED>
<!ELEMENT Course (Name,Professor*,CreditPts?)>
<!ELEMENT Professor (PName,Subject+,Dept)>
<!ELEMENT LName (#PCDATA)>
<!ELEMENT FName (#PCDATA)>
<!ELEMENT Name (#PCDATA)>
<!ELEMENT PName (#PCDATA)>
<!ELEMENT Subject (#PCDATA)>
<!ELEMENT Dept (#PCDATA)>
<!ELEMENT StudyCourse (#PCDATA)>
<!ELEMENT CreditPts (#PCDATA)>
"#;

    #[test]
    fn builds_the_university_tree() {
        let dtd = parse_dtd(UNIVERSITY).unwrap();
        let tree = DtdTree::build(&dtd, "University");
        assert_eq!(tree.root.name, "University");
        assert_eq!(tree.root.children.len(), 2);
        let student = &tree.root.children[1];
        assert_eq!(student.name, "Student");
        assert!(student.cardinality.set_valued && student.cardinality.optional);
        assert_eq!(student.attributes.len(), 1);
        let course = &student.children[2];
        assert_eq!(course.name, "Course");
        let professor = &course.children[1];
        let subject = &professor.children[1];
        assert_eq!(subject.name, "Subject");
        assert!(subject.cardinality.set_valued && !subject.cardinality.optional); // '+'
        let credit = &course.children[2];
        assert_eq!(credit.name, "CreditPts");
        assert!(!credit.cardinality.set_valued && credit.cardinality.optional); // '?'
        assert!(!tree.has_recursion());
    }

    #[test]
    fn group_operators_propagate_to_members() {
        let dtd = parse_dtd(
            "<!ELEMENT a ((b,c)*)><!ELEMENT b (#PCDATA)><!ELEMENT c (#PCDATA)>",
        )
        .unwrap();
        let tree = DtdTree::build(&dtd, "a");
        for child in &tree.root.children {
            assert!(child.cardinality.set_valued, "{}", child.name);
            assert!(child.cardinality.optional, "{}", child.name);
        }
    }

    #[test]
    fn choice_members_become_optional() {
        let dtd =
            parse_dtd("<!ELEMENT a (b|c)><!ELEMENT b (#PCDATA)><!ELEMENT c (#PCDATA)>").unwrap();
        let tree = DtdTree::build(&dtd, "a");
        assert!(tree.root.children.iter().all(|c| c.cardinality.optional));
        assert!(tree.root.children.iter().all(|c| !c.cardinality.set_valued));
    }

    #[test]
    fn multi_parent_elements_are_duplicated_like_fig3() {
        // Fig. 3: Address below both Professor and Student.
        let dtd = parse_dtd(
            r#"<!ELEMENT Faculty (Professor,Student)>
               <!ELEMENT Professor (PName,Address)>
               <!ELEMENT Address (Street,City)>
               <!ELEMENT Student (Address,SName)>
               <!ELEMENT PName (#PCDATA)>
               <!ELEMENT SName (#PCDATA)>
               <!ELEMENT Street (#PCDATA)>
               <!ELEMENT City (#PCDATA)>"#,
        )
        .unwrap();
        let tree = DtdTree::build(&dtd, "Faculty");
        assert_eq!(tree.occurrences_of("Address"), 2);
        assert_eq!(tree.occurrences_of("Street"), 2);
    }

    #[test]
    fn recursion_is_cut_with_a_marker() {
        // §6.2's Professor/Dept cycle.
        let dtd = parse_dtd(
            r#"<!ELEMENT Professor (PName,Dept)>
               <!ELEMENT Dept (DName,Professor*)>
               <!ELEMENT PName (#PCDATA)>
               <!ELEMENT DName (#PCDATA)>"#,
        )
        .unwrap();
        let tree = DtdTree::build(&dtd, "Professor");
        assert!(tree.has_recursion());
        let dept = &tree.root.children[1];
        let inner_prof = &dept.children[1];
        assert_eq!(inner_prof.name, "Professor");
        assert!(inner_prof.recursion_cut);
        assert!(inner_prof.children.is_empty());
    }

    #[test]
    fn undeclared_children_are_flagged() {
        let dtd = parse_dtd("<!ELEMENT a (ghost)>").unwrap();
        let tree = DtdTree::build(&dtd, "a");
        assert!(tree.root.children[0].undeclared);
    }

    #[test]
    fn mixed_content_children_are_starred() {
        let dtd = parse_dtd("<!ELEMENT p (#PCDATA|em)*><!ELEMENT em (#PCDATA)>").unwrap();
        let tree = DtdTree::build(&dtd, "p");
        let em = &tree.root.children[0];
        assert!(em.cardinality.set_valued && em.cardinality.optional);
    }

    #[test]
    fn outline_is_readable() {
        let dtd = parse_dtd(UNIVERSITY).unwrap();
        let tree = DtdTree::build(&dtd, "University");
        let outline = tree.root.outline();
        assert!(outline.contains("University\n"), "{outline}");
        assert!(outline.contains("  Student [*] @StudNr"), "{outline}");
        assert!(outline.contains("      Subject [+] #PCDATA"), "{outline}");
    }

    #[test]
    fn cardinality_display() {
        assert_eq!(NodeCardinality { set_valued: false, optional: false }.to_string(), "1");
        assert_eq!(NodeCardinality { set_valued: false, optional: true }.to_string(), "?");
        assert_eq!(NodeCardinality { set_valued: true, optional: false }.to_string(), "+");
        assert_eq!(NodeCardinality { set_valued: true, optional: true }.to_string(), "*");
    }
}

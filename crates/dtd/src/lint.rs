//! maplint level 1: DTD lints, reported per storage strategy.
//!
//! The six strategies the workspace benchmarks (§4/§6 object-relational
//! mapping for Oracle 9 and Oracle 8, the §6.3 relational schema, and the
//! edge / attribute-table / hybrid-inlining baselines of §1's related work)
//! do not handle every DTD construct equally well: some constructs make a
//! strategy *fail outright* (undeclared elements abort schema generation),
//! others it handles *lossily* (mixed content interleaving, attribute
//! defaults) or with *data-dependent capacity limits* (VARRAY bounds).
//!
//! [`lint_dtd`] turns each such construct into a span-carrying
//! [`Diagnostic`] against the DTD source text and buckets it per strategy,
//! so `or9/or8/rel/edge/attr/inline` each get their own verdict. The
//! severity model follows the workspace-wide differential guarantee:
//! **Error** only where the strategy's pipeline is guaranteed to fail
//! (schema generation rejects the DTD), **Warning** for lossy or
//! data-dependent constructs.

use std::collections::{BTreeMap, BTreeSet};

use xmlord_diag::{Diagnostic, Severity, Span};
use xmlord_xml::error::XmlError;

use crate::ast::{AttType, ContentParticle, ContentSpec, DefaultDecl, Dtd, EntityDecl};
use crate::graph::ElementGraph;
use crate::validator::{ValidationErrorKind, ValidationReport};

/// The six storage strategies maplint issues verdicts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MappingStrategy {
    /// §4 object-relational mapping, Oracle 9 rules (nested collections).
    Or9,
    /// §6.2 variant for Oracle 8 (nested collections broken into tables).
    Or8,
    /// §6.3 flat relational schema (+ object views).
    Relational,
    /// Edge-table shredding (Florescu & Kossmann).
    Edge,
    /// Attribute-table shredding (one table per element name).
    AttributeTables,
    /// Hybrid inlining (Shanmugasundaram et al.).
    Inline,
}

impl MappingStrategy {
    pub const ALL: [MappingStrategy; 6] = [
        MappingStrategy::Or9,
        MappingStrategy::Or8,
        MappingStrategy::Relational,
        MappingStrategy::Edge,
        MappingStrategy::AttributeTables,
        MappingStrategy::Inline,
    ];

    /// Short label used in reports: `or9`, `or8`, `rel`, `edge`, `attr`,
    /// `inline`.
    pub fn label(self) -> &'static str {
        match self {
            MappingStrategy::Or9 => "or9",
            MappingStrategy::Or8 => "or8",
            MappingStrategy::Relational => "rel",
            MappingStrategy::Edge => "edge",
            MappingStrategy::AttributeTables => "attr",
            MappingStrategy::Inline => "inline",
        }
    }

    /// Strategies whose schema comes out of `xml2ordb::generate_schema` —
    /// a hard failure there (undeclared root or child) is an **Error** for
    /// exactly these.
    pub fn uses_generated_schema(self) -> bool {
        matches!(
            self,
            MappingStrategy::Or9 | MappingStrategy::Or8 | MappingStrategy::Relational
        )
    }

    /// Strategies that store set-valued children in bounded VARRAYs.
    fn uses_varrays(self) -> bool {
        matches!(self, MappingStrategy::Or9 | MappingStrategy::Or8)
    }
}

/// Span side-table over the parameter-entity-expanded DTD text.
///
/// The DTD parser consumes the *expanded* text, so spans refer to it too;
/// [`DtdSource::text`] is exactly what the diagnostics render against.
/// When the DTD uses no parameter entities the expanded text equals the
/// input. Offsets are **character** indices (the shared diagnostic
/// vocabulary of `xmlord-diag`), converted from the byte-tracking XML
/// cursor at scan time.
#[derive(Debug, Clone, Default)]
pub struct DtdSource {
    text: String,
    elements: BTreeMap<String, Span>,
    attlists: BTreeMap<String, Span>,
    notations: Vec<(String, Span)>,
    entities: Vec<(String, Span)>,
}

impl DtdSource {
    /// Expand parameter entities and scan declaration-name spans.
    pub fn from_input(input: &str) -> Result<DtdSource, XmlError> {
        let text = crate::parser::expand_parameter_entities(input)?;
        Ok(scan(text))
    }

    /// The expanded DTD text the spans index into.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Span of the name token in `<!ELEMENT name …>`; `Span::at(0)` when
    /// the element was never declared (the usual anchor for "missing
    /// declaration" findings).
    pub fn element_span(&self, name: &str) -> Span {
        self.elements.get(name).copied().unwrap_or_else(|| Span::at(0))
    }

    /// Span of the name token in `<!ATTLIST name …>`, falling back to the
    /// element declaration.
    pub fn attlist_span(&self, element: &str) -> Span {
        self.attlists.get(element).copied().unwrap_or_else(|| self.element_span(element))
    }

    /// `<!NOTATION name …>` declarations (the parser drops them from the
    /// model entirely — this side table is the only record).
    pub fn notations(&self) -> &[(String, Span)] {
        &self.notations
    }

    /// `<!ENTITY name …>` declarations (general and parameter) with spans.
    pub fn entities(&self) -> &[(String, Span)] {
        &self.entities
    }
}

/// Parse a DTD and record declaration spans for diagnostics.
pub fn parse_dtd_spanned(input: &str) -> Result<(Dtd, DtdSource), XmlError> {
    let src = DtdSource::from_input(input)?;
    let dtd = crate::parser::parse_dtd(input)?;
    Ok((dtd, src))
}

/// Scan the expanded text for declaration-name spans. Mirrors the parser's
/// treatment of comments; quoted strings inside declarations are skipped
/// so a `>` in an attribute default cannot truncate the scan.
fn scan(text: String) -> DtdSource {
    let chars: Vec<char> = text.chars().collect();
    let mut src = DtdSource { text, ..DtdSource::default() };
    let at = |i: usize, pat: &str| -> bool {
        pat.chars().enumerate().all(|(k, c)| chars.get(i + k) == Some(&c))
    };
    let mut i = 0usize;
    while i < chars.len() {
        if at(i, "<!--") {
            i += 4;
            while i < chars.len() && !at(i, "-->") {
                i += 1;
            }
            i = (i + 3).min(chars.len());
            continue;
        }
        let keyword = ["<!ELEMENT", "<!ATTLIST", "<!NOTATION", "<!ENTITY"]
            .iter()
            .find(|k| at(i, k))
            .copied();
        let Some(keyword) = keyword else {
            i += 1;
            continue;
        };
        i += keyword.chars().count();
        while chars.get(i).is_some_and(|c| c.is_whitespace()) {
            i += 1;
        }
        // `<!ENTITY % name …>` — parameter entity: skip the marker.
        if keyword == "<!ENTITY" && chars.get(i) == Some(&'%') {
            i += 1;
            while chars.get(i).is_some_and(|c| c.is_whitespace()) {
                i += 1;
            }
        }
        let start = i;
        while chars.get(i).is_some_and(|c| !c.is_whitespace() && *c != '>' && *c != '(') {
            i += 1;
        }
        let name: String = chars[start..i].iter().collect();
        let span = Span::new(start, i);
        if !name.is_empty() {
            match keyword {
                "<!ELEMENT" => {
                    src.elements.entry(name).or_insert(span);
                }
                "<!ATTLIST" => {
                    src.attlists.entry(name).or_insert(span);
                }
                "<!NOTATION" => src.notations.push((name, span)),
                _ => src.entities.push((name, span)),
            }
        }
        // Skip the declaration body, honouring quotes.
        let mut quote: Option<char> = None;
        while let Some(&c) = chars.get(i) {
            i += 1;
            match quote {
                Some(q) if c == q => quote = None,
                Some(_) => {}
                None if c == '"' || c == '\'' => quote = Some(c),
                None if c == '>' => break,
                None => {}
            }
        }
    }
    src
}

/// One strategy's verdict: its diagnostics over the DTD.
#[derive(Debug, Clone)]
pub struct StrategyVerdict {
    pub strategy: MappingStrategy,
    pub diagnostics: Vec<Diagnostic>,
}

impl StrategyVerdict {
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }
}

/// Lint `dtd` (rooted at `root`) against all six strategies.
///
/// Lint catalog (IDs are stable; see DESIGN.md §5i):
///
/// | code | construct | severity |
/// |------|-----------|----------|
/// | `DTD001 root-not-declared` | root has no `<!ELEMENT>` | Error for or9/or8/rel, Warning for inline, none for edge/attr |
/// | `DTD002 undeclared-child` | reachable child never declared | Error for or9/or8/rel, Warning for inline/attr, none for edge |
/// | `DTD003 recursive-cycle` | back edge forces REF-breaking (§6.2) | Warning for or9/or8/rel/inline |
/// | `DTD004 mixed-content` | `(#PCDATA\|…)*` interleaving lost | Warning for all but edge |
/// | `DTD005 any-content` | `ANY` defeats static schemas | Warning for all but edge |
/// | `DTD006 unbounded-repetition` | `*`/`+` vs. `VARRAY(max)` capacity | Warning for or9/or8 |
/// | `DTD007 attribute-default` | defaults/#FIXED materialized only via validation | Warning for all |
/// | `DTD008 notation` | `<!NOTATION>`/NOTATION-typed attrs dropped | Warning for all |
/// | `DTD009 external-entity` | external entity content unavailable | Warning for all |
pub fn lint_dtd(dtd: &Dtd, src: &DtdSource, root: &str) -> Vec<StrategyVerdict> {
    let graph = ElementGraph::build(dtd);
    let reachable = reachable_from(&graph, root);
    let mut verdicts: Vec<StrategyVerdict> = MappingStrategy::ALL
        .iter()
        .map(|&strategy| StrategyVerdict { strategy, diagnostics: Vec::new() })
        .collect();

    let mut push = |strategy: MappingStrategy, severity: Severity, code: &'static str, message: String, span: Span| {
        let v = verdicts.iter_mut().find(|v| v.strategy == strategy).unwrap();
        v.diagnostics.push(Diagnostic { severity, code, message, span });
    };

    // DTD001: undeclared root aborts generate_schema (RootNotDeclared).
    if dtd.element(root).is_none() {
        for s in MappingStrategy::ALL {
            if s.uses_generated_schema() {
                push(s, Severity::Error, "DTD001", format!("root element <{root}> has no <!ELEMENT> declaration: schema generation fails with RootNotDeclared"), Span::at(0));
            } else if s == MappingStrategy::Inline {
                push(s, Severity::Warning, "DTD001", format!("root element <{root}> has no <!ELEMENT> declaration: the inlined schema has no columns for it"), Span::at(0));
            }
        }
    }

    // DTD002: a reachable child without a declaration aborts generate_schema
    // (UndeclaredElement); the inline baseline silently skips its subtree.
    for element in &reachable {
        if dtd.element(element).is_some() || element == root {
            continue;
        }
        // Anchor at the declaration of a parent that references it.
        let parent = graph.parents_of(element).first().cloned().unwrap_or_default();
        let span = src.element_span(&parent);
        for s in MappingStrategy::ALL {
            if s.uses_generated_schema() {
                push(s, Severity::Error, "DTD002", format!("element <{element}> is used as a child but never declared: schema generation fails with UndeclaredElement"), span);
            } else if s == MappingStrategy::Inline {
                push(s, Severity::Warning, "DTD002", format!("element <{element}> is used as a child but never declared: hybrid inlining silently drops its subtree"), span);
            } else if s == MappingStrategy::AttributeTables {
                // The element itself gets a table (it is referenced), but
                // its content model is unknown, so no tables are derived
                // below it — loading fails only if a document actually
                // nests children there, hence data-dependent: Warning.
                push(s, Severity::Warning, "DTD002", format!("element <{element}> is used as a child but never declared: no attribute tables exist below it, so documents nesting children under <{element}> fail to load"), span);
            }
        }
    }

    // DTD003: recursion cycles — §6.2 breaks each back edge with a REF.
    for (parent, child) in graph.back_edges_from(dtd.element(root).map(|_| root)) {
        if !reachable.contains(&parent) {
            continue;
        }
        let span = src.element_span(&parent);
        for s in MappingStrategy::ALL {
            let msg = match s {
                MappingStrategy::Or9 | MappingStrategy::Or8 => format!("recursive aggregation {parent} → {child} is broken with a REF collection (§6.2): the child rows live in the parent table and document order across the cycle relies on scoped REFs"),
                MappingStrategy::Relational => format!("recursive aggregation {parent} → {child} flattens into self-referencing rows in the relational schema"),
                MappingStrategy::Inline => format!("recursive element <{child}> gets its own relation with a ParentID foreign key; queries across the cycle need recursive joins"),
                _ => continue,
            };
            push(s, Severity::Warning, "DTD003", msg, span);
        }
    }

    for element in &reachable {
        let Some(decl) = dtd.element(element) else { continue };
        let span = src.element_span(element);

        // DTD004: mixed content — text/child interleaving is not preserved
        // by schema-directed storage (only the edge table keeps it).
        if decl.content.is_mixed_with_elements() {
            for s in MappingStrategy::ALL {
                if s == MappingStrategy::Edge {
                    continue;
                }
                push(s, Severity::Warning, "DTD004", format!("<{element}> has mixed content {}: text/child interleaving is not preserved by schema-directed storage", decl.content), span);
            }
        }

        // DTD005: ANY content defeats every static schema derivation.
        if decl.content == ContentSpec::Any {
            for s in MappingStrategy::ALL {
                if s == MappingStrategy::Edge {
                    continue;
                }
                push(s, Severity::Warning, "DTD005", format!("<{element}> declares ANY content: children are unknown statically, so the derived schema cannot reserve structure for them"), span);
            }
        }

        // DTD006: unbounded repetition vs. bounded VARRAY capacity.
        if let ContentSpec::Children(cp) = &decl.content {
            for child in unbounded_children(cp) {
                for s in MappingStrategy::ALL {
                    if !s.uses_varrays() {
                        continue;
                    }
                    push(s, Severity::Warning, "DTD006", format!("<{element}> repeats <{child}> without bound: the mapped VARRAY has a fixed capacity (varray_max) and overflows on large documents"), span);
                }
            }
        }

        // DTD007 / DTD008 (attribute side): defaults and NOTATION/ENTITY
        // attribute types.
        for att in dtd.attributes_of(element) {
            let aspan = src.attlist_span(element);
            match &att.default {
                DefaultDecl::Fixed(v) | DefaultDecl::Default(v) => {
                    for s in MappingStrategy::ALL {
                        push(s, Severity::Warning, "DTD007", format!("attribute '{}' on <{element}> has a default '{v}': the stored value depends on whether the loader validates; shredded baselines drop unspecified defaults", att.name), aspan);
                    }
                }
                _ => {}
            }
            if matches!(att.att_type, AttType::Notation(_) | AttType::Entity | AttType::Entities) {
                for s in MappingStrategy::ALL {
                    push(s, Severity::Warning, "DTD008", format!("attribute '{}' on <{element}> has type {}: notation/entity semantics are not representable in the mapped schema", att.name, att.att_type.keyword()), aspan);
                }
            }
        }
    }

    // DTD008 (declaration side): the parser drops <!NOTATION> entirely.
    for (name, span) in src.notations() {
        for s in MappingStrategy::ALL {
            push(s, Severity::Warning, "DTD008", format!("<!NOTATION {name}> is not retained in the DTD model: round-tripped documents lose the notation"), *span);
        }
    }

    // DTD009: external entities — content unavailable to any strategy.
    for entity in &dtd.entities {
        if let EntityDecl::ExternalGeneral { name, system, .. } = entity {
            let span = src
                .entities()
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| *s)
                .unwrap_or_else(|| Span::at(0));
            for s in MappingStrategy::ALL {
                push(s, Severity::Warning, "DTD009", format!("external entity '{name}' (SYSTEM \"{system}\") cannot be resolved: references to it survive only as entity markers"), span);
            }
        }
    }

    verdicts
}

fn reachable_from(graph: &ElementGraph, root: &str) -> BTreeSet<String> {
    let mut reachable = BTreeSet::new();
    let mut stack = vec![root.to_string()];
    while let Some(cur) = stack.pop() {
        if reachable.insert(cur.clone()) {
            for child in graph.children_of(&cur) {
                stack.push(child.clone());
            }
        }
    }
    reachable
}

/// Child names occurring under a `*` or `+` operator (directly or via an
/// enclosing group), deduplicated.
fn unbounded_children(cp: &ContentParticle) -> Vec<String> {
    fn walk(cp: &ContentParticle, outer_unbounded: bool, out: &mut Vec<String>) {
        let unbounded = outer_unbounded || cp.occurrence().is_set_valued();
        match cp {
            ContentParticle::Name(name, _) => {
                if unbounded && !out.iter().any(|n| n == name) {
                    out.push(name.clone());
                }
            }
            ContentParticle::Seq(children, _) | ContentParticle::Choice(children, _) => {
                for child in children {
                    walk(child, unbounded, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(cp, false, &mut out);
    out
}

impl ValidationReport {
    /// Convert validation errors into the shared diagnostic vocabulary,
    /// anchored at the DTD declaration the document violates (the report
    /// itself tracks document paths, not source offsets). All findings are
    /// Errors: an invalid document is rejected by the loading pipeline.
    pub fn to_diagnostics(&self, src: &DtdSource) -> Vec<Diagnostic> {
        self.errors
            .iter()
            .map(|e| {
                let (code, span): (&'static str, Span) = match &e.kind {
                    ValidationErrorKind::RootMismatch { declared, .. } => {
                        ("VAL001", src.element_span(declared))
                    }
                    ValidationErrorKind::UndeclaredElement(_) => ("VAL002", Span::at(0)),
                    ValidationErrorKind::ContentModelViolation { element, .. } => {
                        ("VAL003", src.element_span(element))
                    }
                    ValidationErrorKind::TextNotAllowed { element } => {
                        ("VAL004", src.element_span(element))
                    }
                    ValidationErrorKind::UndeclaredAttribute { element, .. } => {
                        ("VAL005", src.attlist_span(element))
                    }
                    ValidationErrorKind::RequiredAttributeMissing { element, .. } => {
                        ("VAL006", src.attlist_span(element))
                    }
                    ValidationErrorKind::FixedAttributeMismatch { element, .. } => {
                        ("VAL007", src.attlist_span(element))
                    }
                    ValidationErrorKind::InvalidAttributeValue { element, .. } => {
                        ("VAL008", src.attlist_span(element))
                    }
                    ValidationErrorKind::DuplicateId(_) => ("VAL009", Span::at(0)),
                    ValidationErrorKind::UnresolvedIdref(_) => ("VAL010", Span::at(0)),
                };
                Diagnostic { severity: Severity::Error, code, message: e.to_string(), span }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::validate;

    const UNIVERSITY: &str = r#"<!ELEMENT University (StudyCourse,Student*)>
<!ELEMENT Student (LName)>
<!ATTLIST Student StudNr CDATA #REQUIRED>
<!ELEMENT LName (#PCDATA)>
<!ELEMENT StudyCourse (#PCDATA)>
"#;

    fn verdict_for(verdicts: &[StrategyVerdict], s: MappingStrategy) -> &StrategyVerdict {
        verdicts.iter().find(|v| v.strategy == s).unwrap()
    }

    #[test]
    fn clean_dtd_has_no_errors_anywhere() {
        let (dtd, src) = parse_dtd_spanned(UNIVERSITY).unwrap();
        for v in lint_dtd(&dtd, &src, "University") {
            assert_eq!(v.error_count(), 0, "{}: {:?}", v.strategy.label(), v.diagnostics);
        }
    }

    #[test]
    fn unbounded_star_warns_only_varray_strategies() {
        let (dtd, src) = parse_dtd_spanned(UNIVERSITY).unwrap();
        let verdicts = lint_dtd(&dtd, &src, "University");
        for s in MappingStrategy::ALL {
            let has = verdict_for(&verdicts, s)
                .diagnostics
                .iter()
                .any(|d| d.code == "DTD006");
            assert_eq!(has, matches!(s, MappingStrategy::Or9 | MappingStrategy::Or8), "{}", s.label());
        }
    }

    #[test]
    fn undeclared_child_is_error_exactly_for_generated_schemas() {
        let text = "<!ELEMENT A (B,C)>\n<!ELEMENT B (#PCDATA)>\n";
        let (dtd, src) = parse_dtd_spanned(text).unwrap();
        let verdicts = lint_dtd(&dtd, &src, "A");
        for s in MappingStrategy::ALL {
            let v = verdict_for(&verdicts, s);
            let errors: Vec<_> =
                v.diagnostics.iter().filter(|d| d.code == "DTD002" && d.severity == Severity::Error).collect();
            assert_eq!(!errors.is_empty(), s.uses_generated_schema(), "{}", s.label());
        }
        // The Error anchors at the parent declaration that references <C>.
        let or9 = verdict_for(&verdicts, MappingStrategy::Or9);
        let err = or9.diagnostics.iter().find(|d| d.code == "DTD002").unwrap();
        let (line, col) = err.span.line_col(src.text());
        assert_eq!((line, col), (1, 11)); // the name token of <!ELEMENT A …>
    }

    #[test]
    fn recursion_mixed_any_notation_default_all_warn() {
        let text = r#"<!ELEMENT Professor (PName,Dept)>
<!ELEMENT Dept (DName,Professor*)>
<!ELEMENT PName (#PCDATA|Em)*>
<!ELEMENT Em ANY>
<!ELEMENT DName (#PCDATA)>
<!ATTLIST Dept Kind CDATA "research">
<!NOTATION gif SYSTEM "image/gif">
<!ENTITY logo SYSTEM "logo.gif">
"#;
        let (dtd, src) = parse_dtd_spanned(text).unwrap();
        let verdicts = lint_dtd(&dtd, &src, "Professor");
        let or9 = verdict_for(&verdicts, MappingStrategy::Or9);
        assert_eq!(or9.error_count(), 0, "{:?}", or9.diagnostics);
        for code in ["DTD003", "DTD004", "DTD005", "DTD007", "DTD008", "DTD009"] {
            assert!(or9.diagnostics.iter().any(|d| d.code == code), "missing {code}");
        }
        // The edge table preserves everything structural: only the
        // attribute-default, notation and entity caveats remain.
        let edge = verdict_for(&verdicts, MappingStrategy::Edge);
        assert!(edge.diagnostics.iter().all(|d| {
            matches!(d.code, "DTD007" | "DTD008" | "DTD009")
        }), "{:?}", edge.diagnostics);
    }

    #[test]
    fn spans_index_the_expanded_text() {
        let text = "<!ENTITY % names \"LName\">\n<!ELEMENT Student (%names;)>\n<!ELEMENT LName (#PCDATA)>\n";
        let (_, src) = parse_dtd_spanned(text).unwrap();
        let span = src.element_span("Student");
        let named: String = src.text().chars().skip(span.start).take(span.len()).collect();
        assert_eq!(named, "Student");
    }

    #[test]
    fn validation_report_converts_to_uniform_diagnostics() {
        let (dtd, src) = parse_dtd_spanned(UNIVERSITY).unwrap();
        let doc = xmlord_xml::parse("<University><Student><LName>X</LName></Student></University>")
            .unwrap();
        let report = validate(&doc, &dtd);
        assert!(!report.is_valid());
        let diags = report.to_diagnostics(&src);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
        // Rendering works against the DTD source.
        let rendered = diags[0].render(src.text(), "university.dtd");
        assert!(rendered.contains("-->"), "{rendered}");
    }

    #[test]
    fn scanner_ignores_commented_out_declarations() {
        let text = "<!-- <!ELEMENT Ghost (#PCDATA)> -->\n<!ELEMENT Real (#PCDATA)>\n";
        let (_, src) = parse_dtd_spanned(text).unwrap();
        assert_eq!(src.element_span("Ghost"), Span::at(0));
        assert!(src.element_span("Real").start > 0);
    }
}

//! XML Schema (XSD) support — the paper's first future-work item.
//!
//! §7: "one of the next tasks is to start with the analysis of documents
//! with XML Schema, which provides more advanced concepts (such as element
//! types)". This module implements a practical XSD subset and converts it
//! into the same structural model the DTD parser produces ([`Dtd`]), plus
//! the piece DTDs cannot express: **scalar type hints** per element and
//! attribute, so the mapping layer can generate `NUMBER`, `DATE` or
//! length-bounded `VARCHAR` columns instead of the §4.1 blanket
//! `VARCHAR(4000)`.
//!
//! Supported subset (enough for data-centric schemas of the paper's kind):
//!
//! * global `xs:element`, with `type="xs:…"`, `type="NamedType"` or inline
//!   `xs:complexType`/`xs:simpleType`;
//! * `xs:complexType` (named or inline) with `xs:sequence`/`xs:choice`
//!   (nestable), `mixed="true"`, and `xs:attribute` children;
//! * local elements with `name`+`type`, inline types, or `ref="…"`;
//! * `minOccurs`/`maxOccurs` → the DTD occurrence operators;
//! * `xs:simpleType` restrictions with a `maxLength` facet;
//! * `xs:attribute` with `use="required|optional"` and `default`/`fixed`;
//! * the common built-ins: string family → `VARCHAR`, numeric family →
//!   `NUMBER`, date family → `DATE`, plus `xs:ID`/`xs:IDREF` (mapped to the
//!   DTD ID/IDREF attribute types so §4.4's REF machinery applies).
//!
//! Like the paper's own prototype (which handled one DTD at a time),
//! elements are identified by name: two local elements with the same name
//! must agree structurally — conflicting redefinitions are reported.

use std::collections::BTreeMap;
use std::fmt;

use xmlord_xml::{Document, NodeId};

use crate::ast::{
    AttDef, AttType, AttlistDecl, ContentParticle, ContentSpec, DefaultDecl, Dtd, ElementDecl,
    Occurrence,
};

/// Scalar column type suggested by the schema (consumed by the mapping
/// layer's `TypeHints`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScalarHint {
    Varchar(u32),
    Clob,
    Number,
    Date,
}

/// Result of analyzing an XSD: the structural model plus the type hints a
/// DTD could never provide.
#[derive(Debug, Clone)]
pub struct XsdSchema {
    pub dtd: Dtd,
    /// element name → scalar type of its text content.
    pub element_hints: BTreeMap<String, ScalarHint>,
    /// (element name, attribute name) → scalar type.
    pub attribute_hints: BTreeMap<(String, String), ScalarHint>,
    /// Globally declared elements (document-root candidates), in order.
    pub root_candidates: Vec<String>,
}

/// Analysis failure.
#[derive(Debug, Clone, PartialEq)]
pub enum XsdError {
    Xml(xmlord_xml::XmlError),
    NotASchema,
    Unsupported(String),
    ConflictingElement(String),
    UnknownType(String),
}

impl fmt::Display for XsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XsdError::Xml(e) => write!(f, "XSD is not well-formed XML: {e}"),
            XsdError::NotASchema => write!(f, "document root is not an xs:schema element"),
            XsdError::Unsupported(what) => write!(f, "unsupported XSD construct: {what}"),
            XsdError::ConflictingElement(name) =>

                write!(f, "element '{name}' is defined twice with different content"),
            XsdError::UnknownType(name) => write!(f, "reference to unknown type '{name}'"),
        }
    }
}

impl std::error::Error for XsdError {}

/// Parse and analyze an XSD document.
pub fn parse_xsd(text: &str) -> Result<XsdSchema, XsdError> {
    let doc = xmlord_xml::parse(text).map_err(XsdError::Xml)?;
    let root = doc.root_element().ok_or(XsdError::NotASchema)?;
    if doc.name(root).local != "schema" {
        return Err(XsdError::NotASchema);
    }
    let mut analyzer = Analyzer {
        doc: &doc,
        named_complex: BTreeMap::new(),
        named_simple: BTreeMap::new(),
        global_elements: BTreeMap::new(),
        out: XsdSchema {
            dtd: Dtd::default(),
            element_hints: BTreeMap::new(),
            attribute_hints: BTreeMap::new(),
            root_candidates: Vec::new(),
        },
    };
    analyzer.collect_globals(root);
    for (name, node) in analyzer.global_elements.clone() {
        analyzer.element_decl(&name, node)?;
        analyzer.out.root_candidates.push(name);
    }
    Ok(analyzer.out)
}

struct Analyzer<'a> {
    doc: &'a Document,
    /// name → xs:complexType node.
    named_complex: BTreeMap<String, NodeId>,
    /// name → resolved scalar hint of a named simple type.
    named_simple: BTreeMap<String, ScalarHint>,
    /// name → global xs:element node.
    global_elements: BTreeMap<String, NodeId>,
    out: XsdSchema,
}

impl<'a> Analyzer<'a> {
    fn local(&self, node: NodeId) -> String {
        self.doc.name(node).local.clone()
    }

    fn collect_globals(&mut self, schema: NodeId) {
        for child in self.doc.child_elements(schema) {
            match self.local(child).as_str() {
                "element" => {
                    if let Some(name) = self.doc.attribute(child, "name") {
                        self.global_elements.insert(name.to_string(), child);
                    }
                }
                "complexType" => {
                    if let Some(name) = self.doc.attribute(child, "name") {
                        self.named_complex.insert(name.to_string(), child);
                    }
                }
                "simpleType" => {
                    if let Some(name) = self.doc.attribute(child, "name") {
                        let hint = self.simple_type_hint(child);
                        self.named_simple.insert(name.to_string(), hint);
                    }
                }
                _ => {} // annotations, imports: ignored
            }
        }
    }

    /// Resolve a `type="…"` attribute value to a scalar hint, if it denotes
    /// a simple type. Strips any namespace prefix.
    fn scalar_hint_for(&self, type_name: &str) -> Option<ScalarHint> {
        let local = type_name.rsplit(':').next().unwrap_or(type_name);
        if let Some(hint) = builtin_hint(local) {
            return Some(hint);
        }
        self.named_simple.get(local).cloned()
    }

    /// Is `type_name` an attribute-level ID/IDREF builtin?
    fn id_att_type(type_name: &str) -> Option<AttType> {
        match type_name.rsplit(':').next().unwrap_or(type_name) {
            "ID" => Some(AttType::Id),
            "IDREF" => Some(AttType::Idref),
            "IDREFS" => Some(AttType::Idrefs),
            _ => None,
        }
    }

    /// Hint from an inline `xs:simpleType` (restriction base + maxLength).
    fn simple_type_hint(&self, simple_type: NodeId) -> ScalarHint {
        let Some(restriction) = self.doc.first_child_named(simple_type, "restriction") else {
            return ScalarHint::Varchar(4000);
        };
        let base = self
            .doc
            .attribute(restriction, "base")
            .map(|b| b.rsplit(':').next().unwrap_or(b).to_string())
            .unwrap_or_else(|| "string".to_string());
        let base_hint = builtin_hint(&base).unwrap_or(ScalarHint::Varchar(4000));
        if let ScalarHint::Varchar(_) = base_hint {
            for facet in self.doc.child_elements_named(restriction, "maxLength") {
                if let Some(value) =
                    self.doc.attribute(facet, "value").and_then(|v| v.parse::<u32>().ok())
                {
                    return ScalarHint::Varchar(value);
                }
            }
        }
        base_hint
    }

    /// Process one element declaration (global or local) into the DTD model.
    fn element_decl(&mut self, name: &str, node: NodeId) -> Result<(), XsdError> {
        // type= attribute?
        if let Some(type_name) = self.doc.attribute(node, "type").map(str::to_string) {
            if let Some(hint) = self.scalar_hint_for(&type_name) {
                self.declare_simple_element(name, hint)?;
                return Ok(());
            }
            let local = type_name.rsplit(':').next().unwrap_or(&type_name).to_string();
            if let Some(ct) = self.named_complex.get(&local).copied() {
                return self.complex_element(name, ct);
            }
            return Err(XsdError::UnknownType(type_name));
        }
        // Inline complexType?
        if let Some(ct) = self.doc.first_child_named(node, "complexType") {
            return self.complex_element(name, ct);
        }
        // Inline simpleType?
        if let Some(st) = self.doc.first_child_named(node, "simpleType") {
            let hint = self.simple_type_hint(st);
            return self.declare_simple_element(name, hint);
        }
        // No type at all: xs:anyType — treat as string.
        self.declare_simple_element(name, ScalarHint::Varchar(4000))
    }

    fn declare_simple_element(&mut self, name: &str, hint: ScalarHint) -> Result<(), XsdError> {
        self.record_element(name, ContentSpec::PcData)?;
        self.out.element_hints.insert(name.to_string(), hint);
        Ok(())
    }

    fn record_element(&mut self, name: &str, content: ContentSpec) -> Result<(), XsdError> {
        if let Some(existing) = self.out.dtd.elements.get(name) {
            if existing.content != content {
                return Err(XsdError::ConflictingElement(name.to_string()));
            }
            return Ok(());
        }
        self.out.dtd.element_order.push(name.to_string());
        self.out
            .dtd
            .elements
            .insert(name.to_string(), ElementDecl { name: name.to_string(), content });
        Ok(())
    }

    fn complex_element(&mut self, name: &str, complex_type: NodeId) -> Result<(), XsdError> {
        let mixed = self.doc.attribute(complex_type, "mixed") == Some("true");
        // Attributes.
        let mut attdefs = Vec::new();
        for attr_node in self.doc.child_elements_named(complex_type, "attribute") {
            let Some(attr_name) = self.doc.attribute(attr_node, "name").map(str::to_string)
            else {
                continue;
            };
            let type_name = self.doc.attribute(attr_node, "type").map(str::to_string);
            let att_type = type_name
                .as_deref()
                .and_then(Self::id_att_type)
                .unwrap_or(AttType::Cdata);
            if let Some(hint) =
                type_name.as_deref().and_then(|t| self.scalar_hint_for(t))
            {
                self.out
                    .attribute_hints
                    .insert((name.to_string(), attr_name.clone()), hint);
            }
            let default = if self.doc.attribute(attr_node, "use") == Some("required") {
                DefaultDecl::Required
            } else if let Some(fixed) = self.doc.attribute(attr_node, "fixed") {
                DefaultDecl::Fixed(fixed.to_string())
            } else if let Some(default) = self.doc.attribute(attr_node, "default") {
                DefaultDecl::Default(default.to_string())
            } else {
                DefaultDecl::Implied
            };
            attdefs.push(AttDef { name: attr_name, att_type, default });
        }
        if !attdefs.is_empty() {
            let entry = self
                .out
                .dtd
                .attlists
                .entry(name.to_string())
                .or_insert_with(|| AttlistDecl { element: name.to_string(), attributes: vec![] });
            for def in attdefs {
                if !entry.attributes.iter().any(|a| a.name == def.name) {
                    entry.attributes.push(def);
                }
            }
        }
        // Content model.
        let group = self
            .doc
            .first_child_named(complex_type, "sequence")
            .map(|n| (n, true))
            .or_else(|| self.doc.first_child_named(complex_type, "choice").map(|n| (n, false)))
            .or_else(|| self.doc.first_child_named(complex_type, "all").map(|n| (n, true)));
        let content = match group {
            None => {
                if mixed {
                    ContentSpec::PcData
                } else {
                    ContentSpec::Empty
                }
            }
            Some((group_node, is_seq)) => {
                let particle = self.group_particle(group_node, is_seq)?;
                if mixed {
                    let names: Vec<String> =
                        particle.names().into_iter().map(str::to_string).collect();
                    let mut dedup = Vec::new();
                    for n in names {
                        if !dedup.contains(&n) {
                            dedup.push(n);
                        }
                    }
                    ContentSpec::Mixed(dedup)
                } else {
                    ContentSpec::Children(particle)
                }
            }
        };
        self.record_element(name, content)
    }

    /// Build a content particle from an xs:sequence / xs:choice node.
    fn group_particle(&mut self, group: NodeId, is_seq: bool) -> Result<ContentParticle, XsdError> {
        let occurrence = occurrence_of(self.doc, group);
        let mut members = Vec::new();
        for child in self.doc.child_elements(group) {
            match self.local(child).as_str() {
                "element" => {
                    let (child_name, occ) = self.local_element(child)?;
                    members.push(ContentParticle::Name(child_name, occ));
                }
                "sequence" => members.push(self.group_particle(child, true)?),
                "choice" => members.push(self.group_particle(child, false)?),
                "annotation" => {}
                other => {
                    return Err(XsdError::Unsupported(format!(
                        "xs:{other} inside a content group"
                    )))
                }
            }
        }
        if members.is_empty() {
            return Err(XsdError::Unsupported("empty content group".into()));
        }
        Ok(if is_seq {
            ContentParticle::Seq(members, occurrence)
        } else {
            ContentParticle::Choice(members, occurrence)
        })
    }

    /// Process a local element (inside a group); returns (name, occurrence).
    fn local_element(&mut self, node: NodeId) -> Result<(String, Occurrence), XsdError> {
        let occurrence = occurrence_of(self.doc, node);
        if let Some(reference) = self.doc.attribute(node, "ref").map(str::to_string) {
            let local = reference.rsplit(':').next().unwrap_or(&reference).to_string();
            let Some(global) = self.global_elements.get(&local).copied() else {
                return Err(XsdError::UnknownType(reference));
            };
            self.element_decl(&local, global)?;
            return Ok((local, occurrence));
        }
        let Some(name) = self.doc.attribute(node, "name").map(str::to_string) else {
            return Err(XsdError::Unsupported("element without name or ref".into()));
        };
        self.element_decl(&name, node)?;
        Ok((name, occurrence))
    }
}

/// Map minOccurs/maxOccurs to a DTD occurrence operator.
fn occurrence_of(doc: &Document, node: NodeId) -> Occurrence {
    let min: u32 = doc
        .attribute(node, "minOccurs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let unbounded = doc.attribute(node, "maxOccurs") == Some("unbounded");
    let max: u32 = if unbounded {
        u32::MAX
    } else {
        doc.attribute(node, "maxOccurs").and_then(|v| v.parse().ok()).unwrap_or(1)
    };
    match (min, max) {
        (0, 0..=1) => Occurrence::Optional,
        (0, _) => Occurrence::ZeroOrMore,
        (_, 0..=1) => Occurrence::One,
        (_, _) => Occurrence::OneOrMore,
    }
}

/// Built-in XSD simple types → scalar hints.
fn builtin_hint(local: &str) -> Option<ScalarHint> {
    match local {
        "string" | "normalizedString" | "token" | "anyURI" | "language" | "NMTOKEN" | "Name"
        | "NCName" => Some(ScalarHint::Varchar(4000)),
        "boolean" => Some(ScalarHint::Varchar(5)),
        "integer" | "int" | "long" | "short" | "byte" | "decimal" | "double" | "float"
        | "positiveInteger" | "negativeInteger" | "nonNegativeInteger" | "nonPositiveInteger"
        | "unsignedInt" | "unsignedLong" | "unsignedShort" | "unsignedByte" => {
            Some(ScalarHint::Number)
        }
        "date" | "dateTime" | "time" | "gYear" | "gYearMonth" | "gMonthDay" => {
            Some(ScalarHint::Date)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INVOICE_XSD: &str = r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Invoice">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="Customer" type="xs:string"/>
        <xs:element name="Issued" type="xs:date"/>
        <xs:element name="Line" minOccurs="1" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Item" type="SkuType"/>
              <xs:element name="Quantity" type="xs:positiveInteger"/>
              <xs:element name="Price" type="xs:decimal"/>
              <xs:element name="Note" type="xs:string" minOccurs="0"/>
            </xs:sequence>
            <xs:attribute name="Pos" type="xs:integer" use="required"/>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
      <xs:attribute name="Number" type="xs:string" use="required"/>
      <xs:attribute name="Currency" type="xs:string" default="EUR"/>
    </xs:complexType>
  </xs:element>
  <xs:simpleType name="SkuType">
    <xs:restriction base="xs:string">
      <xs:maxLength value="12"/>
    </xs:restriction>
  </xs:simpleType>
</xs:schema>"#;

    #[test]
    fn invoice_schema_analyzes() {
        let xsd = parse_xsd(INVOICE_XSD).unwrap();
        assert_eq!(xsd.root_candidates, vec!["Invoice"]);
        // Structure mapped to the DTD model.
        let invoice = xsd.dtd.element("Invoice").unwrap();
        assert_eq!(invoice.content.to_string(), "(Customer,Issued,Line+)");
        let line = xsd.dtd.element("Line").unwrap();
        assert_eq!(line.content.to_string(), "(Item,Quantity,Price,Note?)");
        // Attributes with required/default declarations.
        let attrs = xsd.dtd.attributes_of("Invoice");
        assert_eq!(attrs.len(), 2);
        assert!(attrs[0].default.is_required());
        assert_eq!(attrs[1].default, DefaultDecl::Default("EUR".into()));
        // Type hints a DTD could never express.
        assert_eq!(xsd.element_hints.get("Quantity"), Some(&ScalarHint::Number));
        assert_eq!(xsd.element_hints.get("Price"), Some(&ScalarHint::Number));
        assert_eq!(xsd.element_hints.get("Issued"), Some(&ScalarHint::Date));
        assert_eq!(xsd.element_hints.get("Item"), Some(&ScalarHint::Varchar(12)));
        assert_eq!(
            xsd.attribute_hints.get(&("Line".to_string(), "Pos".to_string())),
            Some(&ScalarHint::Number)
        );
    }

    #[test]
    fn named_complex_types_resolve() {
        let xsd = parse_xsd(
            r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="Org" type="OrgType"/>
              <xs:complexType name="OrgType">
                <xs:sequence>
                  <xs:element name="Unit" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
                </xs:sequence>
              </xs:complexType>
            </xs:schema>"#,
        )
        .unwrap();
        assert_eq!(xsd.dtd.element("Org").unwrap().content.to_string(), "(Unit*)");
    }

    #[test]
    fn element_refs_resolve() {
        let xsd = parse_xsd(
            r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="List">
                <xs:complexType><xs:sequence>
                  <xs:element ref="Entry" maxOccurs="unbounded"/>
                </xs:sequence></xs:complexType>
              </xs:element>
              <xs:element name="Entry" type="xs:string"/>
            </xs:schema>"#,
        )
        .unwrap();
        assert_eq!(xsd.dtd.element("List").unwrap().content.to_string(), "(Entry+)");
        assert!(xsd.root_candidates.contains(&"List".to_string()));
    }

    #[test]
    fn choice_and_nested_groups() {
        let xsd = parse_xsd(
            r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="Doc">
                <xs:complexType><xs:sequence>
                  <xs:choice minOccurs="0" maxOccurs="unbounded">
                    <xs:element name="Para" type="xs:string"/>
                    <xs:element name="Table" type="xs:string"/>
                  </xs:choice>
                  <xs:element name="Footer" type="xs:string"/>
                </xs:sequence></xs:complexType>
              </xs:element>
            </xs:schema>"#,
        )
        .unwrap();
        assert_eq!(
            xsd.dtd.element("Doc").unwrap().content.to_string(),
            "((Para|Table)*,Footer)"
        );
    }

    #[test]
    fn mixed_content_maps_to_mixed() {
        let xsd = parse_xsd(
            r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="p">
                <xs:complexType mixed="true"><xs:sequence>
                  <xs:element name="em" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
                </xs:sequence></xs:complexType>
              </xs:element>
            </xs:schema>"#,
        )
        .unwrap();
        assert_eq!(
            xsd.dtd.element("p").unwrap().content,
            ContentSpec::Mixed(vec!["em".to_string()])
        );
    }

    #[test]
    fn id_and_idref_attributes_map_to_dtd_att_types() {
        let xsd = parse_xsd(
            r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="person">
                <xs:complexType>
                  <xs:sequence><xs:element name="name" type="xs:string"/></xs:sequence>
                  <xs:attribute name="id" type="xs:ID" use="required"/>
                  <xs:attribute name="boss" type="xs:IDREF"/>
                </xs:complexType>
              </xs:element>
            </xs:schema>"#,
        )
        .unwrap();
        let attrs = xsd.dtd.attributes_of("person");
        assert_eq!(attrs[0].att_type, AttType::Id);
        assert_eq!(attrs[1].att_type, AttType::Idref);
    }

    #[test]
    fn conflicting_redefinitions_are_reported() {
        let err = parse_xsd(
            r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="a">
                <xs:complexType><xs:sequence>
                  <xs:element name="x" type="xs:string"/>
                  <xs:element name="x2">
                    <xs:complexType><xs:sequence>
                      <xs:element name="x" type="xs:integer" minOccurs="0"/>
                    </xs:sequence></xs:complexType>
                  </xs:element>
                </xs:sequence></xs:complexType>
              </xs:element>
            </xs:schema>"#,
        );
        // "x" is once (#PCDATA) string and once (#PCDATA) integer — the
        // *content* agrees (both PcData) so this is accepted; real conflicts
        // need different structure:
        assert!(err.is_ok());
        let err2 = parse_xsd(
            r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="a">
                <xs:complexType><xs:sequence>
                  <xs:element name="x" type="xs:string"/>
                  <xs:element name="wrap">
                    <xs:complexType><xs:sequence>
                      <xs:element name="x">
                        <xs:complexType><xs:sequence>
                          <xs:element name="deep" type="xs:string"/>
                        </xs:sequence></xs:complexType>
                      </xs:element>
                    </xs:sequence></xs:complexType>
                  </xs:element>
                </xs:sequence></xs:complexType>
              </xs:element>
            </xs:schema>"#,
        );
        assert!(matches!(err2, Err(XsdError::ConflictingElement(ref n)) if n == "x"));
    }

    #[test]
    fn non_schema_root_rejected() {
        assert!(matches!(parse_xsd("<not-a-schema/>"), Err(XsdError::NotASchema)));
        assert!(matches!(parse_xsd("<<<"), Err(XsdError::Xml(_))));
    }

    #[test]
    fn empty_complex_type_is_empty_element() {
        let xsd = parse_xsd(
            r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="marker">
                <xs:complexType>
                  <xs:attribute name="at" type="xs:string"/>
                </xs:complexType>
              </xs:element>
            </xs:schema>"#,
        )
        .unwrap();
        assert_eq!(xsd.dtd.element("marker").unwrap().content, ContentSpec::Empty);
    }
}

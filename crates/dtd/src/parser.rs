//! DTD text parser (the non-validating "DTD parser" box of Fig. 1).
//!
//! Accepts the markup-declaration syntax of XML 1.0 §3: element type
//! declarations, attribute-list declarations, entity declarations and
//! notation declarations, plus comments, processing instructions and — for
//! internal parameter entities — `%name;` references, which are expanded
//! textually before declaration parsing (sufficient for internal subsets
//! and standalone DTD files; external parameter entities are out of scope,
//! as they were for the paper's prototype).

use std::collections::BTreeMap;

use xmlord_xml::cursor::Cursor;
use xmlord_xml::error::{XmlError, XmlErrorKind};
use xmlord_xml::name::{is_name_char, is_name_start_char};

use crate::ast::{
    AttDef, AttType, AttlistDecl, ContentParticle, ContentSpec, DefaultDecl, Dtd, ElementDecl,
    EntityDecl, Occurrence,
};

/// Parse DTD text (a standalone `.dtd` file or a DOCTYPE internal subset).
pub fn parse_dtd(input: &str) -> Result<Dtd, XmlError> {
    // Pass 1: collect parameter entities (they may be referenced by later
    // declarations) and expand them textually.
    let expanded = expand_parameter_entities(input)?;
    let mut parser = DtdParser { cur: Cursor::new(&expanded), dtd: Dtd::default() };
    parser.run()?;
    Ok(parser.dtd)
}

/// Textually expand `%name;` references using internal parameter entities
/// declared earlier in the same input. Declarations are processed in order,
/// so a parameter entity can use previously declared ones.
pub(crate) fn expand_parameter_entities(input: &str) -> Result<String, XmlError> {
    let mut params: BTreeMap<String, String> = BTreeMap::new();
    let mut out = String::with_capacity(input.len());
    let mut cur = Cursor::new(input);
    while let Some(ch) = cur.peek() {
        // Collect parameter entity declarations as we meet them.
        if cur.starts_with("<!ENTITY") {
            let decl_start = cur.position().offset;
            cur.eat("<!ENTITY");
            cur.skip_ws();
            if cur.eat("%") {
                cur.skip_ws();
                let name = cur.take_while(is_name_char).to_string();
                cur.skip_ws();
                match cur.peek() {
                    Some(q @ ('"' | '\'')) => {
                        cur.bump();
                        let raw = cur.take_until(&q.to_string())?.to_string();
                        cur.eat(&q.to_string());
                        cur.skip_ws();
                        cur.expect(">", "'>' closing parameter entity")?;
                        // Expand nested parameter references in the replacement.
                        let replacement = substitute_params(&raw, &params, cur.position())?;
                        params.entry(name.clone()).or_insert(replacement.clone());
                        // Keep the declaration in the output so the model
                        // records it too.
                        out.push_str(&format!("<!ENTITY % {name} \"{}\">", replacement.replace('"', "&#34;")));
                        continue;
                    }
                    _ => {
                        // External parameter entity: skip whole declaration.
                        let _ = cur.take_until(">")?;
                        cur.eat(">");
                        continue;
                    }
                }
            }
            // Not a parameter entity — copy the original declaration text
            // verbatim (with parameter substitution applied inside).
            let _ = cur.take_until(">")?;
            cur.eat(">");
            let decl_text = &input[decl_start..cur.position().offset];
            out.push_str(&substitute_params(decl_text, &params, cur.position())?);
            continue;
        }
        if ch == '%' {
            cur.bump();
            let name = cur.take_while(is_name_char).to_string();
            if cur.eat(";") {
                match params.get(&name) {
                    Some(repl) => out.push_str(repl),
                    None => {
                        return Err(cur.error(XmlErrorKind::UnknownEntity(format!("%{name};"))))
                    }
                }
                continue;
            }
            out.push('%');
            out.push_str(&name);
            continue;
        }
        if cur.starts_with("<!--") {
            let start = cur.position().offset;
            cur.eat("<!--");
            let _ = cur.take_until("-->")?;
            cur.eat("-->");
            out.push_str(&input[start..cur.position().offset]);
            continue;
        }
        if ch == '<' {
            // Some other declaration: substitute parameters inside it.
            let start = cur.position().offset;
            let _ = cur.take_until(">")?;
            cur.eat(">");
            let decl_text = &input[start..cur.position().offset];
            out.push_str(&substitute_params(decl_text, &params, cur.position())?);
            continue;
        }
        out.push(ch);
        cur.bump();
    }
    Ok(out)
}

fn substitute_params(
    text: &str,
    params: &BTreeMap<String, String>,
    at: xmlord_xml::Position,
) -> Result<String, XmlError> {
    if !text.contains('%') {
        return Ok(text.to_string());
    }
    let mut out = String::with_capacity(text.len());
    let mut cur = Cursor::new(text);
    while let Some(ch) = cur.peek() {
        if ch == '%' {
            cur.bump();
            let name = cur.take_while(is_name_char).to_string();
            if !name.is_empty() && cur.eat(";") {
                match params.get(&name) {
                    Some(repl) => out.push_str(repl),
                    None => {
                        return Err(XmlError::new(
                            XmlErrorKind::UnknownEntity(format!("%{name};")),
                            at,
                        ))
                    }
                }
                continue;
            }
            out.push('%');
            out.push_str(&name);
            continue;
        }
        out.push(ch);
        cur.bump();
    }
    Ok(out)
}

struct DtdParser<'a> {
    cur: Cursor<'a>,
    dtd: Dtd,
}

impl<'a> DtdParser<'a> {
    fn run(&mut self) -> Result<(), XmlError> {
        loop {
            self.cur.skip_ws();
            if self.cur.is_eof() {
                return Ok(());
            }
            if self.cur.starts_with("<!--") {
                self.cur.eat("<!--");
                let _ = self.cur.take_until("-->")?;
                self.cur.eat("-->");
            } else if self.cur.starts_with("<?") {
                self.cur.eat("<?");
                let _ = self.cur.take_until("?>")?;
                self.cur.eat("?>");
            } else if self.cur.starts_with("<!ELEMENT") {
                self.parse_element_decl()?;
            } else if self.cur.starts_with("<!ATTLIST") {
                self.parse_attlist_decl()?;
            } else if self.cur.starts_with("<!ENTITY") {
                self.parse_entity_decl()?;
            } else if self.cur.starts_with("<!NOTATION") {
                // Recorded nowhere: notations play no role in the mapping.
                self.cur.eat("<!NOTATION");
                let _ = self.cur.take_until(">")?;
                self.cur.eat(">");
            } else {
                return Err(self.cur.error(XmlErrorKind::Unexpected(format!(
                    "markup declaration at '{}'",
                    self.cur.rest().chars().take(12).collect::<String>()
                ))));
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let ok = self.cur.peek().map(|c| is_name_start_char(c) || c == ':').unwrap_or(false);
        if !ok {
            return Err(self.cur.error(XmlErrorKind::InvalidName(
                self.cur.peek().map(String::from).unwrap_or_default(),
            )));
        }
        Ok(self.cur.take_while(|c| is_name_char(c) || c == ':').to_string())
    }

    fn require_ws(&mut self) -> Result<(), XmlError> {
        if !self.cur.skip_ws() {
            return Err(self
                .cur
                .error(XmlErrorKind::IllegalConstruct("whitespace required".into())));
        }
        Ok(())
    }

    fn parse_element_decl(&mut self) -> Result<(), XmlError> {
        self.cur.eat("<!ELEMENT");
        self.require_ws()?;
        let name = self.parse_name()?;
        self.require_ws()?;
        let content = self.parse_content_spec()?;
        self.cur.skip_ws();
        self.cur.expect(">", "'>' closing ELEMENT declaration")?;
        // First declaration wins (XML 1.0 has at-most-one, but we are a
        // non-validating parser like the paper's: be forgiving).
        if !self.dtd.elements.contains_key(&name) {
            self.dtd.element_order.push(name.clone());
            self.dtd.elements.insert(name.clone(), ElementDecl { name, content });
        }
        Ok(())
    }

    fn parse_content_spec(&mut self) -> Result<ContentSpec, XmlError> {
        if self.cur.eat("EMPTY") {
            return Ok(ContentSpec::Empty);
        }
        if self.cur.eat("ANY") {
            return Ok(ContentSpec::Any);
        }
        if !self.cur.starts_with("(") {
            return Err(self.cur.error(XmlErrorKind::IllegalConstruct(
                "content spec must be EMPTY, ANY or a group".into(),
            )));
        }
        // Look ahead for mixed content.
        let mut probe = self.cur.clone();
        probe.eat("(");
        probe.skip_ws();
        if probe.starts_with("#PCDATA") {
            self.cur.eat("(");
            self.cur.skip_ws();
            self.cur.eat("#PCDATA");
            let mut names = Vec::new();
            loop {
                self.cur.skip_ws();
                if self.cur.eat(")") {
                    break;
                }
                self.cur.expect("|", "'|' in mixed content")?;
                self.cur.skip_ws();
                names.push(self.parse_name()?);
            }
            let starred = self.cur.eat("*");
            if !names.is_empty() && !starred {
                return Err(self.cur.error(XmlErrorKind::IllegalConstruct(
                    "mixed content with elements must end with ')*'".into(),
                )));
            }
            return Ok(if names.is_empty() { ContentSpec::PcData } else { ContentSpec::Mixed(names) });
        }
        let particle = self.parse_group()?;
        Ok(ContentSpec::Children(particle))
    }

    /// Parse `( cp (sep cp)* )occ` where sep is consistently `,` or `|`.
    fn parse_group(&mut self) -> Result<ContentParticle, XmlError> {
        self.cur.expect("(", "'(' opening a group")?;
        let mut children = Vec::new();
        let mut separator: Option<char> = None;
        loop {
            self.cur.skip_ws();
            children.push(self.parse_cp()?);
            self.cur.skip_ws();
            match self.cur.peek() {
                Some(')') => {
                    self.cur.bump();
                    break;
                }
                Some(sep @ (',' | '|')) => {
                    match separator {
                        None => separator = Some(sep),
                        Some(prev) if prev != sep => {
                            return Err(self.cur.error(XmlErrorKind::IllegalConstruct(
                                "cannot mix ',' and '|' in one group".into(),
                            )))
                        }
                        _ => {}
                    }
                    self.cur.bump();
                }
                _ => {
                    return Err(self
                        .cur
                        .error(XmlErrorKind::IllegalConstruct("expected ',', '|' or ')'".into())))
                }
            }
        }
        let occ = self.parse_occurrence();
        Ok(match separator {
            Some('|') => ContentParticle::Choice(children, occ),
            _ if children.len() == 1 => {
                // A single-child group — keep the group occurrence by
                // wrapping only when it adds information.
                let only = children.pop().unwrap();
                if occ == Occurrence::One {
                    only
                } else {
                    ContentParticle::Seq(vec![only], occ)
                }
            }
            _ => ContentParticle::Seq(children, occ),
        })
    }

    fn parse_cp(&mut self) -> Result<ContentParticle, XmlError> {
        if self.cur.starts_with("(") {
            self.parse_group()
        } else {
            let name = self.parse_name()?;
            let occ = self.parse_occurrence();
            Ok(ContentParticle::Name(name, occ))
        }
    }

    fn parse_occurrence(&mut self) -> Occurrence {
        if self.cur.eat("?") {
            Occurrence::Optional
        } else if self.cur.eat("*") {
            Occurrence::ZeroOrMore
        } else if self.cur.eat("+") {
            Occurrence::OneOrMore
        } else {
            Occurrence::One
        }
    }

    fn parse_attlist_decl(&mut self) -> Result<(), XmlError> {
        self.cur.eat("<!ATTLIST");
        self.require_ws()?;
        let element = self.parse_name()?;
        let mut defs = Vec::new();
        loop {
            let had_ws = self.cur.skip_ws();
            if self.cur.eat(">") {
                break;
            }
            if !had_ws {
                return Err(self.cur.error(XmlErrorKind::IllegalConstruct(
                    "whitespace required between attribute definitions".into(),
                )));
            }
            let name = self.parse_name()?;
            self.require_ws()?;
            let att_type = self.parse_att_type()?;
            self.require_ws()?;
            let default = self.parse_default_decl()?;
            defs.push(AttDef { name, att_type, default });
        }
        let entry = self
            .dtd
            .attlists
            .entry(element.clone())
            .or_insert_with(|| AttlistDecl { element, attributes: Vec::new() });
        for def in defs {
            // First definition of an attribute name wins (XML 1.0 §3.3).
            if !entry.attributes.iter().any(|a| a.name == def.name) {
                entry.attributes.push(def);
            }
        }
        Ok(())
    }

    fn parse_att_type(&mut self) -> Result<AttType, XmlError> {
        // Order matters: IDREFS before IDREF before ID, etc.
        if self.cur.eat("CDATA") {
            Ok(AttType::Cdata)
        } else if self.cur.eat("IDREFS") {
            Ok(AttType::Idrefs)
        } else if self.cur.eat("IDREF") {
            Ok(AttType::Idref)
        } else if self.cur.eat("ID") {
            Ok(AttType::Id)
        } else if self.cur.eat("ENTITIES") {
            Ok(AttType::Entities)
        } else if self.cur.eat("ENTITY") {
            Ok(AttType::Entity)
        } else if self.cur.eat("NMTOKENS") {
            Ok(AttType::Nmtokens)
        } else if self.cur.eat("NMTOKEN") {
            Ok(AttType::Nmtoken)
        } else if self.cur.eat("NOTATION") {
            self.require_ws()?;
            let names = self.parse_enumeration()?;
            Ok(AttType::Notation(names))
        } else if self.cur.starts_with("(") {
            let names = self.parse_enumeration()?;
            Ok(AttType::Enumerated(names))
        } else {
            Err(self
                .cur
                .error(XmlErrorKind::IllegalConstruct("unknown attribute type".into())))
        }
    }

    fn parse_enumeration(&mut self) -> Result<Vec<String>, XmlError> {
        self.cur.expect("(", "'(' opening enumeration")?;
        let mut names = Vec::new();
        loop {
            self.cur.skip_ws();
            // Nmtokens allow a leading digit, unlike names.
            let token = self.cur.take_while(|c| is_name_char(c) || c == ':');
            if token.is_empty() {
                return Err(self
                    .cur
                    .error(XmlErrorKind::IllegalConstruct("empty enumeration token".into())));
            }
            names.push(token.to_string());
            self.cur.skip_ws();
            if self.cur.eat(")") {
                return Ok(names);
            }
            self.cur.expect("|", "'|' in enumeration")?;
        }
    }

    fn parse_default_decl(&mut self) -> Result<DefaultDecl, XmlError> {
        if self.cur.eat("#REQUIRED") {
            Ok(DefaultDecl::Required)
        } else if self.cur.eat("#IMPLIED") {
            Ok(DefaultDecl::Implied)
        } else if self.cur.eat("#FIXED") {
            self.require_ws()?;
            let value = self.parse_quoted()?;
            Ok(DefaultDecl::Fixed(value))
        } else {
            let value = self.parse_quoted()?;
            Ok(DefaultDecl::Default(value))
        }
    }

    fn parse_quoted(&mut self) -> Result<String, XmlError> {
        match self.cur.peek() {
            Some(q @ ('"' | '\'')) => {
                self.cur.bump();
                let value = self.cur.take_until(&q.to_string())?.to_string();
                self.cur.eat(&q.to_string());
                Ok(value)
            }
            _ => Err(self
                .cur
                .error(XmlErrorKind::IllegalConstruct("expected quoted value".into()))),
        }
    }

    fn parse_entity_decl(&mut self) -> Result<(), XmlError> {
        self.cur.eat("<!ENTITY");
        self.require_ws()?;
        if self.cur.eat("%") {
            self.require_ws()?;
            let name = self.parse_name()?;
            self.cur.skip_ws();
            let replacement = self.parse_quoted()?;
            self.cur.skip_ws();
            self.cur.expect(">", "'>' closing entity declaration")?;
            self.dtd.entities.push(EntityDecl::InternalParameter {
                name,
                // &#34; was injected by the pre-pass to protect quotes.
                replacement: replacement.replace("&#34;", "\""),
            });
            return Ok(());
        }
        let name = self.parse_name()?;
        self.require_ws()?;
        if self.cur.eat("SYSTEM") {
            self.require_ws()?;
            let system = self.parse_quoted()?;
            self.skip_ndata_and_close()?;
            self.dtd.entities.push(EntityDecl::ExternalGeneral { name, system, public: None });
            return Ok(());
        }
        if self.cur.eat("PUBLIC") {
            self.require_ws()?;
            let public = self.parse_quoted()?;
            self.require_ws()?;
            let system = self.parse_quoted()?;
            self.skip_ndata_and_close()?;
            self.dtd.entities.push(EntityDecl::ExternalGeneral {
                name,
                system,
                public: Some(public),
            });
            return Ok(());
        }
        let replacement = self.parse_quoted()?;
        self.cur.skip_ws();
        self.cur.expect(">", "'>' closing entity declaration")?;
        self.dtd.entities.push(EntityDecl::InternalGeneral { name, replacement });
        Ok(())
    }

    fn skip_ndata_and_close(&mut self) -> Result<(), XmlError> {
        self.cur.skip_ws();
        if self.cur.eat("NDATA") {
            self.require_ws()?;
            let _ = self.parse_name()?;
            self.cur.skip_ws();
        }
        self.cur.expect(">", "'>' closing entity declaration")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Appendix A DTD, verbatim structure.
    pub const UNIVERSITY_DTD: &str = r#"
<!ELEMENT University (StudyCourse,Student*)>
<!ELEMENT Student (LName,FName,Course*)>
<!ATTLIST Student StudNr CDATA #REQUIRED>
<!ELEMENT Course (Name,Professor*,CreditPts?)>
<!ELEMENT Professor (PName,Subject+,Dept)>
<!ENTITY cs "Computer Science">
<!ELEMENT LName (#PCDATA)>
<!ELEMENT FName (#PCDATA)>
<!ELEMENT Name (#PCDATA)>
<!ELEMENT PName (#PCDATA)>
<!ELEMENT Subject (#PCDATA)>
<!ELEMENT Dept (#PCDATA)>
<!ELEMENT StudyCourse (#PCDATA)>
"#;

    #[test]
    fn parses_the_appendix_a_dtd() {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        assert_eq!(dtd.elements.len(), 11);
        let uni = dtd.element("University").unwrap();
        assert_eq!(uni.content.to_string(), "(StudyCourse,Student*)");
        let prof = dtd.element("Professor").unwrap();
        assert_eq!(prof.content.to_string(), "(PName,Subject+,Dept)");
        let student_attrs = dtd.attributes_of("Student");
        assert_eq!(student_attrs.len(), 1);
        assert_eq!(student_attrs[0].name, "StudNr");
        assert_eq!(student_attrs[0].att_type, AttType::Cdata);
        assert!(student_attrs[0].default.is_required());
        assert_eq!(dtd.entity_catalog().lookup("cs"), Some("Computer Science"));
        assert_eq!(dtd.undeclared_children(), vec!["CreditPts".to_string()]);
    }

    #[test]
    fn parses_occurrence_operators() {
        let dtd = parse_dtd("<!ELEMENT a (b?,c*,d+,e)>").unwrap();
        let content = &dtd.element("a").unwrap().content;
        match content {
            ContentSpec::Children(ContentParticle::Seq(cs, _)) => {
                let occs: Vec<Occurrence> = cs.iter().map(|c| c.occurrence()).collect();
                assert_eq!(
                    occs,
                    vec![
                        Occurrence::Optional,
                        Occurrence::ZeroOrMore,
                        Occurrence::OneOrMore,
                        Occurrence::One
                    ]
                );
            }
            other => panic!("unexpected content: {other:?}"),
        }
    }

    #[test]
    fn parses_choice_groups_and_nesting() {
        let dtd = parse_dtd("<!ELEMENT a ((b|c)+,d)>").unwrap();
        assert_eq!(dtd.element("a").unwrap().content.to_string(), "((b|c)+,d)");
    }

    #[test]
    fn single_child_group_with_operator_is_preserved() {
        let dtd = parse_dtd("<!ELEMENT a (b)*>").unwrap();
        assert_eq!(dtd.element("a").unwrap().content.to_string(), "(b)*");
    }

    #[test]
    fn rejects_mixed_separators() {
        assert!(parse_dtd("<!ELEMENT a (b,c|d)>").is_err());
    }

    #[test]
    fn parses_empty_and_any() {
        let dtd = parse_dtd("<!ELEMENT a EMPTY><!ELEMENT b ANY>").unwrap();
        assert_eq!(dtd.element("a").unwrap().content, ContentSpec::Empty);
        assert_eq!(dtd.element("b").unwrap().content, ContentSpec::Any);
    }

    #[test]
    fn parses_pcdata_and_mixed() {
        let dtd = parse_dtd("<!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA|i|bold)*>").unwrap();
        assert_eq!(dtd.element("a").unwrap().content, ContentSpec::PcData);
        assert_eq!(
            dtd.element("b").unwrap().content,
            ContentSpec::Mixed(vec!["i".into(), "bold".into()])
        );
    }

    #[test]
    fn mixed_with_elements_requires_star() {
        assert!(parse_dtd("<!ELEMENT b (#PCDATA|i)>").is_err());
    }

    #[test]
    fn parses_all_attribute_types() {
        let dtd = parse_dtd(
            r#"<!ATTLIST e
                a CDATA #IMPLIED
                b ID #REQUIRED
                c IDREF #IMPLIED
                d IDREFS #IMPLIED
                f NMTOKEN #IMPLIED
                g NMTOKENS #IMPLIED
                h ENTITY #IMPLIED
                i ENTITIES #IMPLIED
                j (x|y|z) "x"
                k NOTATION (n1|n2) #IMPLIED
                l CDATA #FIXED "42">"#,
        )
        .unwrap();
        let attrs = dtd.attributes_of("e");
        assert_eq!(attrs.len(), 11);
        assert_eq!(attrs[1].att_type, AttType::Id);
        assert_eq!(attrs[3].att_type, AttType::Idrefs);
        assert_eq!(
            attrs[8].att_type,
            AttType::Enumerated(vec!["x".into(), "y".into(), "z".into()])
        );
        assert_eq!(attrs[8].default, DefaultDecl::Default("x".into()));
        assert_eq!(attrs[10].default, DefaultDecl::Fixed("42".into()));
    }

    #[test]
    fn merges_multiple_attlists_first_wins() {
        let dtd = parse_dtd(
            r#"<!ATTLIST e a CDATA #IMPLIED>
               <!ATTLIST e a CDATA #REQUIRED b CDATA #IMPLIED>"#,
        )
        .unwrap();
        let attrs = dtd.attributes_of("e");
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[0].default, DefaultDecl::Implied); // first wins
    }

    #[test]
    fn parses_entity_declarations() {
        let dtd = parse_dtd(
            r#"<!ENTITY cs "Computer Science">
               <!ENTITY logo SYSTEM "logo.gif" NDATA gif>
               <!ENTITY pub PUBLIC "-//X//EN" "x.ent">"#,
        )
        .unwrap();
        assert_eq!(dtd.entities.len(), 3);
        assert!(matches!(&dtd.entities[0], EntityDecl::InternalGeneral { name, .. } if name == "cs"));
        assert!(matches!(&dtd.entities[1], EntityDecl::ExternalGeneral { system, .. } if system == "logo.gif"));
        assert!(matches!(&dtd.entities[2], EntityDecl::ExternalGeneral { public: Some(p), .. } if p == "-//X//EN"));
    }

    #[test]
    fn expands_parameter_entities() {
        let dtd = parse_dtd(
            r#"<!ENTITY % common "LName,FName">
               <!ELEMENT Person (%common;,Age?)>
               <!ELEMENT LName (#PCDATA)>
               <!ELEMENT FName (#PCDATA)>
               <!ELEMENT Age (#PCDATA)>"#,
        )
        .unwrap();
        assert_eq!(dtd.element("Person").unwrap().content.to_string(), "(LName,FName,Age?)");
    }

    #[test]
    fn parameter_entities_can_nest() {
        let dtd = parse_dtd(
            r#"<!ENTITY % name "LName">
               <!ENTITY % all "%name;,FName">
               <!ELEMENT P (%all;)>"#,
        )
        .unwrap();
        assert_eq!(dtd.element("P").unwrap().content.to_string(), "(LName,FName)");
    }

    #[test]
    fn unknown_parameter_entity_is_error() {
        assert!(parse_dtd("<!ELEMENT a (%nope;)>").is_err());
    }

    #[test]
    fn comments_and_pis_are_skipped() {
        let dtd = parse_dtd(
            "<!-- header --><?keep data?><!ELEMENT a EMPTY><!-- trailer -->",
        )
        .unwrap();
        assert_eq!(dtd.elements.len(), 1);
    }

    #[test]
    fn recursive_dtd_of_section_6_2_parses() {
        // Section 6.2: Professor contains Dept, Dept contains Professor*.
        let dtd = parse_dtd(
            r#"<!ELEMENT Professor (PName,Dept)>
               <!ELEMENT Dept (DName,Professor*)>
               <!ELEMENT PName (#PCDATA)>
               <!ELEMENT DName (#PCDATA)>"#,
        )
        .unwrap();
        assert_eq!(dtd.element("Dept").unwrap().content.child_names(), vec!["DName", "Professor"]);
    }

    #[test]
    fn element_order_preserves_first_declarations() {
        let dtd = parse_dtd("<!ELEMENT b EMPTY><!ELEMENT a EMPTY><!ELEMENT b ANY>").unwrap();
        assert_eq!(dtd.element_order, vec!["b".to_string(), "a".to_string()]);
        assert_eq!(dtd.element("b").unwrap().content, ContentSpec::Empty); // first wins
    }
}

//! Declaration-level DTD model.
//!
//! This is the vocabulary of the paper's mapping algorithm: content
//! particles carry the `?`/`*`/`+` operators that §4.2 ("Iteration
//! Operators") and §4.3 ("Not-Null Constraints") branch on, and attribute
//! definitions carry the types and default declarations §4.4 maps.

use std::collections::BTreeMap;
use std::fmt;

use xmlord_xml::EntityCatalog;

/// Occurrence indicator on a content particle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Occurrence {
    /// Exactly one (no operator).
    One,
    /// `?` — zero or one. Optional (paper §4.3: nullable column).
    Optional,
    /// `*` — zero or many. Set-valued and optional.
    ZeroOrMore,
    /// `+` — one or many. Set-valued and mandatory.
    OneOrMore,
}

impl Occurrence {
    /// "Set-valued" in the paper's terminology (§4.2): may occur repeatedly.
    pub fn is_set_valued(self) -> bool {
        matches!(self, Occurrence::ZeroOrMore | Occurrence::OneOrMore)
    }

    /// May be absent from a valid document (§4.3: maps to a nullable column).
    pub fn is_optional(self) -> bool {
        matches!(self, Occurrence::Optional | Occurrence::ZeroOrMore)
    }

    /// The DTD operator character, if any.
    pub fn symbol(self) -> &'static str {
        match self {
            Occurrence::One => "",
            Occurrence::Optional => "?",
            Occurrence::ZeroOrMore => "*",
            Occurrence::OneOrMore => "+",
        }
    }
}

/// A particle of an element content model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentParticle {
    /// A child element name with its occurrence operator.
    Name(String, Occurrence),
    /// `(a, b, c)` sequence group.
    Seq(Vec<ContentParticle>, Occurrence),
    /// `(a | b | c)` choice group.
    Choice(Vec<ContentParticle>, Occurrence),
}

impl ContentParticle {
    pub fn occurrence(&self) -> Occurrence {
        match self {
            ContentParticle::Name(_, occ)
            | ContentParticle::Seq(_, occ)
            | ContentParticle::Choice(_, occ) => *occ,
        }
    }

    /// All element names mentioned anywhere in the particle, left to right,
    /// with duplicates retained.
    pub fn names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_names(&mut out);
        out
    }

    fn collect_names<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            ContentParticle::Name(name, _) => out.push(name),
            ContentParticle::Seq(children, _) | ContentParticle::Choice(children, _) => {
                for child in children {
                    child.collect_names(out);
                }
            }
        }
    }
}

impl fmt::Display for ContentParticle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContentParticle::Name(name, occ) => write!(f, "{name}{}", occ.symbol()),
            ContentParticle::Seq(children, occ) => {
                write!(f, "(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "){}", occ.symbol())
            }
            ContentParticle::Choice(children, occ) => {
                write!(f, "(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "){}", occ.symbol())
            }
        }
    }
}

/// Content specification of an `<!ELEMENT>` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentSpec {
    /// `EMPTY`.
    Empty,
    /// `ANY`.
    Any,
    /// `(#PCDATA)` — a *simple element* in the paper's §4.1 terminology.
    PcData,
    /// `(#PCDATA | a | b)*` — mixed content; names may be empty.
    Mixed(Vec<String>),
    /// Element content — a *complex element* (§4.1).
    Children(ContentParticle),
}

impl ContentSpec {
    /// Paper §4.1: a *simple element* contains character data only.
    pub fn is_simple(&self) -> bool {
        matches!(self, ContentSpec::PcData)
    }

    /// Paper §4.1: a *complex element* decomposes into subelements.
    pub fn is_complex(&self) -> bool {
        matches!(self, ContentSpec::Children(_)) || self.is_mixed_with_elements()
    }

    pub fn is_mixed_with_elements(&self) -> bool {
        matches!(self, ContentSpec::Mixed(names) if !names.is_empty())
    }

    /// Distinct child element names, in first-appearance order.
    pub fn child_names(&self) -> Vec<String> {
        let mut seen = Vec::new();
        let raw: Vec<&str> = match self {
            ContentSpec::Children(cp) => cp.names(),
            ContentSpec::Mixed(names) => names.iter().map(String::as_str).collect(),
            _ => Vec::new(),
        };
        for name in raw {
            if !seen.iter().any(|s: &String| s == name) {
                seen.push(name.to_string());
            }
        }
        seen
    }
}

impl fmt::Display for ContentSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContentSpec::Empty => write!(f, "EMPTY"),
            ContentSpec::Any => write!(f, "ANY"),
            ContentSpec::PcData => write!(f, "(#PCDATA)"),
            ContentSpec::Mixed(names) if names.is_empty() => write!(f, "(#PCDATA)*"),
            ContentSpec::Mixed(names) => {
                write!(f, "(#PCDATA|{})*", names.join("|"))
            }
            ContentSpec::Children(cp) => write!(f, "{cp}"),
        }
    }
}

/// `<!ELEMENT name contentspec>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    pub name: String,
    pub content: ContentSpec,
}

/// Declared type of an attribute (§4.4: "Possible types of attributes are:
/// ID, IDREF, CDATA, and NMTOKEN" — we implement the full XML 1.0 set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttType {
    Cdata,
    Id,
    Idref,
    Idrefs,
    Entity,
    Entities,
    Nmtoken,
    Nmtokens,
    Notation(Vec<String>),
    /// `(a | b | c)` enumeration.
    Enumerated(Vec<String>),
}

impl AttType {
    pub fn keyword(&self) -> String {
        match self {
            AttType::Cdata => "CDATA".into(),
            AttType::Id => "ID".into(),
            AttType::Idref => "IDREF".into(),
            AttType::Idrefs => "IDREFS".into(),
            AttType::Entity => "ENTITY".into(),
            AttType::Entities => "ENTITIES".into(),
            AttType::Nmtoken => "NMTOKEN".into(),
            AttType::Nmtokens => "NMTOKENS".into(),
            AttType::Notation(names) => format!("NOTATION ({})", names.join("|")),
            AttType::Enumerated(names) => format!("({})", names.join("|")),
        }
    }
}

/// Default declaration of an attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DefaultDecl {
    /// `#REQUIRED` — §4.4: maps to a NOT NULL column.
    Required,
    /// `#IMPLIED` — §4.3: maps to a nullable column.
    Implied,
    /// `#FIXED "value"`.
    Fixed(String),
    /// `"value"` default.
    Default(String),
}

impl DefaultDecl {
    pub fn is_required(&self) -> bool {
        matches!(self, DefaultDecl::Required)
    }

    /// The value the validator injects when the attribute is absent.
    pub fn default_value(&self) -> Option<&str> {
        match self {
            DefaultDecl::Fixed(v) | DefaultDecl::Default(v) => Some(v),
            _ => None,
        }
    }
}

/// One attribute definition inside an `<!ATTLIST>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttDef {
    pub name: String,
    pub att_type: AttType,
    pub default: DefaultDecl,
}

/// `<!ATTLIST element att-def...>` — possibly merged from several
/// declarations for the same element (first definition of a name wins,
/// per XML 1.0 §3.3).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AttlistDecl {
    pub element: String,
    pub attributes: Vec<AttDef>,
}

/// `<!ENTITY ...>` declaration kinds retained in the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntityDecl {
    /// `<!ENTITY name "replacement">` — the kind §6.1 stores in the meta-DB.
    InternalGeneral { name: String, replacement: String },
    /// `<!ENTITY % name "replacement">` — expanded during DTD parsing.
    InternalParameter { name: String, replacement: String },
    /// `<!ENTITY name SYSTEM "uri">` — recorded; content unavailable.
    ExternalGeneral { name: String, system: String, public: Option<String> },
}

impl EntityDecl {
    pub fn name(&self) -> &str {
        match self {
            EntityDecl::InternalGeneral { name, .. }
            | EntityDecl::InternalParameter { name, .. }
            | EntityDecl::ExternalGeneral { name, .. } => name,
        }
    }
}

/// A parsed DTD: the input to the paper's schema-generation algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dtd {
    /// Element declarations keyed by name (BTreeMap ⇒ deterministic output).
    pub elements: BTreeMap<String, ElementDecl>,
    /// Merged attribute lists keyed by element name.
    pub attlists: BTreeMap<String, AttlistDecl>,
    /// Entity declarations in document order.
    pub entities: Vec<EntityDecl>,
    /// Declaration order of the elements (first declaration).
    pub element_order: Vec<String>,
}

impl Dtd {
    pub fn element(&self, name: &str) -> Option<&ElementDecl> {
        self.elements.get(name)
    }

    pub fn attlist(&self, element: &str) -> Option<&AttlistDecl> {
        self.attlists.get(element)
    }

    /// Attribute definitions for an element, or an empty slice.
    pub fn attributes_of(&self, element: &str) -> &[AttDef] {
        self.attlists.get(element).map(|a| a.attributes.as_slice()).unwrap_or(&[])
    }

    /// Build an [`EntityCatalog`] of the internal general entities, for the
    /// XML parser and for the §6.1 meta-table.
    pub fn entity_catalog(&self) -> EntityCatalog {
        let mut cat = EntityCatalog::new();
        for ent in &self.entities {
            if let EntityDecl::InternalGeneral { name, replacement } = ent {
                cat.declare(name, replacement);
            }
        }
        cat
    }

    /// Names of elements that are declared as children somewhere but never
    /// declared themselves — schema-generation treats these as errors.
    pub fn undeclared_children(&self) -> Vec<String> {
        let mut out = Vec::new();
        for decl in self.elements.values() {
            for child in decl.content.child_names() {
                if !self.elements.contains_key(&child) && !out.contains(&child) {
                    out.push(child);
                }
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurrence_classification_matches_paper_terms() {
        assert!(!Occurrence::One.is_set_valued() && !Occurrence::One.is_optional());
        assert!(!Occurrence::Optional.is_set_valued() && Occurrence::Optional.is_optional());
        assert!(Occurrence::ZeroOrMore.is_set_valued() && Occurrence::ZeroOrMore.is_optional());
        assert!(Occurrence::OneOrMore.is_set_valued() && !Occurrence::OneOrMore.is_optional());
    }

    #[test]
    fn particle_display_round_trips_syntax() {
        let cp = ContentParticle::Seq(
            vec![
                ContentParticle::Name("a".into(), Occurrence::One),
                ContentParticle::Choice(
                    vec![
                        ContentParticle::Name("b".into(), Occurrence::Optional),
                        ContentParticle::Name("c".into(), Occurrence::ZeroOrMore),
                    ],
                    Occurrence::OneOrMore,
                ),
            ],
            Occurrence::One,
        );
        assert_eq!(cp.to_string(), "(a,(b?|c*)+)");
    }

    #[test]
    fn child_names_deduplicate_in_order() {
        let cp = ContentParticle::Seq(
            vec![
                ContentParticle::Name("x".into(), Occurrence::One),
                ContentParticle::Name("y".into(), Occurrence::One),
                ContentParticle::Name("x".into(), Occurrence::ZeroOrMore),
            ],
            Occurrence::One,
        );
        let spec = ContentSpec::Children(cp);
        assert_eq!(spec.child_names(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn simple_vs_complex_classification() {
        assert!(ContentSpec::PcData.is_simple());
        assert!(!ContentSpec::PcData.is_complex());
        let complex = ContentSpec::Children(ContentParticle::Name("a".into(), Occurrence::One));
        assert!(complex.is_complex() && !complex.is_simple());
        assert!(ContentSpec::Mixed(vec!["a".into()]).is_complex());
        assert!(!ContentSpec::Mixed(vec![]).is_complex());
        assert!(!ContentSpec::Empty.is_complex());
    }

    #[test]
    fn entity_catalog_only_contains_internal_general() {
        let mut dtd = Dtd::default();
        dtd.entities.push(EntityDecl::InternalGeneral {
            name: "cs".into(),
            replacement: "Computer Science".into(),
        });
        dtd.entities.push(EntityDecl::InternalParameter {
            name: "p".into(),
            replacement: "x".into(),
        });
        dtd.entities.push(EntityDecl::ExternalGeneral {
            name: "logo".into(),
            system: "logo.gif".into(),
            public: None,
        });
        let cat = dtd.entity_catalog();
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.lookup("cs"), Some("Computer Science"));
    }

    #[test]
    fn undeclared_children_found() {
        let mut dtd = Dtd::default();
        dtd.elements.insert(
            "a".into(),
            ElementDecl {
                name: "a".into(),
                content: ContentSpec::Children(ContentParticle::Name(
                    "missing".into(),
                    Occurrence::One,
                )),
            },
        );
        assert_eq!(dtd.undeclared_children(), vec!["missing".to_string()]);
    }

    #[test]
    fn default_decl_values() {
        assert!(DefaultDecl::Required.is_required());
        assert_eq!(DefaultDecl::Fixed("x".into()).default_value(), Some("x"));
        assert_eq!(DefaultDecl::Implied.default_value(), None);
    }

    #[test]
    fn atttype_keywords() {
        assert_eq!(AttType::Cdata.keyword(), "CDATA");
        assert_eq!(AttType::Enumerated(vec!["a".into(), "b".into()]).keyword(), "(a|b)");
        assert_eq!(AttType::Notation(vec!["n".into()]).keyword(), "NOTATION (n)");
    }
}

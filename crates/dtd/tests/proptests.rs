//! Property tests for the DTD substrate.
//!
//! The central one checks the Glushkov content-model matcher against a naive
//! backtracking regex interpreter on random content models and random child
//! sequences — the two must always agree.

use proptest::prelude::*;
use xmlord_dtd::ast::{ContentParticle, Occurrence};
use xmlord_dtd::matcher::ContentMatcher;
use xmlord_dtd::parse_dtd;

/// A naive, obviously-correct backtracking matcher: returns the set of
/// input positions reachable after matching `cp` starting at `from`.
fn oracle_match(cp: &ContentParticle, input: &[&str], from: usize) -> Vec<usize> {
    let base = |cp: &ContentParticle, from: usize| -> Vec<usize> {
        match cp {
            ContentParticle::Name(name, _) => {
                if from < input.len() && input[from] == name {
                    vec![from + 1]
                } else {
                    vec![]
                }
            }
            ContentParticle::Seq(children, _) => {
                let mut positions = vec![from];
                for child in children {
                    let mut next = Vec::new();
                    for &p in &positions {
                        for q in oracle_match(child, input, p) {
                            if !next.contains(&q) {
                                next.push(q);
                            }
                        }
                    }
                    positions = next;
                    if positions.is_empty() {
                        break;
                    }
                }
                positions
            }
            ContentParticle::Choice(children, _) => {
                let mut out = Vec::new();
                for child in children {
                    for q in oracle_match(child, input, from) {
                        if !out.contains(&q) {
                            out.push(q);
                        }
                    }
                }
                out
            }
        }
    };
    // Apply the occurrence operator around the base match.
    let one = |from: usize| base(cp, from);
    match cp.occurrence() {
        Occurrence::One => one(from),
        Occurrence::Optional => {
            let mut out = one(from);
            if !out.contains(&from) {
                out.push(from);
            }
            out
        }
        Occurrence::ZeroOrMore | Occurrence::OneOrMore => {
            // Fixpoint iteration of `one`.
            let mut reached = vec![from];
            let mut frontier = vec![from];
            let mut results: Vec<usize> = if cp.occurrence() == Occurrence::ZeroOrMore {
                vec![from]
            } else {
                vec![]
            };
            while let Some(p) = frontier.pop() {
                for q in one(p) {
                    if !results.contains(&q) {
                        results.push(q);
                    }
                    if q > p && !reached.contains(&q) {
                        reached.push(q);
                        frontier.push(q);
                    }
                }
            }
            results
        }
    }
}

fn oracle_accepts(cp: &ContentParticle, input: &[&str]) -> bool {
    oracle_match(cp, input, 0).contains(&input.len())
}

/// Strip operators so the oracle's occurrence wrapper is the only one
/// applied at the top level of each recursive call. (The oracle applies
/// cp.occurrence() itself, so nothing to strip — identity.)
fn arb_particle() -> impl Strategy<Value = ContentParticle> {
    let occ = prop_oneof![
        Just(Occurrence::One),
        Just(Occurrence::Optional),
        Just(Occurrence::ZeroOrMore),
        Just(Occurrence::OneOrMore),
    ];
    let name = prop_oneof![Just("a"), Just("b"), Just("c")];
    let leaf = (name, occ.clone())
        .prop_map(|(n, o)| ContentParticle::Name(n.to_string(), o));
    leaf.prop_recursive(3, 16, 3, move |inner| {
        let occ2 = prop_oneof![
            Just(Occurrence::One),
            Just(Occurrence::Optional),
            Just(Occurrence::ZeroOrMore),
            Just(Occurrence::OneOrMore),
        ];
        prop_oneof![
            (proptest::collection::vec(inner.clone(), 1..3), occ2.clone())
                .prop_map(|(cs, o)| ContentParticle::Seq(cs, o)),
            (proptest::collection::vec(inner, 1..3), occ2)
                .prop_map(|(cs, o)| ContentParticle::Choice(cs, o)),
        ]
    })
}

fn arb_input() -> impl Strategy<Value = Vec<&'static str>> {
    proptest::collection::vec(prop_oneof![Just("a"), Just("b"), Just("c")], 0..7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn glushkov_matches_oracle(cp in arb_particle(), input in arb_input()) {
        let matcher = ContentMatcher::from_particle(&cp);
        let refs: Vec<&str> = input.clone();
        prop_assert_eq!(
            matcher.matches(&refs),
            oracle_accepts(&cp, &refs),
            "model: {} input: {:?}", cp, input
        );
    }

    #[test]
    fn parsed_model_display_reparses_identically(cp in arb_particle()) {
        // Display of a particle is valid DTD syntax that parses back to an
        // equivalent matcher.
        let text = format!("<!ELEMENT root {}>", wrap_group(&cp));
        let dtd = parse_dtd(&text).unwrap();
        let reparsed = &dtd.element("root").unwrap().content;
        let m1 = ContentMatcher::from_particle(&cp);
        let m2 = match reparsed {
            xmlord_dtd::ContentSpec::Children(cp2) => ContentMatcher::from_particle(cp2),
            other => panic!("unexpected spec {other:?}"),
        };
        // Compare on a fixed battery of inputs.
        for input in battery() {
            prop_assert_eq!(
                m1.matches(&input),
                m2.matches(&input),
                "model: {} input: {:?}", text, input
            );
        }
    }
}

/// Content specs must be parenthesized groups at the top level.
fn wrap_group(cp: &ContentParticle) -> String {
    match cp {
        ContentParticle::Name(..) => format!("({cp})"),
        _ => cp.to_string(),
    }
}

fn battery() -> Vec<Vec<&'static str>> {
    vec![
        vec![],
        vec!["a"],
        vec!["b"],
        vec!["c"],
        vec!["a", "a"],
        vec!["a", "b"],
        vec!["b", "a"],
        vec!["a", "b", "c"],
        vec!["c", "b", "a"],
        vec!["a", "a", "b", "b"],
        vec!["a", "b", "a", "b"],
        vec!["a", "b", "c", "a", "b", "c"],
    ]
}

//! Property tests for the DTD substrate.
//!
//! The central one checks the Glushkov content-model matcher against a naive
//! backtracking regex interpreter on random content models and random child
//! sequences — the two must always agree.

use xmlord_dtd::ast::{ContentParticle, Occurrence};
use xmlord_dtd::matcher::ContentMatcher;
use xmlord_dtd::parse_dtd;
use xmlord_prng::Prng;

/// A naive, obviously-correct backtracking matcher: returns the set of
/// input positions reachable after matching `cp` starting at `from`.
fn oracle_match(cp: &ContentParticle, input: &[&str], from: usize) -> Vec<usize> {
    let base = |cp: &ContentParticle, from: usize| -> Vec<usize> {
        match cp {
            ContentParticle::Name(name, _) => {
                if from < input.len() && input[from] == name {
                    vec![from + 1]
                } else {
                    vec![]
                }
            }
            ContentParticle::Seq(children, _) => {
                let mut positions = vec![from];
                for child in children {
                    let mut next = Vec::new();
                    for &p in &positions {
                        for q in oracle_match(child, input, p) {
                            if !next.contains(&q) {
                                next.push(q);
                            }
                        }
                    }
                    positions = next;
                    if positions.is_empty() {
                        break;
                    }
                }
                positions
            }
            ContentParticle::Choice(children, _) => {
                let mut out = Vec::new();
                for child in children {
                    for q in oracle_match(child, input, from) {
                        if !out.contains(&q) {
                            out.push(q);
                        }
                    }
                }
                out
            }
        }
    };
    // Apply the occurrence operator around the base match.
    let one = |from: usize| base(cp, from);
    match cp.occurrence() {
        Occurrence::One => one(from),
        Occurrence::Optional => {
            let mut out = one(from);
            if !out.contains(&from) {
                out.push(from);
            }
            out
        }
        Occurrence::ZeroOrMore | Occurrence::OneOrMore => {
            // Fixpoint iteration of `one`.
            let mut reached = vec![from];
            let mut frontier = vec![from];
            let mut results: Vec<usize> = if cp.occurrence() == Occurrence::ZeroOrMore {
                vec![from]
            } else {
                vec![]
            };
            while let Some(p) = frontier.pop() {
                for q in one(p) {
                    if !results.contains(&q) {
                        results.push(q);
                    }
                    if q > p && !reached.contains(&q) {
                        reached.push(q);
                        frontier.push(q);
                    }
                }
            }
            results
        }
    }
}

fn oracle_accepts(cp: &ContentParticle, input: &[&str]) -> bool {
    oracle_match(cp, input, 0).contains(&input.len())
}

fn arb_occurrence(rng: &mut Prng) -> Occurrence {
    match rng.gen_range(0u32..4) {
        0 => Occurrence::One,
        1 => Occurrence::Optional,
        2 => Occurrence::ZeroOrMore,
        _ => Occurrence::OneOrMore,
    }
}

const NAMES: [&str; 3] = ["a", "b", "c"];

/// Random content particle, depth-bounded like the old proptest
/// `prop_recursive(3, ..)` strategy.
fn arb_particle(rng: &mut Prng, depth: u32) -> ContentParticle {
    if depth == 0 || rng.gen_bool(0.4) {
        return ContentParticle::Name(rng.choose(&NAMES).to_string(), arb_occurrence(rng));
    }
    let children: Vec<ContentParticle> =
        (0..rng.gen_range(1usize..3)).map(|_| arb_particle(rng, depth - 1)).collect();
    if rng.gen_bool(0.5) {
        ContentParticle::Seq(children, arb_occurrence(rng))
    } else {
        ContentParticle::Choice(children, arb_occurrence(rng))
    }
}

fn arb_input(rng: &mut Prng) -> Vec<&'static str> {
    (0..rng.gen_range(0usize..7)).map(|_| *rng.choose(&NAMES)).collect()
}

#[test]
fn glushkov_matches_oracle() {
    for case in 0..512u64 {
        let mut rng = Prng::seed_from_u64(0x61A + case);
        let cp = arb_particle(&mut rng, 3);
        let input = arb_input(&mut rng);
        let matcher = ContentMatcher::from_particle(&cp);
        assert_eq!(
            matcher.matches(&input),
            oracle_accepts(&cp, &input),
            "case {case} model: {cp} input: {input:?}"
        );
    }
}

#[test]
fn parsed_model_display_reparses_identically() {
    for case in 0..256u64 {
        let mut rng = Prng::seed_from_u64(0xD7D + case);
        let cp = arb_particle(&mut rng, 3);
        // Display of a particle is valid DTD syntax that parses back to an
        // equivalent matcher.
        let text = format!("<!ELEMENT root {}>", wrap_group(&cp));
        let dtd = parse_dtd(&text).unwrap();
        let reparsed = &dtd.element("root").unwrap().content;
        let m1 = ContentMatcher::from_particle(&cp);
        let m2 = match reparsed {
            xmlord_dtd::ContentSpec::Children(cp2) => ContentMatcher::from_particle(cp2),
            other => panic!("unexpected spec {other:?}"),
        };
        // Compare on a fixed battery of inputs.
        for input in battery() {
            assert_eq!(
                m1.matches(&input),
                m2.matches(&input),
                "case {case} model: {text} input: {input:?}"
            );
        }
    }
}

/// Content specs must be parenthesized groups at the top level.
fn wrap_group(cp: &ContentParticle) -> String {
    match cp {
        ContentParticle::Name(..) => format!("({cp})"),
        _ => cp.to_string(),
    }
}

fn battery() -> Vec<Vec<&'static str>> {
    vec![
        vec![],
        vec!["a"],
        vec!["b"],
        vec!["c"],
        vec!["a", "a"],
        vec!["a", "b"],
        vec!["b", "a"],
        vec!["a", "b", "c"],
        vec!["c", "b", "a"],
        vec!["a", "a", "b", "b"],
        vec!["a", "b", "a", "b"],
        vec!["a", "b", "c", "a", "b", "c"],
    ]
}

//! # xmlord-prng — deterministic pseudo-random numbers, no dependencies
//!
//! The workload generators and the randomized differential tests need a
//! *seeded, reproducible* random source; they do not need cryptographic
//! quality or the full `rand` API. This crate is a self-contained stand-in
//! (the build environment has no access to crates.io) built on SplitMix64,
//! which passes BigCrush and is the canonical seeding generator for the
//! xoshiro family.
//!
//! Identical seeds produce identical sequences on every platform and every
//! build — the property the E6–E13 experiments and all property tests rely
//! on.

/// A SplitMix64 generator. Construct with [`Prng::seed_from_u64`].
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Seed the generator. Mirrors `rand::SeedableRng::seed_from_u64`.
    pub fn seed_from_u64(seed: u64) -> Prng {
        Prng { state: seed }
    }

    /// Next raw 64-bit output (Vigna's SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[range.start, range.end)`. Mirrors
    /// `rand::Rng::gen_range` for the integer ranges the generators use.
    /// Panics on an empty range, like `rand` does.
    pub fn gen_range<T: RangeValue>(&mut self, range: std::ops::Range<T>) -> T {
        let lo = range.start.to_i128();
        let hi = range.end.to_i128();
        assert!(lo < hi, "gen_range called with empty range");
        let span = (hi - lo) as u128;
        // Multiply-shift rejection-free mapping is overkill here; modulo
        // bias is negligible for the tiny spans the generators draw from,
        // but widen to u128 anyway so it is exact for every span.
        let draw = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span;
        T::from_i128(lo + draw as i128)
    }

    /// `true` with probability `p` (0.0..=1.0).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range(0..items.len())]
    }
}

/// Integer types [`Prng::gen_range`] can draw.
pub trait RangeValue: Copy {
    fn to_i128(self) -> i128;
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_range_value!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Prng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..20);
            assert!((-5..20).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_the_whole_span() {
        let mut rng = Prng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probability_is_roughly_honoured() {
        let mut rng = Prng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits}");
    }
}

//! A document-centric product catalog: exercises the features whose loss
//! the paper's §6.1/§7 discuss — comments, processing instructions, CDATA,
//! entity references and mixed content. Used by the round-trip fidelity
//! experiment (E9).

use xmlord_prng::Prng;

/// The catalog DTD. `Blurb` is mixed content; `vendor` is an entity.
pub const CATALOG_DTD: &str = r#"<!ELEMENT Catalog (Title,Product*)>
<!ELEMENT Product (Name,Price,Blurb?)>
<!ATTLIST Product Sku CDATA #REQUIRED Family CDATA #IMPLIED>
<!ELEMENT Name (#PCDATA)>
<!ELEMENT Price (#PCDATA)>
<!ELEMENT Blurb (#PCDATA|Em)*>
<!ELEMENT Em (#PCDATA)>
<!ELEMENT Title (#PCDATA)>
<!ENTITY vendor "ACME Corp.">
<!ENTITY tm "(TM)">"#;

/// Scale/feature knobs for a generated catalog document.
#[derive(Debug, Clone, Copy)]
pub struct CatalogConfig {
    pub products: usize,
    /// Sprinkle comments between products.
    pub with_comments: bool,
    /// Sprinkle processing instructions.
    pub with_pis: bool,
    /// Use CDATA sections in blurbs.
    pub with_cdata: bool,
    /// Use `&vendor;` entity references in text.
    pub with_entities: bool,
    pub seed: u64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            products: 5,
            with_comments: true,
            with_pis: true,
            with_cdata: true,
            with_entities: true,
            seed: 7,
        }
    }
}

const PRODUCT_NAMES: &[&str] =
    &["Anvil", "Rocket Skates", "Giant Magnet", "Tornado Seeds", "Earthquake Pills", "Iron Bird Seed"];

/// Generate a catalog document with the configured document-centric
/// features.
pub fn catalog_xml(config: &CatalogConfig) -> String {
    let mut rng = Prng::seed_from_u64(config.seed);
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    if config.with_pis {
        out.push_str("<?xml-stylesheet type=\"text/css\" href=\"catalog.css\"?>");
    }
    out.push_str("<Catalog>");
    if config.with_entities {
        out.push_str("<Title>Products of &vendor;</Title>");
    } else {
        out.push_str("<Title>Product Catalog</Title>");
    }
    for i in 0..config.products {
        if config.with_comments && i % 2 == 0 {
            out.push_str(&format!("<!-- product block {i} -->"));
        }
        let name = PRODUCT_NAMES[rng.gen_range(0..PRODUCT_NAMES.len())];
        let price = rng.gen_range(5..500);
        out.push_str(&format!(
            "<Product Sku=\"SKU-{i:04}\" Family=\"F{}\"><Name>{name}{}</Name><Price>{price}.99</Price>",
            rng.gen_range(1..4),
            if config.with_entities { "&tm;" } else { "" },
        ));
        match (config.with_cdata, i % 3) {
            (true, 0) => out.push_str(
                "<Blurb><![CDATA[Use only as directed & never near cliffs]]></Blurb>",
            ),
            (_, 1) if config.with_entities => out.push_str(
                "<Blurb>Our <Em>finest</Em> quality, straight from &vendor; labs</Blurb>",
            ),
            (_, 1) => out.push_str(
                "<Blurb>Our <Em>finest</Em> quality, straight from the labs</Blurb>",
            ),
            _ => {}
        }
        out.push_str("</Product>");
    }
    out.push_str("</Catalog>");
    if config.with_comments {
        out.push_str("<!-- end of catalog -->");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlord_dtd::parse_dtd;
    use xmlord_xml::NodeKind;

    #[test]
    fn generated_catalogs_are_valid() {
        let dtd = parse_dtd(CATALOG_DTD).unwrap();
        let xml = catalog_xml(&CatalogConfig::default());
        let doc = xmlord_xml::parse_with_catalog(&xml, dtd.entity_catalog()).unwrap();
        let report = xmlord_dtd::validate(&doc, &dtd);
        assert!(report.is_valid(), "{:?}", report.errors);
    }

    #[test]
    fn document_centric_features_are_present() {
        let dtd = parse_dtd(CATALOG_DTD).unwrap();
        let xml = catalog_xml(&CatalogConfig { products: 6, ..Default::default() });
        let doc = xmlord_xml::parse_with_catalog(&xml, dtd.entity_catalog()).unwrap();
        assert!(doc.count_nodes(|k| matches!(k, NodeKind::Comment(_))) >= 3);
        assert!(doc.count_nodes(|k| matches!(k, NodeKind::CData(_))) >= 1);
        assert!(!doc.prolog_misc.is_empty()); // the stylesheet PI
        // Entity expanded at occurrence (§6.1).
        let root = doc.root_element().unwrap();
        let title = doc.first_child_named(root, "Title").unwrap();
        assert_eq!(doc.text_content(title), "Products of ACME Corp.");
    }

    #[test]
    fn features_can_be_disabled() {
        let xml = catalog_xml(&CatalogConfig {
            with_comments: false,
            with_pis: false,
            with_cdata: false,
            with_entities: false,
            ..Default::default()
        });
        assert!(!xml.contains("<!--"));
        assert!(!xml.contains("CDATA"));
        assert!(!xml.contains("&vendor;"));
    }

    #[test]
    fn deterministic() {
        let c = CatalogConfig::default();
        assert_eq!(catalog_xml(&c), catalog_xml(&c));
    }
}

//! Scaled instances of the paper's Appendix A university document.

use xmlord_prng::Prng;

/// The Appendix A DTD, verbatim (with the `CreditPts` declaration the
/// appendix implies).
pub const UNIVERSITY_DTD: &str = r#"<!ELEMENT University (StudyCourse,Student*)>
<!ELEMENT Student (LName,FName,Course*)>
<!ATTLIST Student StudNr CDATA #REQUIRED>
<!ELEMENT Course (Name,Professor*,CreditPts?)>
<!ELEMENT Professor (PName,Subject+,Dept)>
<!ENTITY cs "Computer Science">
<!ELEMENT LName (#PCDATA)>
<!ELEMENT FName (#PCDATA)>
<!ELEMENT Name (#PCDATA)>
<!ELEMENT PName (#PCDATA)>
<!ELEMENT Subject (#PCDATA)>
<!ELEMENT Dept (#PCDATA)>
<!ELEMENT StudyCourse (#PCDATA)>
<!ELEMENT CreditPts (#PCDATA)>"#;

/// Scale knobs for a generated university document.
#[derive(Debug, Clone, Copy)]
pub struct UniversityConfig {
    pub students: usize,
    pub courses_per_student: usize,
    pub professors_per_course: usize,
    pub subjects_per_professor: usize,
    pub seed: u64,
}

impl Default for UniversityConfig {
    fn default() -> Self {
        UniversityConfig {
            students: 10,
            courses_per_student: 2,
            professors_per_course: 1,
            subjects_per_professor: 2,
            seed: 2002,
        }
    }
}

impl UniversityConfig {
    /// Total element count of a generated document (for reporting).
    pub fn element_count(&self) -> usize {
        let professors = self.students * self.courses_per_student * self.professors_per_course;
        let subjects = professors * self.subjects_per_professor;
        // University + StudyCourse + per-student (1 + LName + FName)
        // + per-course (1 + Name + CreditPts) + per-professor (1 + PName + Dept)
        // + subjects
        2 + self.students * 3
            + self.students * self.courses_per_student * 3
            + professors * 3
            + subjects
    }
}

const LAST_NAMES: &[&str] = &[
    "Conrad", "Meier", "Kudrass", "Jaeger", "Schmidt", "Fischer", "Weber", "Wagner", "Becker",
    "Hoffmann", "Koch", "Richter",
];
const FIRST_NAMES: &[&str] = &[
    "Matthias", "Ralf", "Thomas", "Anna", "Julia", "Stefan", "Petra", "Karin", "Jens", "Uwe",
];
const COURSE_NAMES: &[&str] = &[
    "Database Systems II", "CAD Intro", "Operating Systems", "Compiler Construction",
    "Information Retrieval", "Computer Graphics", "Software Engineering", "Distributed Systems",
];
const SUBJECTS: &[&str] = &[
    "Database Systems", "Operat. Systems", "CAD", "CAE", "Networks", "Algorithms",
    "Formal Methods", "Information Systems",
];
const DEPTS: &[&str] = &["Computer Science", "Mathematics", "Electrical Engineering"];

/// The DTD text (constant; provided as a function for API symmetry).
pub fn university_dtd() -> &'static str {
    UNIVERSITY_DTD
}

/// Generate a valid university document with the configured sizes.
pub fn university_xml(config: &UniversityConfig) -> String {
    let mut rng = Prng::seed_from_u64(config.seed);
    let mut out = String::with_capacity(config.element_count() * 24);
    out.push_str("<University><StudyCourse>Computer Science</StudyCourse>");
    for s in 0..config.students {
        let lname = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
        let fname = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
        out.push_str(&format!(
            "<Student StudNr=\"{:05}\"><LName>{lname}</LName><FName>{fname}</FName>",
            s + 1
        ));
        for _ in 0..config.courses_per_student {
            let course = COURSE_NAMES[rng.gen_range(0..COURSE_NAMES.len())];
            out.push_str(&format!("<Course><Name>{course}</Name>"));
            for _ in 0..config.professors_per_course {
                let pname = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
                let dept = DEPTS[rng.gen_range(0..DEPTS.len())];
                out.push_str(&format!("<Professor><PName>{pname}</PName>"));
                for _ in 0..config.subjects_per_professor.max(1) {
                    let subject = SUBJECTS[rng.gen_range(0..SUBJECTS.len())];
                    out.push_str(&format!("<Subject>{subject}</Subject>"));
                }
                out.push_str(&format!("<Dept>{dept}</Dept></Professor>"));
            }
            out.push_str(&format!("<CreditPts>{}</CreditPts></Course>", rng.gen_range(2..8)));
        }
        out.push_str("</Student>");
    }
    out.push_str("</University>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlord_dtd::{parse_dtd, validate};

    #[test]
    fn generated_documents_are_valid() {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        for students in [0, 1, 5, 25] {
            let config = UniversityConfig { students, ..Default::default() };
            let xml = university_xml(&config);
            let doc = xmlord_xml::parse(&xml).unwrap();
            let report = validate(&doc, &dtd);
            assert!(report.is_valid(), "students={students}: {:?}", report.errors);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = UniversityConfig::default();
        assert_eq!(university_xml(&config), university_xml(&config));
        let other = UniversityConfig { seed: 1, ..Default::default() };
        assert_ne!(university_xml(&config), university_xml(&other));
    }

    #[test]
    fn element_count_matches_actual() {
        let config = UniversityConfig { students: 3, ..Default::default() };
        let xml = university_xml(&config);
        let actual = xml.matches("</").count() + xml.matches("/>").count();
        assert_eq!(actual, config.element_count());
    }

    #[test]
    fn scaling_grows_linearly() {
        let small = UniversityConfig { students: 10, ..Default::default() };
        let large = UniversityConfig { students: 100, ..Default::default() };
        let ratio = university_xml(&large).len() as f64 / university_xml(&small).len() as f64;
        assert!(ratio > 8.0 && ratio < 12.0, "{ratio}");
    }
}

//! # xmlord-workload — deterministic synthetic workload generators
//!
//! Substrate **S6**: the data side of the experiment harness. The paper's
//! only dataset is the Appendix A university document, so the scaling
//! experiments (E6–E8, E10, E13) use parameterized generators that produce
//! arbitrarily large instances of the same *shape*:
//!
//! * [`university`] — the Appendix A schema, scaled by student/course/
//!   professor counts,
//! * [`catalog`] — a document-centric product catalog with comments,
//!   processing instructions, CDATA, entities and mixed content (for the
//!   round-trip fidelity experiment E9),
//! * [`dtdgen`] — random DTDs of configurable depth/fanout plus matching
//!   valid documents (for the schema-generation scaling experiment E13 and
//!   property tests).
//!
//! Everything is seeded (`xmlord_prng::Prng`) — identical inputs produce
//! identical documents, as benchmarks require.

pub mod catalog;
pub mod dtdgen;
pub mod university;

pub use university::{university_dtd, university_xml, UniversityConfig};

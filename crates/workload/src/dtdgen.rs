//! Random DTD + document generation (experiment E13 and property tests).
//!
//! Generates element hierarchies of configurable depth and fanout, with a
//! seeded mix of occurrence operators and attributes, plus *valid* sample
//! documents for them. The generated DTDs are trees (no recursion, no
//! sharing) so every mapping strategy accepts them.

use xmlord_prng::Prng;

/// Shape knobs for a generated DTD.
#[derive(Debug, Clone, Copy)]
pub struct DtdConfig {
    /// Nesting depth of complex elements below the root.
    pub depth: usize,
    /// Complex children per complex element.
    pub fanout: usize,
    /// Simple (#PCDATA) children per complex element.
    pub leaves: usize,
    /// Probability (0..=100) that a child is `*`-starred.
    pub star_percent: u32,
    /// Probability (0..=100) that an element gets an attribute.
    pub attr_percent: u32,
    pub seed: u64,
}

impl Default for DtdConfig {
    fn default() -> Self {
        DtdConfig { depth: 3, fanout: 2, leaves: 2, star_percent: 40, attr_percent: 30, seed: 42 }
    }
}

/// A generated DTD plus everything needed to produce documents for it.
#[derive(Debug, Clone)]
pub struct GeneratedDtd {
    pub root: String,
    pub dtd_text: String,
    elements: Vec<GenElement>,
}

#[derive(Debug, Clone)]
struct GenElement {
    name: String,
    /// (child name, starred) — complex then simple children.
    children: Vec<(String, bool)>,
    simple: bool,
    has_attr: bool,
}

/// Generate a DTD with the given shape.
pub fn generate_dtd(config: &DtdConfig) -> GeneratedDtd {
    let mut rng = Prng::seed_from_u64(config.seed);
    let mut elements: Vec<GenElement> = Vec::new();
    let mut counter = 0usize;
    let root = build_element(config, &mut rng, config.depth, &mut elements, &mut counter);
    let mut dtd_text = String::new();
    for element in &elements {
        if element.simple {
            dtd_text.push_str(&format!("<!ELEMENT {} (#PCDATA)>\n", element.name));
        } else {
            let model: Vec<String> = element
                .children
                .iter()
                .map(|(name, starred)| {
                    if *starred {
                        format!("{name}*")
                    } else {
                        name.clone()
                    }
                })
                .collect();
            dtd_text.push_str(&format!("<!ELEMENT {} ({})>\n", element.name, model.join(",")));
        }
        if element.has_attr {
            dtd_text.push_str(&format!(
                "<!ATTLIST {} id{} CDATA #IMPLIED>\n",
                element.name, element.name
            ));
        }
    }
    GeneratedDtd { root, dtd_text, elements }
}

fn build_element(
    config: &DtdConfig,
    rng: &mut Prng,
    depth: usize,
    elements: &mut Vec<GenElement>,
    counter: &mut usize,
) -> String {
    *counter += 1;
    let name = format!("E{}", *counter);
    let simple = depth == 0;
    let mut children = Vec::new();
    if !simple {
        for _ in 0..config.fanout {
            let child = build_element(config, rng, depth - 1, elements, counter);
            children.push((child, rng.gen_range(0..100) < config.star_percent));
        }
        for _ in 0..config.leaves {
            let leaf = build_element(config, rng, 0, elements, counter);
            children.push((leaf, rng.gen_range(0..100) < config.star_percent));
        }
    }
    let has_attr = rng.gen_range(0..100) < config.attr_percent;
    elements.push(GenElement { name: name.clone(), children, simple, has_attr });
    name
}

impl GeneratedDtd {
    /// Number of declared elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Generate a valid document; `repeat` is the instance count used for
    /// every `*`-starred child.
    pub fn document(&self, repeat: usize, seed: u64) -> String {
        let mut rng = Prng::seed_from_u64(seed);
        let mut out = String::new();
        self.write_element(&self.root, repeat, &mut rng, &mut out);
        out
    }

    fn write_element(&self, name: &str, repeat: usize, rng: &mut Prng, out: &mut String) {
        let element = self
            .elements
            .iter()
            .find(|e| e.name == name)
            .expect("generated elements are closed under children");
        out.push('<');
        out.push_str(name);
        if element.has_attr {
            out.push_str(&format!(" id{}=\"v{}\"", name, rng.gen_range(0..1000)));
        }
        out.push('>');
        if element.simple {
            out.push_str(&format!("text{}", rng.gen_range(0..1000)));
        } else {
            for (child, starred) in &element.children {
                let n = if *starred { repeat } else { 1 };
                for _ in 0..n {
                    self.write_element(child, repeat, rng, out);
                }
            }
        }
        out.push_str(&format!("</{name}>"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlord_dtd::{parse_dtd, validate};

    #[test]
    fn generated_dtds_parse_and_documents_validate() {
        for seed in 0..5 {
            let config = DtdConfig { seed, ..Default::default() };
            let generated = generate_dtd(&config);
            let dtd = parse_dtd(&generated.dtd_text)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", generated.dtd_text));
            for repeat in [0, 1, 3] {
                let xml = generated.document(repeat, seed);
                let doc = xmlord_xml::parse(&xml).unwrap();
                let report = validate(&doc, &dtd);
                assert!(report.is_valid(), "seed {seed} repeat {repeat}: {:?}", report.errors);
            }
        }
    }

    #[test]
    fn depth_and_fanout_control_size() {
        let small = generate_dtd(&DtdConfig { depth: 2, fanout: 2, ..Default::default() });
        let large = generate_dtd(&DtdConfig { depth: 4, fanout: 3, ..Default::default() });
        assert!(large.element_count() > small.element_count() * 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_dtd(&DtdConfig::default());
        let b = generate_dtd(&DtdConfig::default());
        assert_eq!(a.dtd_text, b.dtd_text);
        assert_eq!(a.document(2, 9), b.document(2, 9));
    }

    #[test]
    fn star_zero_means_all_mandatory() {
        let generated = generate_dtd(&DtdConfig { star_percent: 0, ..Default::default() });
        assert!(!generated.dtd_text.contains('*'));
    }
}

//! The attribute-table mapping of Florescu & Kossmann \[5\].
//!
//! Instead of one universal edge table, there is one table *per element or
//! attribute name* ("attribute tables" in the paper's §1):
//!
//! ```sql
//! CREATE TABLE AttStudent (Source NUMBER, Ordinal NUMBER, Target NUMBER, Val VARCHAR(4000));
//! ```
//!
//! Element rows carry `Target` (the child node id) and a NULL `Val`; the
//! text content of a node is stored in the element's own table as a row
//! with NULL `Target`. Attribute values live in `Att…` tables named after
//! the attribute with an `A_` name prefix. Queries join the per-name tables
//! — fewer rows per table than the edge approach, but still one join per
//! path step.

use std::collections::BTreeSet;

use xmlord_dtd::ast::Dtd;
use xmlord_dtd::graph::ElementGraph;
use xmlord_xml::{Document, NodeId, NodeKind};

/// Table name for an element name.
pub fn element_table(name: &str) -> String {
    format!("Att{}", sanitize(name))
}

/// Table name for an attribute name.
pub fn attribute_table(name: &str) -> String {
    format!("AttA_{}", sanitize(name))
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() || c == '_' { c } else { '_' })
        .collect()
}

/// Elements reachable from `root` in the DTD's element graph — the set the
/// DDL creates tables for and [`crate::retrieve`] reads back.
pub fn reachable_elements(dtd: &Dtd, root: &str) -> BTreeSet<String> {
    let graph = ElementGraph::build(dtd);
    let mut reachable: BTreeSet<String> = BTreeSet::new();
    let mut stack = vec![root.to_string()];
    while let Some(cur) = stack.pop() {
        if reachable.insert(cur.clone()) {
            for child in graph.children_of(&cur) {
                stack.push(child.clone());
            }
        }
    }
    reachable
}

/// DDL: one table per element reachable from `root` plus one per declared
/// attribute name.
pub fn ddl(dtd: &Dtd, root: &str) -> String {
    let reachable = reachable_elements(dtd, root);
    let mut out = String::new();
    for element in &reachable {
        out.push_str(&format!(
            "CREATE TABLE {} (\n    Source NUMBER,\n    Ordinal NUMBER,\n    Target NUMBER,\n    Val VARCHAR(4000)\n);\n",
            element_table(element)
        ));
    }
    let mut attr_names: BTreeSet<String> = BTreeSet::new();
    for element in &reachable {
        for def in dtd.attributes_of(element) {
            attr_names.insert(def.name.clone());
        }
    }
    for attr in attr_names {
        out.push_str(&format!(
            "CREATE TABLE {} (\n    Source NUMBER,\n    Ordinal NUMBER,\n    Val VARCHAR(4000)\n);\n",
            attribute_table(&attr)
        ));
    }
    out
}

/// Shred a document into the per-name tables.
pub fn load(doc: &Document) -> Vec<String> {
    let mut out = Vec::new();
    let mut next = 0u64;
    if let Some(root) = doc.root_element() {
        shred(doc, root, 0, 0, &mut next, &mut out);
    }
    out
}

fn shred(
    doc: &Document,
    node: NodeId,
    parent: u64,
    ordinal: usize,
    next: &mut u64,
    out: &mut Vec<String>,
) {
    *next += 1;
    let my_id = *next;
    let name = doc.name(node).as_raw();
    // Element edge row.
    out.push(format!(
        "INSERT INTO {} VALUES ({parent}, {ordinal}, {my_id}, NULL)",
        crate::intern::element_table(&name)
    ));
    // Text content row (NULL Target).
    let text: String = doc
        .children(node)
        .iter()
        .filter_map(|c| match doc.kind(*c) {
            NodeKind::Text(t) | NodeKind::CData(t) => Some(t.as_str()),
            _ => None,
        })
        .collect();
    if !text.trim().is_empty() {
        out.push(format!(
            "INSERT INTO {} VALUES ({my_id}, 0, NULL, {})",
            crate::intern::element_table(&name),
            sql_str(&text)
        ));
    }
    // Attributes.
    for (i, attr) in doc.attributes(node).iter().enumerate() {
        out.push(format!(
            "INSERT INTO {} VALUES ({my_id}, {i}, {})",
            crate::intern::attribute_table(&attr.name.as_raw()),
            sql_str(&attr.value)
        ));
    }
    // Child elements.
    for (ord, child) in doc.child_elements(node).into_iter().enumerate() {
        shred(doc, child, my_id, ord, next, out);
    }
}

/// Path query: join the per-name tables along the path; predicate paths
/// share the longest common prefix (correlation as in the edge baseline).
pub fn path_query(root: &str, steps: &[&str], predicate: Option<(&[&str], &str)>) -> String {
    let mut b = Builder::default();
    let root_alias = b.step("0", root);
    match predicate {
        None => {
            let expr = b.descend(&root_alias, steps);
            b.render(&expr)
        }
        Some((pred_steps, value)) => {
            let shared = steps
                .iter()
                .zip(pred_steps.iter())
                .take_while(|(a, b)| a == b)
                .count()
                .min(steps.len().saturating_sub(1))
                .min(pred_steps.len().saturating_sub(1));
            let mut prev = root_alias;
            for step in &steps[..shared] {
                prev = b.step(&format!("{prev}.Target"), step);
            }
            let expr = b.descend(&prev, &steps[shared..]);
            let pred_expr = b.descend(&prev, &pred_steps[shared..]);
            b.wheres.push(format!("{pred_expr} = {}", sql_str(value)));
            b.render(&expr)
        }
    }
}

#[derive(Default)]
struct Builder {
    from: Vec<String>,
    wheres: Vec<String>,
    next: usize,
}

impl Builder {
    /// Join the element table of `name` below source expression `source`.
    fn step(&mut self, source: &str, name: &str) -> String {
        let a = format!("t{}", self.next);
        self.next += 1;
        self.from.push(format!("{} {a}", element_table(name)));
        self.wheres.push(format!("{a}.Source = {source}"));
        self.wheres.push(format!("{a}.Target IS NOT NULL"));
        a
    }

    fn descend(&mut self, start: &str, steps: &[&str]) -> String {
        let mut prev = start.to_string();
        for (i, step) in steps.iter().enumerate() {
            if let Some(attr) = step.strip_prefix('@') {
                assert_eq!(i, steps.len() - 1, "attribute steps must be final");
                let a = format!("t{}", self.next);
                self.next += 1;
                self.from.push(format!("{} {a}", attribute_table(attr)));
                self.wheres.push(format!("{a}.Source = {prev}.Target"));
                return format!("{a}.Val");
            }
            prev = self.step(&format!("{prev}.Target"), step);
        }
        // Terminal text row: same element table, NULL Target.
        let last = steps.last().expect("non-empty steps");
        let a = format!("t{}", self.next);
        self.next += 1;
        self.from.push(format!("{} {a}", element_table(last)));
        self.wheres.push(format!("{a}.Source = {prev}.Target"));
        self.wheres.push(format!("{a}.Target IS NULL"));
        format!("{a}.Val")
    }

    fn render(&self, expr: &str) -> String {
        format!(
            "SELECT DISTINCT {expr} FROM {} WHERE {}",
            self.from.join(", "),
            self.wheres.join(" AND ")
        )
    }
}

fn sql_str(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlord_dtd::parse_dtd;
    use xmlord_ordb::{Database, DbMode, Value};

    const DTD: &str = r#"
        <!ELEMENT a (p*)>
        <!ELEMENT p (name,age?)>
        <!ATTLIST p kind CDATA #IMPLIED>
        <!ELEMENT name (#PCDATA)> <!ELEMENT age (#PCDATA)>"#;

    fn setup(xml: &str) -> (Database, usize) {
        let dtd = parse_dtd(DTD).unwrap();
        let doc = xmlord_xml::parse(xml).unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&ddl(&dtd, "a")).unwrap();
        let stmts = load(&doc);
        let n = stmts.len();
        for s in &stmts {
            db.execute(s).unwrap_or_else(|e| panic!("{e}\n{s}"));
        }
        (db, n)
    }

    #[test]
    fn one_table_per_name_is_created() {
        let dtd = parse_dtd(DTD).unwrap();
        let script = ddl(&dtd, "a");
        assert!(script.contains("CREATE TABLE Attp "));
        assert!(script.contains("CREATE TABLE Attname "));
        assert!(script.contains("CREATE TABLE AttA_kind "));
    }

    #[test]
    fn rows_distribute_across_name_tables() {
        let (db, statements) = setup(
            r#"<a><p kind="x"><name>n1</name><age>7</age></p><p><name>n2</name></p></a>"#,
        );
        assert!(statements >= 8);
        assert!(db.storage().row_count(&xmlord_ordb::ident::Ident::internal("Attp")) >= 2);
    }

    #[test]
    fn path_and_predicate_queries_work() {
        let (mut db, _) = setup(
            r#"<a><p kind="x"><name>n1</name><age>7</age></p><p><name>n2</name><age>9</age></p></a>"#,
        );
        let all = path_query("a", &["p", "name"], None);
        assert_eq!(db.query(&all).unwrap().rows.len(), 2);
        let filtered = path_query("a", &["p", "name"], Some((&["p", "age"], "9")));
        let rows = db.query(&filtered).unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("n2")]], "{filtered}");
        let attr = path_query("a", &["p", "@kind"], None);
        assert_eq!(db.query_scalar(&attr).unwrap(), Value::str("x"));
    }
}

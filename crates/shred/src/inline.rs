//! DTD-aware hybrid inlining, after Shanmugasundaram et al. \[9\].
//!
//! The third storage family the paper's §1 references ("Relational
//! Databases for Querying XML Documents: Limitations and Opportunities").
//! Elements that can occur at most once are *inlined* into their nearest
//! relation ancestor as flat columns; elements that are set-valued anywhere
//! or recursive get their own relations with a `ParentID` foreign key.
//! Compared to the edge/attribute tables, queries need joins only at
//! relation boundaries — but the schema is DTD-specific and every relation
//! boundary still costs the joins §4.1's dot notation avoids.

use std::collections::{BTreeMap, BTreeSet};

use xmlord_dtd::ast::{ContentParticle, ContentSpec, Dtd};
use xmlord_dtd::graph::ElementGraph;
use xmlord_ordb::DbError;
use xmlord_xml::{Document, NodeId};

/// One column of an inlined relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineColumn {
    pub name: String,
    /// Element path below the relation element (empty = the element itself).
    pub path: Vec<String>,
    /// Set when the column stores an XML attribute rather than text.
    pub attr: Option<String>,
}

/// One relation of the inlined schema.
#[derive(Debug, Clone)]
pub struct InlineRelation {
    pub element: String,
    pub table: String,
    pub columns: Vec<InlineColumn>,
}

/// The complete inlined schema for one DTD + root.
#[derive(Debug, Clone)]
pub struct InlineSchema {
    pub root: String,
    pub relations: BTreeMap<String, InlineRelation>,
}

impl InlineSchema {
    /// Compute the inlining: relations for the root, for elements that are
    /// set-valued under any parent, and for recursive elements.
    pub fn build(dtd: &Dtd, root: &str) -> InlineSchema {
        let graph = ElementGraph::build(dtd);
        let mut reachable: BTreeSet<String> = BTreeSet::new();
        let mut stack = vec![root.to_string()];
        while let Some(cur) = stack.pop() {
            if reachable.insert(cur.clone()) {
                for child in graph.children_of(&cur) {
                    stack.push(child.clone());
                }
            }
        }
        let mut relation_elements: BTreeSet<String> = BTreeSet::new();
        relation_elements.insert(root.to_string());
        for element in &reachable {
            if graph.is_recursive(element) {
                relation_elements.insert(element.clone());
            }
            if let Some(decl) = dtd.element(element) {
                for (child, set_valued) in child_multiplicity(&decl.content) {
                    if set_valued && reachable.contains(&child) {
                        relation_elements.insert(child);
                    }
                }
            }
        }

        let mut relations = BTreeMap::new();
        for element in &relation_elements {
            if !reachable.contains(element) {
                continue;
            }
            let mut columns = Vec::new();
            let mut seen = BTreeSet::new();
            collect_columns(
                dtd,
                element,
                &relation_elements,
                &mut Vec::new(),
                &mut columns,
                &mut seen,
            );
            relations.insert(
                element.clone(),
                InlineRelation {
                    element: element.clone(),
                    table: shorten(&format!("Inl{}", sanitize(element))),
                    columns,
                },
            );
        }
        InlineSchema { root: root.to_string(), relations }
    }

    pub fn relation(&self, element: &str) -> Option<&InlineRelation> {
        self.relations.get(element)
    }

    /// DDL for all relations.
    pub fn ddl(&self) -> String {
        let mut out = String::new();
        for relation in self.relations.values() {
            let mut cols =
                vec!["    ID NUMBER PRIMARY KEY".to_string(), "    ParentID NUMBER".to_string()];
            for column in &relation.columns {
                cols.push(format!("    {} VARCHAR(4000)", column.name));
            }
            out.push_str(&format!(
                "CREATE TABLE {} (\n{}\n);\n",
                relation.table,
                cols.join(",\n")
            ));
        }
        out
    }

    /// Shred a document into INSERTs.
    pub fn load(&self, doc: &Document) -> Result<Vec<String>, DbError> {
        let root = doc
            .root_element()
            .ok_or_else(|| DbError::Execution("document has no root".into()))?;
        let mut out = Vec::new();
        let mut next = 0u64;
        self.load_relation(doc, root, None, &mut next, &mut out)?;
        Ok(out)
    }

    fn load_relation(
        &self,
        doc: &Document,
        node: NodeId,
        parent_id: Option<u64>,
        next: &mut u64,
        out: &mut Vec<String>,
    ) -> Result<(), DbError> {
        let element = doc.name(node).as_raw();
        let relation = self.relations.get(&element).ok_or_else(|| {
            DbError::Execution(format!("<{element}> has no inlined relation"))
        })?;
        *next += 1;
        let my_id = *next;
        let mut values = vec![
            my_id.to_string(),
            parent_id.map(|p| p.to_string()).unwrap_or_else(|| "NULL".into()),
        ];
        for column in &relation.columns {
            let value = resolve_column(doc, node, column);
            values.push(value.map(|v| sql_str(&v)).unwrap_or_else(|| "NULL".into()));
        }
        out.push(format!("INSERT INTO {} VALUES ({})", relation.table, values.join(", ")));
        // Recurse into nested relation elements (at any inlined depth).
        self.descend_for_relations(doc, node, my_id, next, out)?;
        Ok(())
    }

    fn descend_for_relations(
        &self,
        doc: &Document,
        node: NodeId,
        parent_row: u64,
        next: &mut u64,
        out: &mut Vec<String>,
    ) -> Result<(), DbError> {
        for child in doc.child_elements(node) {
            let child_name = doc.name(child).as_raw();
            if self.relations.contains_key(&child_name) {
                self.load_relation(doc, child, Some(parent_row), next, out)?;
            } else {
                self.descend_for_relations(doc, child, parent_row, next, out)?;
            }
        }
        Ok(())
    }

    /// Translate a path query with optional predicate.
    pub fn path_query(
        &self,
        steps: &[&str],
        predicate: Option<(&[&str], &str)>,
    ) -> Result<String, DbError> {
        let mut b = QueryBuilder { schema: self, from: Vec::new(), wheres: Vec::new(), next: 0 };
        let root_alias = b.join_relation(&self.root, None)?;
        let start = Cursor { alias: root_alias, element: self.root.clone(), path: Vec::new() };
        match predicate {
            None => {
                let expr = b.descend(start, steps)?;
                Ok(b.render(&expr))
            }
            Some((pred_steps, value)) => {
                let shared = steps
                    .iter()
                    .zip(pred_steps.iter())
                    .take_while(|(a, b)| a == b)
                    .count()
                    .min(steps.len().saturating_sub(1))
                    .min(pred_steps.len().saturating_sub(1));
                let mut cursor = start;
                for step in &steps[..shared] {
                    cursor = b.advance(cursor, step)?;
                }
                let expr = b.descend(cursor.clone(), &steps[shared..])?;
                let pred_expr = b.descend(cursor, &pred_steps[shared..])?;
                b.wheres.push(format!("{pred_expr} = {}", sql_str(value)));
                Ok(b.render(&expr))
            }
        }
    }

    /// Relational joins a query over `steps` needs (relation boundaries).
    pub fn join_count(&self, steps: &[&str]) -> usize {
        steps.iter().filter(|s| self.relations.contains_key(**s)).count()
    }
}

/// Position during query building: a table alias plus the inline path
/// walked so far inside that relation.
#[derive(Debug, Clone)]
struct Cursor {
    alias: String,
    element: String,
    path: Vec<String>,
}

struct QueryBuilder<'a> {
    schema: &'a InlineSchema,
    from: Vec<String>,
    wheres: Vec<String>,
    next: usize,
}

impl<'a> QueryBuilder<'a> {
    fn join_relation(&mut self, element: &str, parent: Option<&str>) -> Result<String, DbError> {
        let relation = self.schema.relations.get(element).ok_or_else(|| {
            DbError::Execution(format!("<{element}> has no inlined relation"))
        })?;
        let alias = format!("t{}", self.next);
        self.next += 1;
        self.from.push(format!("{} {alias}", relation.table));
        if let Some(parent_alias) = parent {
            self.wheres.push(format!("{alias}.ParentID = {parent_alias}.ID"));
        }
        Ok(alias)
    }

    fn advance(&mut self, cursor: Cursor, step: &str) -> Result<Cursor, DbError> {
        if self.schema.relations.contains_key(step) {
            let alias = self.join_relation(step, Some(&cursor.alias))?;
            Ok(Cursor { alias, element: step.to_string(), path: Vec::new() })
        } else {
            let mut path = cursor.path;
            path.push(step.to_string());
            Ok(Cursor { alias: cursor.alias, element: cursor.element, path })
        }
    }

    fn descend(&mut self, cursor: Cursor, steps: &[&str]) -> Result<String, DbError> {
        let mut cursor = cursor;
        for (i, step) in steps.iter().enumerate() {
            if let Some(attr) = step.strip_prefix('@') {
                if i != steps.len() - 1 {
                    return Err(DbError::Execution("attribute steps must be final".into()));
                }
                let relation = self.schema.relations.get(&cursor.element).expect("joined");
                let column = relation
                    .columns
                    .iter()
                    .find(|c| c.path == cursor.path && c.attr.as_deref() == Some(attr))
                    .ok_or_else(|| {
                        DbError::UnknownColumn(format!("@{attr} below {}", cursor.element))
                    })?;
                return Ok(format!("{}.{}", cursor.alias, column.name));
            }
            cursor = self.advance(cursor, step)?;
        }
        // Terminal text column at the cursor.
        let relation = self.schema.relations.get(&cursor.element).expect("joined");
        let column = relation
            .columns
            .iter()
            .find(|c| c.path == cursor.path && c.attr.is_none())
            .ok_or_else(|| {
                DbError::UnknownColumn(format!(
                    "text of {}/{}",
                    cursor.element,
                    cursor.path.join("/")
                ))
            })?;
        Ok(format!("{}.{}", cursor.alias, column.name))
    }

    fn render(&self, expr: &str) -> String {
        let mut sql = format!("SELECT DISTINCT {expr} FROM {}", self.from.join(", "));
        if !self.wheres.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&self.wheres.join(" AND "));
        }
        sql
    }
}

/// Collect the columns of a relation element: its own text and attributes,
/// then (recursively) every inlined descendant's text and attributes,
/// stopping at relation boundaries.
fn collect_columns(
    dtd: &Dtd,
    element: &str,
    relations: &BTreeSet<String>,
    path: &mut Vec<String>,
    out: &mut Vec<InlineColumn>,
    seen: &mut BTreeSet<String>,
) {
    let Some(decl) = dtd.element(element) else { return };
    // Own text.
    let has_text = matches!(
        decl.content,
        ContentSpec::PcData | ContentSpec::Mixed(_) | ContentSpec::Any
    );
    if has_text {
        let name = text_column_name(path);
        if seen.insert(name.to_uppercase()) {
            out.push(InlineColumn { name, path: path.clone(), attr: None });
        }
    }
    // Own attributes.
    for def in dtd.attributes_of(element) {
        let name = attr_column_name(path, &def.name);
        if seen.insert(name.to_uppercase()) {
            out.push(InlineColumn {
                name,
                path: path.clone(),
                attr: Some(def.name.clone()),
            });
        }
    }
    // Inlined children.
    for child in decl.content.child_names() {
        if relations.contains(&child) {
            continue; // relation boundary
        }
        path.push(child.clone());
        collect_columns(dtd, &child, relations, path, out, seen);
        path.pop();
    }
}

fn child_multiplicity(content: &ContentSpec) -> Vec<(String, bool)> {
    let mut mentions: Vec<(String, bool)> = Vec::new();
    fn walk(cp: &ContentParticle, outer_set: bool, out: &mut Vec<(String, bool)>) {
        match cp {
            ContentParticle::Name(name, occ) => {
                out.push((name.clone(), outer_set || occ.is_set_valued()))
            }
            ContentParticle::Seq(children, occ) | ContentParticle::Choice(children, occ) => {
                let set = outer_set || occ.is_set_valued();
                for child in children {
                    walk(child, set, out);
                }
            }
        }
    }
    match content {
        ContentSpec::Children(cp) => walk(cp, false, &mut mentions),
        ContentSpec::Mixed(names) => {
            for name in names {
                mentions.push((name.clone(), true));
            }
        }
        _ => {}
    }
    // A second mention of the same name also means "can repeat".
    let mut merged: Vec<(String, bool)> = Vec::new();
    for (name, set) in mentions {
        match merged.iter_mut().find(|(n, _)| *n == name) {
            Some((_, existing)) => *existing = true,
            None => merged.push((name, set)),
        }
    }
    merged
}

fn resolve_column(doc: &Document, node: NodeId, column: &InlineColumn) -> Option<String> {
    // Walk the inline path (first occurrence at each step).
    let mut cur = node;
    for step in &column.path {
        cur = doc.first_child_named(cur, step)?;
    }
    match &column.attr {
        Some(attr) => doc.attribute(cur, attr).map(str::to_string),
        None => {
            let mut text = String::new();
            for child in doc.children(cur) {
                match doc.kind(*child) {
                    xmlord_xml::NodeKind::Text(t) | xmlord_xml::NodeKind::CData(t) => {
                        text.push_str(t)
                    }
                    _ => {}
                }
            }
            Some(text)
        }
    }
}

fn text_column_name(path: &[String]) -> String {
    if path.is_empty() {
        "txt".to_string()
    } else {
        shorten(&format!("c_{}", path.iter().map(|p| sanitize(p)).collect::<Vec<_>>().join("_")))
    }
}

fn attr_column_name(path: &[String], attr: &str) -> String {
    let mut parts: Vec<String> = path.iter().map(|p| sanitize(p)).collect();
    parts.push(sanitize(attr));
    shorten(&format!("a_{}", parts.join("_")))
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() || c == '_' { c } else { '_' })
        .collect()
}

/// Keep identifiers under Oracle's 30-character limit, deterministically:
/// long names get a truncated prefix plus an FNV-1a hash suffix.
fn shorten(name: &str) -> String {
    if name.len() <= 30 {
        return name.to_string();
    }
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    format!("{}_{:07x}", &name[..22], hash & 0xFFF_FFFF)
}

fn sql_str(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlord_dtd::parse_dtd;
    use xmlord_ordb::{Database, DbMode, Value};

    const UNIVERSITY_DTD: &str = r#"
<!ELEMENT University (StudyCourse,Student*)>
<!ELEMENT Student (LName,FName,Course*)>
<!ATTLIST Student StudNr CDATA #REQUIRED>
<!ELEMENT Course (Name,Professor*,CreditPts?)>
<!ELEMENT Professor (PName,Subject+,Dept)>
<!ELEMENT LName (#PCDATA)> <!ELEMENT FName (#PCDATA)>
<!ELEMENT Name (#PCDATA)> <!ELEMENT PName (#PCDATA)>
<!ELEMENT Subject (#PCDATA)> <!ELEMENT Dept (#PCDATA)>
<!ELEMENT StudyCourse (#PCDATA)> <!ELEMENT CreditPts (#PCDATA)>
"#;

    #[test]
    fn relation_selection_follows_hybrid_inlining() {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        let schema = InlineSchema::build(&dtd, "University");
        // Root + Student* + Course* + Professor* + Subject+ are relations.
        let names: Vec<&str> = schema.relations.keys().map(String::as_str).collect();
        assert_eq!(names, vec!["Course", "Professor", "Student", "Subject", "University"]);
        // Single-valued simple children are inlined as columns.
        let student = schema.relation("Student").unwrap();
        let cols: Vec<&str> = student.columns.iter().map(|c| c.name.as_str()).collect();
        assert!(cols.contains(&"c_LName"), "{cols:?}");
        assert!(cols.contains(&"a_StudNr"), "{cols:?}");
        // Course inlines CreditPts (optional single) but not Professor.
        let course = schema.relation("Course").unwrap();
        let ccols: Vec<&str> = course.columns.iter().map(|c| c.name.as_str()).collect();
        assert!(ccols.contains(&"c_CreditPts"), "{ccols:?}");
        assert!(!ccols.iter().any(|c| c.contains("Professor")), "{ccols:?}");
    }

    #[test]
    fn load_and_query_university() {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        let doc = xmlord_xml::parse(
            "<University><StudyCourse>CS</StudyCourse>\
             <Student StudNr=\"1\"><LName>Conrad</LName><FName>M</FName>\
             <Course><Name>DBS</Name><Professor><PName>Jaeger</PName>\
             <Subject>CAD</Subject><Dept>CS</Dept></Professor></Course></Student>\
             </University>",
        )
        .unwrap();
        let schema = InlineSchema::build(&dtd, "University");
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&schema.ddl()).unwrap();
        let stmts = schema.load(&doc).unwrap();
        // 1 university + 1 student + 1 course + 1 professor + 1 subject.
        assert_eq!(stmts.len(), 5, "{stmts:#?}");
        for s in &stmts {
            db.execute(s).unwrap_or_else(|e| panic!("{e}\n{s}"));
        }
        let sql = schema
            .path_query(
                &["Student", "LName"],
                Some((&["Student", "Course", "Professor", "PName"], "Jaeger")),
            )
            .unwrap();
        let rows = db.query(&sql).unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("Conrad")]], "{sql}");
    }

    #[test]
    fn inlined_path_needs_no_join() {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        let schema = InlineSchema::build(&dtd, "University");
        // StudyCourse is inlined into the root relation: single table scan.
        let sql = schema.path_query(&["StudyCourse"], None).unwrap();
        assert_eq!(sql.matches("Inl").count(), 1, "{sql}");
    }

    #[test]
    fn recursive_elements_get_their_own_relations() {
        let dtd = parse_dtd(
            r#"<!ELEMENT Professor (PName,Dept)>
               <!ELEMENT Dept (DName,Professor*)>
               <!ELEMENT PName (#PCDATA)> <!ELEMENT DName (#PCDATA)>"#,
        )
        .unwrap();
        let schema = InlineSchema::build(&dtd, "Professor");
        assert!(schema.relation("Professor").is_some());
        assert!(schema.relation("Dept").is_some());
        let doc = xmlord_xml::parse(
            "<Professor><PName>K</PName><Dept><DName>CS</DName>\
             <Professor><PName>J</PName><Dept><DName>Lab</DName></Dept></Professor>\
             </Dept></Professor>",
        )
        .unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&schema.ddl()).unwrap();
        for s in schema.load(&doc).unwrap() {
            db.execute(&s).unwrap();
        }
        assert_eq!(db.row_count("InlProfessor"), 2);
        assert_eq!(db.row_count("InlDept"), 2);
    }

    #[test]
    fn long_column_names_are_shortened_deterministically() {
        let long = "c_".to_string() + &"VeryLongElementName_".repeat(4);
        let a = shorten(&long);
        let b = shorten(&long);
        assert_eq!(a, b);
        assert!(a.len() <= 30);
        let other = shorten(&(long.clone() + "X"));
        assert_ne!(a, other);
    }
}

//! Shared-string cache for the shredding hot path.
//!
//! A shredded document repeats the same element and attribute names once
//! per node, and each repetition used to re-derive a fresh `String` from
//! the name — the quoted SQL literal in the edge baseline, the per-name
//! table names in the attribute-table baseline. This module interns the
//! derived strings as thread-local `Arc<str>` handles: the first
//! occurrence of a name pays the transformation, every further occurrence
//! is a hash lookup and an `Arc` bump. The `(hits, misses)` counters feed
//! the bulk-ingest experiment — a hit is an allocation (plus a rescan of
//! the name) saved.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Entries kept per derivation kind; a DTD has few distinct names, so a
/// full cache only happens on adversarial input — new names then skip the
/// cache (they still work, they just allocate).
const CAPACITY: usize = 4096;

#[derive(Default)]
struct Cache {
    literals: HashMap<Box<str>, Arc<str>>,
    element_tables: HashMap<Box<str>, Arc<str>>,
    attribute_tables: HashMap<Box<str>, Arc<str>>,
    hits: u64,
    misses: u64,
}

thread_local! {
    static CACHE: RefCell<Cache> = RefCell::new(Cache::default());
}

fn cached(
    select: impl Fn(&mut Cache) -> &mut HashMap<Box<str>, Arc<str>>,
    raw: &str,
    build: impl FnOnce(&str) -> String,
) -> Arc<str> {
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(found) = select(&mut cache).get(raw).cloned() {
            cache.hits += 1;
            return found;
        }
        cache.misses += 1;
        let derived: Arc<str> = Arc::from(build(raw).as_str());
        let map = select(&mut cache);
        if map.len() < CAPACITY {
            map.insert(raw.into(), derived.clone());
        }
        derived
    })
}

/// The quoted SQL string literal for a node name (`'name'`, quote-doubled).
pub fn name_literal(name: &str) -> Arc<str> {
    cached(|c| &mut c.literals, name, |s| format!("'{}'", s.replace('\'', "''")))
}

/// The attribute-table baseline's per-element table name.
pub fn element_table(name: &str) -> Arc<str> {
    cached(|c| &mut c.element_tables, name, crate::attrtab::element_table)
}

/// The attribute-table baseline's per-attribute table name.
pub fn attribute_table(name: &str) -> Arc<str> {
    cached(|c| &mut c.attribute_tables, name, crate::attrtab::attribute_table)
}

/// This thread's cache counters as `(hits, misses)`.
pub fn counters() -> (u64, u64) {
    CACHE.with(|cache| {
        let cache = cache.borrow();
        (cache.hits, cache.misses)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_names_share_their_derived_strings() {
        let (h0, _) = counters();
        let a = name_literal("InternProbe'Name");
        let b = name_literal("InternProbe'Name");
        assert_eq!(&*a, "'InternProbe''Name'");
        assert!(Arc::ptr_eq(&a, &b), "second lookup must reuse the handle");
        let (h1, _) = counters();
        assert!(h1 > h0, "second lookup must count as a hit");
    }

    #[test]
    fn derived_table_names_match_the_uncached_helpers() {
        assert_eq!(&*element_table("a-b"), crate::attrtab::element_table("a-b"));
        assert_eq!(&*attribute_table("x y"), crate::attrtab::attribute_table("x y"));
    }
}

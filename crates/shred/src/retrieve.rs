//! Document reconstruction for the generic baselines.
//!
//! Inverts the edge-table ([`crate::edge`]), attribute-table
//! ([`crate::attrtab`]) and hybrid-inlining ([`crate::inline`]) shredders:
//! given the stored rows, rebuild the DOM. Like the object-relational
//! retriever, each strategy has two access paths behind one shared assembly:
//!
//! - **naive** (`bulk = false`): every child lookup re-scans the table that
//!   holds the relationship — O(nodes × rows) on the edge mapping, the
//!   baseline the set-oriented path is measured against;
//! - **bulk** (`bulk = true`): a fresh secondary index on the key column is
//!   probed when one exists, otherwise *one* hash-build pass per table
//!   assembles a key → row-slots multimap that serves every lookup.
//!
//! Both enumerate candidate rows in heap-slot order (index buckets keep
//! slots ascending), so the two paths produce byte-identical documents.
//!
//! The generic mappings drop comments, processing instructions and the XML
//! declaration at *load* time; the attribute-table and inlining mappings
//! additionally concatenate text and lose mixed-content interleaving. The
//! reconstruction is therefore exact for data-centric documents — the same
//! §7 caveat the object-relational mapping carries. Inlining assumes each
//! relation element name occurs at one position of the DTD tree (true for
//! generated corpora); a name reachable through two different inlined
//! intermediates of one parent would alias its `ParentID` rows.

use std::collections::{BTreeMap, HashMap};

use xmlord_dtd::ast::Dtd;
use xmlord_ordb::ident::Ident;
use xmlord_ordb::storage::{key_hash, Storage, TableData};
use xmlord_ordb::{DbError, Value};
use xmlord_xml::{Document, NodeId, QName};

use crate::inline::{InlineRelation, InlineSchema};

fn node_id(v: &Value) -> Option<u64> {
    v.as_num().map(|n| n as u64)
}

/// Rows of one table addressed by an equality key on a NUMBER column:
/// the shared access primitive of all three reconstructors.
struct KeyedRows<'a> {
    storage: &'a Storage,
    table: Ident,
    data: &'a TableData,
    key_col: usize,
    bulk: bool,
    /// Bulk fallback: key → row slots (ascending), built in one pass on
    /// first use when no fresh index serves the column.
    map: Option<HashMap<u64, Vec<usize>>>,
}

impl<'a> KeyedRows<'a> {
    fn open(
        storage: &'a Storage,
        name: &str,
        key_col: usize,
        bulk: bool,
    ) -> Result<KeyedRows<'a>, DbError> {
        let table = Ident::internal(name);
        let data = storage
            .table(&table)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))?;
        Ok(KeyedRows { storage, table, data, key_col, bulk, map: None })
    }

    /// Row slots whose key column equals `id`, in heap order.
    fn slots_for(&mut self, id: u64) -> Vec<usize> {
        if !self.bulk {
            return self
                .data
                .rows
                .iter()
                .enumerate()
                .filter(|(_, r)| r.values.get(self.key_col).and_then(node_id) == Some(id))
                .map(|(slot, _)| slot)
                .collect();
        }
        if let Some(index) = self.storage.find_fresh_index(&self.table, &[self.key_col]) {
            // Hash prefilter: candidates re-verify the key equality.
            let key = Value::Num(id as f64);
            let slots = key_hash(&[&key])
                .and_then(|h| self.storage.index_probe(index, h))
                .unwrap_or(&[]);
            return slots
                .iter()
                .copied()
                .filter(|&slot| {
                    self.data.rows[slot].values.get(self.key_col).and_then(node_id) == Some(id)
                })
                .collect();
        }
        let key_col = self.key_col;
        let data = self.data;
        let map = self.map.get_or_insert_with(|| {
            let mut map: HashMap<u64, Vec<usize>> = HashMap::new();
            for (slot, row) in data.rows.iter().enumerate() {
                if let Some(k) = row.values.get(key_col).and_then(node_id) {
                    map.entry(k).or_default().push(slot);
                }
            }
            map
        });
        map.get(&id).cloned().unwrap_or_default()
    }
}

// ---------------------------------------------------------------- edge --

/// Rebuild the document stored in `TabEdge`/`TabValue` by [`crate::edge`].
pub fn reconstruct_edge(storage: &Storage, bulk: bool) -> Result<Document, DbError> {
    let mut edges = KeyedRows::open(storage, "TabEdge", 0, bulk)?;
    let mut values = KeyedRows::open(storage, "TabValue", 0, bulk)?;
    let mut doc = Document::new();
    // The virtual document root (node 0) has exactly one element edge.
    let data = edges.data;
    let root_slot = edges
        .slots_for(0)
        .into_iter()
        .find(|&slot| data.rows[slot].values.get(3).and_then(Value::as_str) == Some("ref"))
        .ok_or_else(|| DbError::Execution("edge store holds no document".into()))?;
    let root_row = &data.rows[root_slot];
    let name = root_row.values.get(2).and_then(Value::as_str).unwrap_or_default();
    let target = root_row.values.get(4).and_then(node_id).unwrap_or(0);
    let root = build_edge_element(&mut doc, &mut edges, &mut values, name, target)?;
    doc.set_root(root);
    Ok(doc)
}

fn edge_value(values: &mut KeyedRows, vid: u64) -> Result<String, DbError> {
    let data = values.data;
    let slot = values
        .slots_for(vid)
        .into_iter()
        .next()
        .ok_or_else(|| DbError::Execution(format!("TabValue has no row VID={vid}")))?;
    Ok(data.rows[slot].values.get(1).and_then(Value::as_str).unwrap_or_default().to_string())
}

fn build_edge_element(
    doc: &mut Document,
    edges: &mut KeyedRows,
    values: &mut KeyedRows,
    name: &str,
    id: u64,
) -> Result<NodeId, DbError> {
    let node = doc.create_element(QName::local(name));
    let data = edges.data;
    // Attribute edges (`@name`) order among themselves; element and text
    // edges share the loader's child ordinal sequence, so interleaved
    // mixed content comes back in document order.
    let mut attrs: Vec<(u64, &str, u64)> = Vec::new();
    let mut children: Vec<(u64, &str, u64)> = Vec::new();
    for slot in edges.slots_for(id) {
        let row = &data.rows[slot];
        let ordinal = row.values.get(1).and_then(node_id).unwrap_or(0);
        let edge_name = row.values.get(2).and_then(Value::as_str).unwrap_or_default();
        let target = row.values.get(4).and_then(node_id).unwrap_or(0);
        if edge_name.starts_with('@') {
            attrs.push((ordinal, edge_name, target));
        } else {
            children.push((ordinal, edge_name, target));
        }
    }
    attrs.sort_by_key(|(ordinal, ..)| *ordinal);
    children.sort_by_key(|(ordinal, ..)| *ordinal);
    for (_, attr_name, vid) in attrs {
        let value = edge_value(values, vid)?;
        doc.set_attribute(node, QName::local(&attr_name[1..]), &value);
    }
    for (_, child_name, target) in children {
        if child_name == "text()" {
            let text = edge_value(values, target)?;
            let t = doc.create_text(&text);
            doc.append_child(node, t);
        } else {
            let child = build_edge_element(doc, edges, values, child_name, target)?;
            doc.append_child(node, child);
        }
    }
    Ok(node)
}

// ------------------------------------------------------ attribute tables --

/// Rebuild a document stored in the per-name tables by [`crate::attrtab`].
/// The DTD and root drive the same reachability walk the DDL used, so the
/// reconstructor consults exactly the tables that exist.
pub fn reconstruct_attrtab(
    storage: &Storage,
    dtd: &Dtd,
    root: &str,
    bulk: bool,
) -> Result<Document, DbError> {
    let reachable = crate::attrtab::reachable_elements(dtd, root);
    let mut element_tables: BTreeMap<String, KeyedRows> = BTreeMap::new();
    let mut attr_tables: BTreeMap<String, KeyedRows> = BTreeMap::new();
    for element in &reachable {
        let table = crate::attrtab::element_table(element);
        element_tables.insert(element.clone(), KeyedRows::open(storage, &table, 0, bulk)?);
        for def in dtd.attributes_of(element) {
            if !attr_tables.contains_key(&def.name) {
                let table = crate::attrtab::attribute_table(&def.name);
                attr_tables.insert(def.name.clone(), KeyedRows::open(storage, &table, 0, bulk)?);
            }
        }
    }
    let mut ctx = AttrTabRetriever { element_tables, attr_tables };
    // The document element is the root-table row with Source = 0.
    let root_id = {
        let reader = ctx
            .element_tables
            .get_mut(root)
            .ok_or_else(|| DbError::Execution(format!("<{root}> has no element table")))?;
        let data = reader.data;
        reader
            .slots_for(0)
            .into_iter()
            .find_map(|slot| data.rows[slot].values.get(2).and_then(node_id))
            .ok_or_else(|| DbError::Execution("attribute-table store holds no document".into()))?
    };
    let mut doc = Document::new();
    let node = ctx.build(&mut doc, root, root_id)?;
    doc.set_root(node);
    Ok(doc)
}

struct AttrTabRetriever<'a> {
    element_tables: BTreeMap<String, KeyedRows<'a>>,
    attr_tables: BTreeMap<String, KeyedRows<'a>>,
}

impl<'a> AttrTabRetriever<'a> {
    fn build(&mut self, doc: &mut Document, element: &str, id: u64) -> Result<NodeId, DbError> {
        let node = doc.create_element(QName::local(element));
        // Attributes: every attribute table may hold rows for this node;
        // the stored ordinal is the original attribute position.
        let mut attrs: Vec<(u64, String, &'a str)> = Vec::new();
        for (attr_name, reader) in self.attr_tables.iter_mut() {
            let data = reader.data;
            for slot in reader.slots_for(id) {
                let row = &data.rows[slot];
                let ordinal = row.values.get(1).and_then(node_id).unwrap_or(0);
                let value = row.values.get(2).and_then(Value::as_str).unwrap_or_default();
                attrs.push((ordinal, attr_name.clone(), value));
            }
        }
        attrs.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        for (_, attr_name, value) in attrs {
            doc.set_attribute(node, QName::local(&attr_name), value);
        }
        // Own text is the NULL-Target row in this element's own table
        // (concatenated at load time); child elements are rows of any
        // element table with `Source = id` and a Target, their stored
        // ordinal global across the child sequence.
        let mut text: Option<&'a str> = None;
        let mut children: Vec<(u64, String, u64)> = Vec::new();
        for (child_element, reader) in self.element_tables.iter_mut() {
            let data = reader.data;
            for slot in reader.slots_for(id) {
                let row = &data.rows[slot];
                match row.values.get(2).and_then(node_id) {
                    Some(target) => {
                        let ordinal = row.values.get(1).and_then(node_id).unwrap_or(0);
                        children.push((ordinal, child_element.clone(), target));
                    }
                    None if child_element == element => {
                        text = row.values.get(3).and_then(Value::as_str);
                    }
                    None => {}
                }
            }
        }
        if let Some(text) = text {
            if !text.is_empty() {
                let t = doc.create_text(text);
                doc.append_child(node, t);
            }
        }
        children.sort_by_key(|(ordinal, ..)| *ordinal);
        for (_, child_element, target) in children {
            let child = self.build(doc, &child_element, target)?;
            doc.append_child(node, child);
        }
        Ok(node)
    }
}

// -------------------------------------------------------------- inlining --

/// Rebuild a document stored by [`InlineSchema::load`]. The DTD's content
/// models drive child order: within one parent, relation children attach in
/// ascending row ID (the loader assigns IDs in a pre-order walk, so
/// ascending ID is document order), inlined children rebuild from their
/// path columns in the owning relation's row.
pub fn reconstruct_inline(
    storage: &Storage,
    schema: &InlineSchema,
    dtd: &Dtd,
    bulk: bool,
) -> Result<Document, DbError> {
    let mut readers: BTreeMap<String, KeyedRows> = BTreeMap::new();
    for relation in schema.relations.values() {
        // Keyed on ParentID — the column every child lookup probes.
        readers.insert(
            relation.element.clone(),
            KeyedRows::open(storage, &relation.table, 1, bulk)?,
        );
    }
    let root_slot = {
        let reader = readers.get(&schema.root).ok_or_else(|| {
            DbError::Execution(format!("<{}> has no inlined relation", schema.root))
        })?;
        reader
            .data
            .rows
            .iter()
            .position(|r| r.values.get(1).is_none_or(Value::is_null))
            .ok_or_else(|| DbError::Execution("inline store holds no document".into()))?
    };
    let mut ctx = InlineRetriever { schema, dtd, readers };
    let mut doc = Document::new();
    let node = ctx.build_relation(&mut doc, &schema.root, root_slot)?;
    doc.set_root(node);
    Ok(doc)
}

struct InlineRetriever<'a> {
    schema: &'a InlineSchema,
    dtd: &'a Dtd,
    readers: BTreeMap<String, KeyedRows<'a>>,
}

impl<'a> InlineRetriever<'a> {
    /// Rebuild one relation row as an element subtree.
    fn build_relation(
        &mut self,
        doc: &mut Document,
        element: &str,
        slot: usize,
    ) -> Result<NodeId, DbError> {
        let relation = self.schema.relations.get(element).ok_or_else(|| {
            DbError::Execution(format!("<{element}> has no inlined relation"))
        })?;
        let data: &'a TableData = self.readers.get(element).expect("readers cover schema").data;
        let row: &'a [Value] = &data.rows[slot].values;
        let row_id = row
            .first()
            .and_then(node_id)
            .ok_or_else(|| DbError::Execution(format!("{} row without an ID", relation.table)))?;
        let node = doc.create_element(QName::local(element));
        self.fill(doc, node, relation, element, &mut Vec::new(), row, row_id)?;
        Ok(node)
    }

    /// Populate the element at `path` inside `relation`'s row (`path` empty
    /// = the relation element itself): its text and attribute columns, then
    /// its children in content-model order — inlined ones recurse deeper
    /// into the same row, relation ones pull their own rows via `ParentID`.
    #[allow(clippy::too_many_arguments)]
    fn fill(
        &mut self,
        doc: &mut Document,
        node: NodeId,
        relation: &'a InlineRelation,
        decl_name: &str,
        path: &mut Vec<String>,
        row: &'a [Value],
        row_id: u64,
    ) -> Result<(), DbError> {
        for (i, column) in relation.columns.iter().enumerate() {
            if column.path != *path {
                continue;
            }
            let Some(value) = row.get(2 + i).and_then(Value::as_str) else { continue };
            match &column.attr {
                Some(attr) => doc.set_attribute(node, QName::local(attr), value),
                None => {
                    if !value.is_empty() {
                        let t = doc.create_text(value);
                        doc.append_child(node, t);
                    }
                }
            }
        }
        let Some(decl) = self.dtd.element(decl_name) else { return Ok(()) };
        for child in decl.content.child_names() {
            if self.schema.relations.contains_key(&child) {
                let slots = {
                    let reader = self.readers.get_mut(&child).expect("readers cover schema");
                    let data = reader.data;
                    let mut slots = reader.slots_for(row_id);
                    slots.sort_by_key(|&s| {
                        data.rows[s].values.first().and_then(node_id).unwrap_or(0)
                    });
                    slots
                };
                for slot in slots {
                    let child_node = self.build_relation(doc, &child, slot)?;
                    doc.append_child(node, child_node);
                }
            } else {
                path.push(child.clone());
                // An inlined element is present iff any column at or below
                // its path holds a value (the loader stores '' for present-
                // but-empty text, NULL for absent).
                if column_present(relation, path, row) {
                    let child_node = doc.create_element(QName::local(&child));
                    self.fill(doc, child_node, relation, &child, path, row, row_id)?;
                    doc.append_child(node, child_node);
                }
                path.pop();
            }
        }
        Ok(())
    }
}

fn column_present(relation: &InlineRelation, path: &[String], row: &[Value]) -> bool {
    relation.columns.iter().enumerate().any(|(i, column)| {
        column.path.len() >= path.len()
            && column.path[..path.len()] == *path
            && row.get(2 + i).is_some_and(|v| !v.is_null())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlord_dtd::parse_dtd;
    use xmlord_ordb::{Database, DbMode};
    use xmlord_xml::serializer::{serialize, SerializeOptions};

    // Attribute order matches the ATTLIST: the inlining mapping stores
    // attributes as columns in declaration order, losing document order.
    const DTD: &str = r#"
        <!ELEMENT a (s,p*)>
        <!ELEMENT s (#PCDATA)>
        <!ELEMENT p (name,age?)>
        <!ATTLIST p kind CDATA #IMPLIED id2 CDATA #IMPLIED>
        <!ELEMENT name (#PCDATA)> <!ELEMENT age (#PCDATA)>"#;

    const XML: &str = "<a><s>top</s><p kind=\"x\" id2=\"z\"><name>n1</name><age>7</age></p>\
<p kind=\"y\"><name>n2</name></p></a>";

    fn canonical(xml: &str) -> String {
        serialize(&xmlord_xml::parse(xml).unwrap(), &SerializeOptions::compact())
    }

    #[test]
    fn edge_reconstruction_round_trips_both_paths() {
        let doc = xmlord_xml::parse(XML).unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(crate::edge::ddl()).unwrap();
        for s in crate::edge::load(&doc) {
            db.execute(&s).unwrap();
        }
        let storage = db.storage();
        for bulk in [false, true] {
            let restored = reconstruct_edge(&storage, bulk).unwrap();
            assert_eq!(
                serialize(&restored, &SerializeOptions::compact()),
                canonical(XML),
                "bulk={bulk}"
            );
        }
    }

    #[test]
    fn edge_reconstruction_preserves_mixed_content() {
        let xml = "<a>before<p kind=\"x\">inner</p>after</a>";
        let doc = xmlord_xml::parse(xml).unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(crate::edge::ddl()).unwrap();
        for s in crate::edge::load(&doc) {
            db.execute(&s).unwrap();
        }
        let storage = db.storage();
        for bulk in [false, true] {
            let restored = reconstruct_edge(&storage, bulk).unwrap();
            assert_eq!(
                serialize(&restored, &SerializeOptions::compact()),
                canonical(xml),
                "bulk={bulk}"
            );
        }
    }

    #[test]
    fn edge_reconstruction_uses_indexes_when_present() {
        let doc = xmlord_xml::parse(XML).unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(crate::edge::ddl()).unwrap();
        for s in crate::edge::load(&doc) {
            db.execute(&s).unwrap();
        }
        db.execute("CREATE INDEX IxEdgeSrc ON TabEdge (Source)").unwrap();
        db.execute("CREATE INDEX IxValVid ON TabValue (VID)").unwrap();
        let storage = db.storage();
        let restored = reconstruct_edge(&storage, true).unwrap();
        assert_eq!(serialize(&restored, &SerializeOptions::compact()), canonical(XML));
    }

    #[test]
    fn attrtab_reconstruction_round_trips_both_paths() {
        let dtd = parse_dtd(DTD).unwrap();
        let doc = xmlord_xml::parse(XML).unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&crate::attrtab::ddl(&dtd, "a")).unwrap();
        for s in crate::attrtab::load(&doc) {
            db.execute(&s).unwrap();
        }
        let storage = db.storage();
        for bulk in [false, true] {
            let restored = reconstruct_attrtab(&storage, &dtd, "a", bulk).unwrap();
            assert_eq!(
                serialize(&restored, &SerializeOptions::compact()),
                canonical(XML),
                "bulk={bulk}"
            );
        }
    }

    #[test]
    fn inline_reconstruction_round_trips_both_paths() {
        let dtd = parse_dtd(DTD).unwrap();
        let doc = xmlord_xml::parse(XML).unwrap();
        let schema = InlineSchema::build(&dtd, "a");
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&schema.ddl()).unwrap();
        for s in schema.load(&doc).unwrap() {
            db.execute(&s).unwrap();
        }
        let storage = db.storage();
        for bulk in [false, true] {
            let restored = reconstruct_inline(&storage, &schema, &dtd, bulk).unwrap();
            assert_eq!(
                serialize(&restored, &SerializeOptions::compact()),
                canonical(XML),
                "bulk={bulk}"
            );
        }
    }

    #[test]
    fn inline_reconstruction_handles_recursion() {
        let dtd_text = r#"<!ELEMENT Professor (PName,Dept)>
               <!ELEMENT Dept (DName,Professor*)>
               <!ELEMENT PName (#PCDATA)> <!ELEMENT DName (#PCDATA)>"#;
        let xml = "<Professor><PName>K</PName><Dept><DName>CS</DName>\
<Professor><PName>J</PName><Dept><DName>Lab</DName></Dept></Professor>\
</Dept></Professor>";
        let dtd = parse_dtd(dtd_text).unwrap();
        let doc = xmlord_xml::parse(xml).unwrap();
        let schema = InlineSchema::build(&dtd, "Professor");
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&schema.ddl()).unwrap();
        for s in schema.load(&doc).unwrap() {
            db.execute(&s).unwrap();
        }
        let storage = db.storage();
        for bulk in [false, true] {
            let restored = reconstruct_inline(&storage, &schema, &dtd, bulk).unwrap();
            assert_eq!(
                serialize(&restored, &SerializeOptions::compact()),
                canonical(xml),
                "bulk={bulk}"
            );
        }
    }
}

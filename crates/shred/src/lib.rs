//! # xmlord-shred — relational shredding baselines
//!
//! Substrate **S5** of the reproduction: the *generic relational* storage
//! approaches the paper positions itself against in §1 — "a number of
//! relational transformation algorithms, proposed by \[5,9\], that analyze
//! the document structure only and map the data of a document to generic
//! tables, e.g., edge tables or attribute tables". The paper criticizes
//! their "high degree of decomposition" and the resulting "large number of
//! relational insert operations" \[6\]; this crate implements them so those
//! claims can be *measured* (experiments E6–E8):
//!
//! * [`edge`] — the Florescu/Kossmann **edge table** \[5\]: one generic table
//!   of parent→child edges plus a value table,
//! * [`attrtab`] — the **attribute table** variant \[5\]: one edge table per
//!   element/attribute name,
//! * [`inline`] — Shanmugasundaram et al.'s DTD-aware **hybrid inlining**
//!   \[9\]: single-valued content inlined into its ancestor's relation,
//!   set-valued and recursive elements in their own relations.
//!
//! All three generate plain SQL executed by `xmlord-ordb`, mirror the core
//! crate's loader interface (statement lists in, fragmentation metrics out)
//! and translate the same path queries, so the comparison with the
//! object-relational mapping is apples-to-apples.

pub mod attrtab;
pub mod edge;
pub mod inline;
pub mod intern;
pub mod retrieve;

use xmlord_dtd::ast::Dtd;
use xmlord_xml::Document;

use xmlord_ordb::DbError;

/// A uniform handle over the three baselines for the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    Edge,
    AttributeTables,
    Inline,
}

impl Baseline {
    pub const ALL: [Baseline; 3] = [Baseline::Edge, Baseline::AttributeTables, Baseline::Inline];

    pub fn name(self) -> &'static str {
        match self {
            Baseline::Edge => "edge",
            Baseline::AttributeTables => "attribute-tables",
            Baseline::Inline => "inlining",
        }
    }

    /// Schema DDL for documents of `dtd` rooted at `root`.
    pub fn ddl(self, dtd: &Dtd, root: &str) -> Result<String, DbError> {
        match self {
            Baseline::Edge => Ok(edge::ddl().to_string()),
            Baseline::AttributeTables => Ok(attrtab::ddl(dtd, root)),
            Baseline::Inline => Ok(inline::InlineSchema::build(dtd, root).ddl()),
        }
    }

    /// Shred a document into INSERT statements.
    pub fn load(self, dtd: &Dtd, root: &str, doc: &Document) -> Result<Vec<String>, DbError> {
        match self {
            Baseline::Edge => Ok(edge::load(doc)),
            Baseline::AttributeTables => Ok(attrtab::load(doc)),
            Baseline::Inline => inline::InlineSchema::build(dtd, root).load(doc),
        }
    }

    /// Translate a path query with an optional equality predicate.
    pub fn path_query(
        self,
        dtd: &Dtd,
        root: &str,
        steps: &[&str],
        predicate: Option<(&[&str], &str)>,
    ) -> Result<String, DbError> {
        match self {
            Baseline::Edge => Ok(edge::path_query(root, steps, predicate)),
            Baseline::AttributeTables => Ok(attrtab::path_query(root, steps, predicate)),
            Baseline::Inline => inline::InlineSchema::build(dtd, root).path_query(steps, predicate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlord_dtd::parse_dtd;
    use xmlord_ordb::{Database, DbMode, Value};

    pub const UNIVERSITY_DTD: &str = r#"
<!ELEMENT University (StudyCourse,Student*)>
<!ELEMENT Student (LName,FName,Course*)>
<!ATTLIST Student StudNr CDATA #REQUIRED>
<!ELEMENT Course (Name,Professor*,CreditPts?)>
<!ELEMENT Professor (PName,Subject+,Dept)>
<!ELEMENT LName (#PCDATA)> <!ELEMENT FName (#PCDATA)>
<!ELEMENT Name (#PCDATA)> <!ELEMENT PName (#PCDATA)>
<!ELEMENT Subject (#PCDATA)> <!ELEMENT Dept (#PCDATA)>
<!ELEMENT StudyCourse (#PCDATA)> <!ELEMENT CreditPts (#PCDATA)>
"#;

    pub const XML: &str = "<University><StudyCourse>CS</StudyCourse>\
<Student StudNr=\"1\"><LName>Conrad</LName><FName>M</FName>\
<Course><Name>DBS</Name><Professor><PName>Jaeger</PName><Subject>CAD</Subject>\
<Dept>CS</Dept></Professor></Course></Student>\
<Student StudNr=\"2\"><LName>Meier</LName><FName>R</FName></Student></University>";

    #[test]
    fn all_baselines_load_and_answer_the_paper_query() {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        let doc = xmlord_xml::parse(XML).unwrap();
        for baseline in Baseline::ALL {
            let mut db = Database::new(DbMode::Oracle9);
            db.execute_script(&baseline.ddl(&dtd, "University").unwrap())
                .unwrap_or_else(|e| panic!("{}: {e}", baseline.name()));
            let stmts = baseline.load(&dtd, "University", &doc).unwrap();
            assert!(stmts.len() > 1, "{}: shredding must fan out", baseline.name());
            for stmt in &stmts {
                db.execute(stmt)
                    .unwrap_or_else(|e| panic!("{}: {e}\n{stmt}", baseline.name()));
            }
            let sql = baseline
                .path_query(
                    &dtd,
                    "University",
                    &["Student", "LName"],
                    Some((&["Student", "Course", "Professor", "PName"], "Jaeger")),
                )
                .unwrap();
            let rows = db.query(&sql).unwrap_or_else(|e| panic!("{}: {e}\n{sql}", baseline.name()));
            assert_eq!(
                rows.rows,
                vec![vec![Value::str("Conrad")]],
                "{}: {sql}",
                baseline.name()
            );
        }
    }

    #[test]
    fn shredding_statement_counts_exceed_the_or_mapping() {
        // §1's criticism, quantified: every baseline needs many INSERTs
        // where Oracle 9 OR mapping needs exactly one.
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        let doc = xmlord_xml::parse(XML).unwrap();
        for baseline in Baseline::ALL {
            let stmts = baseline.load(&dtd, "University", &doc).unwrap();
            assert!(
                stmts.len() >= 4,
                "{} produced only {} statements",
                baseline.name(),
                stmts.len()
            );
        }
    }
}

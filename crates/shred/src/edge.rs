//! The edge-table mapping of Florescu & Kossmann \[5\].
//!
//! Two generic tables hold any document:
//!
//! ```sql
//! CREATE TABLE TabEdge  (Source NUMBER, Ordinal NUMBER, Name VARCHAR(250),
//!                        Flag VARCHAR(10), Target NUMBER);
//! CREATE TABLE TabValue (VID NUMBER, Val VARCHAR(4000));
//! ```
//!
//! Every element, attribute and text node becomes edges/values — the "high
//! degree of decomposition" §1 criticizes. Attributes are edges whose name
//! is prefixed with `@`; text content is an edge flagged `val` pointing
//! into `TabValue`. The virtual document root has node id 0.
//!
//! Path queries become chains of self-joins over `TabEdge` — one join per
//! step — plus a final join to `TabValue`.

use xmlord_xml::{Document, NodeId, NodeKind};

/// The generic schema (identical for every document type).
pub fn ddl() -> &'static str {
    "CREATE TABLE TabEdge (\n\
     \x20   Source NUMBER,\n\
     \x20   Ordinal NUMBER,\n\
     \x20   Name VARCHAR(250),\n\
     \x20   Flag VARCHAR(10),\n\
     \x20   Target NUMBER\n\
     );\n\
     CREATE TABLE TabValue (\n\
     \x20   VID NUMBER,\n\
     \x20   Val VARCHAR(4000)\n\
     );"
}

/// Shred a document into edge/value INSERTs.
pub fn load(doc: &Document) -> Vec<String> {
    let mut out = Vec::new();
    let mut next_node = 0u64;
    if let Some(root) = doc.root_element() {
        let mut ctx = EdgeLoader { doc, out: &mut out, next_node: &mut next_node };
        ctx.element(root, 0, 0);
    }
    out
}

struct EdgeLoader<'a> {
    doc: &'a Document,
    out: &'a mut Vec<String>,
    next_node: &'a mut u64,
}

impl<'a> EdgeLoader<'a> {
    fn fresh(&mut self) -> u64 {
        *self.next_node += 1;
        *self.next_node
    }

    fn element(&mut self, node: NodeId, parent: u64, ordinal: usize) {
        let my_id = self.fresh();
        let name = self.doc.name(node).as_raw();
        self.out.push(format!(
            "INSERT INTO TabEdge VALUES ({parent}, {ordinal}, {}, 'ref', {my_id})",
            crate::intern::name_literal(&name)
        ));
        // Attributes.
        for (i, attr) in self.doc.attributes(node).iter().enumerate() {
            let vid = self.fresh();
            self.out.push(format!(
                "INSERT INTO TabEdge VALUES ({my_id}, {i}, {}, 'val', {vid})",
                crate::intern::name_literal(&format!("@{}", attr.name.as_raw()))
            ));
            self.out
                .push(format!("INSERT INTO TabValue VALUES ({vid}, {})", sql_str(&attr.value)));
        }
        // Children: elements recurse; text becomes value edges.
        let mut ordinal = 0usize;
        for child in self.doc.children(node) {
            match self.doc.kind(*child) {
                NodeKind::Element(_) => {
                    self.element(*child, my_id, ordinal);
                    ordinal += 1;
                }
                NodeKind::Text(t) | NodeKind::CData(t)
                    if !t.trim().is_empty() => {
                        let vid = self.fresh();
                        self.out.push(format!(
                            "INSERT INTO TabEdge VALUES ({my_id}, {ordinal}, 'text()', 'val', {vid})"
                        ));
                        self.out.push(format!(
                            "INSERT INTO TabValue VALUES ({vid}, {})",
                            sql_str(t)
                        ));
                        ordinal += 1;
                    }
                // Comments and PIs are not data — dropped, like the paper
                // notes generic mappings do.
                _ => {}
            }
        }
    }
}

/// Translate a path (root, steps…) with an optional equality predicate into
/// the self-join chain. `steps` ends at a simple element or `@attribute`.
/// The result path and the predicate path share their longest common
/// prefix, so the predicate is correlated at the right node (these are the
/// very joins §4.1 says the dot notation avoids).
pub fn path_query(root: &str, steps: &[&str], predicate: Option<(&[&str], &str)>) -> String {
    let mut b = ChainBuilder::default();
    let root_alias = b.root(root);
    match predicate {
        None => {
            let expr = b.descend_all(&root_alias, steps);
            b.render(&expr)
        }
        Some((pred_steps, value)) => {
            let shared = steps
                .iter()
                .zip(pred_steps.iter())
                .take_while(|(a, b)| a == b)
                .count()
                // Never share the terminal step of either path.
                .min(steps.len().saturating_sub(1))
                .min(pred_steps.len().saturating_sub(1));
            let mut prev = root_alias;
            for step in &steps[..shared] {
                prev = b.element_step(&prev, step);
            }
            let expr = b.descend_all(&prev, &steps[shared..]);
            let pred_expr = b.descend_all(&prev, &pred_steps[shared..]);
            b.wheres.push(format!("{pred_expr} = {}", sql_str(value)));
            b.render(&expr)
        }
    }
}

#[derive(Default)]
struct ChainBuilder {
    from: Vec<String>,
    wheres: Vec<String>,
    next: usize,
}

impl ChainBuilder {
    fn edge_alias(&mut self) -> String {
        let a = format!("e{}", self.next);
        self.next += 1;
        self.from.push(format!("TabEdge {a}"));
        a
    }

    fn value_alias(&mut self) -> String {
        let v = format!("v{}", self.next);
        self.next += 1;
        self.from.push(format!("TabValue {v}"));
        v
    }

    /// Edge from the virtual root (node 0) to the document element.
    fn root(&mut self, root: &str) -> String {
        let a = self.edge_alias();
        self.wheres.push(format!("{a}.Source = 0"));
        self.wheres.push(format!("{a}.Name = {}", sql_str(root)));
        a
    }

    /// One element step below `prev`; returns the new edge alias.
    fn element_step(&mut self, prev: &str, step: &str) -> String {
        let a = self.edge_alias();
        self.wheres.push(format!("{a}.Source = {prev}.Target"));
        self.wheres.push(format!("{a}.Name = {}", sql_str(step)));
        a
    }

    /// Descend through all steps and return the text/attribute value expr.
    fn descend_all(&mut self, start: &str, steps: &[&str]) -> String {
        let mut prev = start.to_string();
        for step in steps {
            if let Some(attr) = step.strip_prefix('@') {
                let a = self.element_step(&prev, &format!("@{attr}"));
                let v = self.value_alias();
                self.wheres.push(format!("{v}.VID = {a}.Target"));
                return format!("{v}.Val");
            }
            prev = self.element_step(&prev, step);
        }
        // Terminal text: text() edge below the last element.
        let t = self.element_step(&prev, "text()");
        let v = self.value_alias();
        self.wheres.push(format!("{v}.VID = {t}.Target"));
        format!("{v}.Val")
    }

    fn render(&self, expr: &str) -> String {
        format!(
            "SELECT DISTINCT {expr} FROM {} WHERE {}",
            self.from.join(", "),
            self.wheres.join(" AND ")
        )
    }
}

fn sql_str(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlord_ordb::{Database, DbMode, Value};

    fn setup(xml: &str) -> (Database, usize) {
        let doc = xmlord_xml::parse(xml).unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(ddl()).unwrap();
        let stmts = load(&doc);
        let n = stmts.len();
        for s in &stmts {
            db.execute(s).unwrap();
        }
        (db, n)
    }

    #[test]
    fn tiny_document_explodes_into_many_rows() {
        let (db, statements) = setup("<a x=\"1\"><b>t</b></a>");
        // a-edge, @x edge+value, b-edge, text edge+value = 6 statements.
        assert_eq!(statements, 6);
        assert_eq!(db.storage().total_rows(), 6);
    }

    #[test]
    fn path_query_finds_text() {
        let (mut db, _) = setup("<a><b><c>hit</c></b><b><c>hit2</c></b></a>");
        let sql = path_query("a", &["b", "c"], None);
        let rows = db.query(&sql).unwrap();
        assert_eq!(rows.rows.len(), 2);
        assert_eq!(rows.rows[0][0], Value::str("hit"));
    }

    #[test]
    fn attribute_query() {
        let (mut db, _) = setup("<a><b k=\"42\"/></a>");
        let sql = path_query("a", &["b", "@k"], None);
        assert_eq!(db.query_scalar(&sql).unwrap(), Value::str("42"));
    }

    #[test]
    fn predicate_is_correlated_via_the_shared_prefix() {
        let (mut db, _) = setup(
            "<a><p><name>x</name><age>1</age></p><p><name>y</name><age>2</age></p></a>",
        );
        let sql = path_query("a", &["p", "name"], Some((&["p", "age"], "2")));
        // The shared <p> step correlates both chains.
        assert!(sql.matches("TabEdge").count() >= 5, "{sql}");
        let rows = db.query(&sql).unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("y")]], "{sql}");
    }

    #[test]
    fn comments_and_pis_are_dropped() {
        let (db, _) = setup("<a><!--c--><?p d?><b>x</b></a>");
        // Only a, b, text = 4 rows (2 edges + text edge + value).
        assert_eq!(db.storage().total_rows(), 4);
    }
}

//! Property tests for the Table 1 naming layer: for *any* XML name —
//! hostile ones included — generated identifiers must stay (a) unique
//! case-insensitively within their namespace and (b) catalog-legal, i.e.
//! accepted by the engine's `Ident::new` (≤ 30 bytes, charset enforced by
//! sanitization) and free of reserved words.

use std::collections::BTreeSet;

use xml2ordb::naming::{sanitize, NameGenerator, NameKind};
use xmlord_ordb::ident::Ident;
use xmlord_prng::Prng;

/// Hostile XML-name alphabet: ASCII letters in both cases (case-fold
/// collisions), digits, XML name punctuation (`-`, `.`, `:`) that
/// sanitizes to `_` (sanitize collisions), multi-byte alphanumerics
/// (byte-length vs char-length), and combining marks.
const ALPHABET: &[char] = &[
    'a', 'A', 'b', 'B', 'z', 'Z', '0', '9', '-', '.', ':', '_', '$', '#', 'é', 'Ж', '名', 'ß',
    'ⅻ', '\u{0301}',
];

fn hostile_name(rng: &mut Prng) -> String {
    let len = rng.gen_range(1usize..40);
    (0..len).map(|_| ALPHABET[rng.gen_range(0usize..ALPHABET.len())]).collect()
}

/// Names that differ only by case or only in sanitized-away characters —
/// maximal pressure on the uniquifier.
fn colliding_family(rng: &mut Prng) -> Vec<String> {
    let base = hostile_name(rng);
    vec![
        base.clone(),
        base.to_uppercase(),
        base.to_lowercase(),
        base.replace(['-', '.', ':'], "_"),
        base.replace('_', "-"),
        format!("{base}2"),
    ]
}

const GLOBAL_KINDS: &[NameKind] =
    &[NameKind::Table, NameKind::ObjectType, NameKind::VarrayType, NameKind::ObjectView];

#[test]
fn global_names_stay_unique_and_catalog_legal() {
    for case in 0..20u64 {
        let mut rng = Prng::seed_from_u64(0x7AB1E + case);
        let mut names = NameGenerator::new();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for _ in 0..40 {
            for xml_name in colliding_family(&mut rng) {
                let kind = GLOBAL_KINDS[rng.gen_range(0usize..GLOBAL_KINDS.len())];
                let name = names.global(kind, &xml_name);
                assert!(
                    Ident::new(&name).is_ok(),
                    "case {case}: '{name}' (from '{xml_name}') is not catalog-legal"
                );
                assert!(
                    seen.insert(name.to_uppercase()),
                    "case {case}: duplicate global name '{name}' (from '{xml_name}')"
                );
            }
        }
    }
}

#[test]
fn scoped_names_stay_unique_within_their_scope() {
    const KINDS: &[NameKind] =
        &[NameKind::AttrFromElement, NameKind::AttrFromAttribute, NameKind::AttrList, NameKind::IdAttr];
    for case in 0..20u64 {
        let mut rng = Prng::seed_from_u64(0x5C0BE + case);
        let names = NameGenerator::new();
        let mut scope: BTreeSet<String> = BTreeSet::new();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for _ in 0..40 {
            for xml_name in colliding_family(&mut rng) {
                let kind = KINDS[rng.gen_range(0usize..KINDS.len())];
                let name = names.scoped(kind, &xml_name, &mut scope);
                assert!(
                    Ident::new(&name).is_ok(),
                    "case {case}: '{name}' (from '{xml_name}') is not catalog-legal"
                );
                assert!(
                    seen.insert(name.to_uppercase()),
                    "case {case}: duplicate scoped name '{name}' (from '{xml_name}')"
                );
            }
        }
    }
}

/// Schema-id suffixing (§5) must preserve both properties; the suffix eats
/// into the 30-byte budget, so truncation gets extra pressure here.
#[test]
fn schema_id_suffixed_names_stay_unique_and_legal() {
    for case in 0..10u64 {
        let mut rng = Prng::seed_from_u64(0x51D + case);
        let mut names = NameGenerator::with_schema_id("S1");
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for _ in 0..30 {
            for xml_name in colliding_family(&mut rng) {
                let name = names.global(NameKind::ObjectType, &xml_name);
                assert!(Ident::new(&name).is_ok(), "case {case}: '{name}' from '{xml_name}'");
                assert!(seen.insert(name.to_uppercase()), "case {case}: duplicate '{name}'");
            }
        }
    }
}

/// `sanitize` only ever substitutes characters — never drops or adds them —
/// and its output contains only identifier-legal characters.
#[test]
fn sanitize_is_length_preserving_and_charset_clean() {
    let mut rng = Prng::seed_from_u64(0xC1EA7);
    for _ in 0..500 {
        let name = hostile_name(&mut rng);
        let s = sanitize(&name);
        assert_eq!(s.chars().count(), name.chars().count(), "'{name}' → '{s}'");
        assert!(
            s.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '$' || c == '#'),
            "'{name}' → '{s}'"
        );
    }
}

/// Reserved words can never leak out as generated identifiers, whatever
/// the kind (the `IdAttr` prefix `ID` is the shortest shield).
#[test]
fn reserved_words_never_survive() {
    let mut names = NameGenerator::new();
    let mut scope = BTreeSet::new();
    for word in ["SELECT", "table", "Varchar", "order", "CHECK", "null"] {
        for kind in GLOBAL_KINDS {
            let name = names.global(*kind, word);
            assert!(Ident::new(&name).is_ok());
            assert!(!xmlord_ordb::ident::is_reserved_word(&name), "{name}");
        }
        let scoped = names.scoped(NameKind::AttrFromElement, word, &mut scope);
        assert!(!xmlord_ordb::ident::is_reserved_word(&scoped), "{scoped}");
    }
}

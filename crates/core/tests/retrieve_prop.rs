//! Seeded differential property suite for bulk document reconstruction
//! (PR 10's tentpole): over a generated `dtdgen` corpus and all six
//! storage strategies (or9, or8, rel, edge, attr, inline),
//!
//! * the set-oriented bulk walker and the naive per-node walker rebuild
//!   **byte-identical** documents,
//! * both match the originally stored document (canonical compact form),
//! * through the pipeline the answer is the same at any reader-worker
//!   count, with the valve on or off,
//! * and a pinned MVCC snapshot keeps answering with the same bytes while
//!   a writer churns more documents into the database.

use xml2ordb::model::MappingOptions;
use xml2ordb::pipeline::Xml2OrDb;
use xml2ordb::retriever::retrieve_snapshot;
use xml2ordb::schemagen::{generate_schema, IdrefTargets};
use xml2ordb::views::{
    reconstruct_relational, relational_ddl, relational_load_script, relational_schema,
};
use xmlord_dtd::parse_dtd;
use xmlord_ordb::{Database, DbMode};
use xmlord_prng::Prng;
use xmlord_shred::inline::InlineSchema;
use xmlord_shred::retrieve::{reconstruct_attrtab, reconstruct_edge, reconstruct_inline};
use xmlord_shred::{attrtab, edge};
use xmlord_workload::dtdgen::{generate_dtd, DtdConfig};
use xmlord_xml::serializer::{serialize, SerializeOptions};

fn corpus(case: u64) -> DtdConfig {
    let mut rng = Prng::seed_from_u64(0x5E70 + case);
    DtdConfig {
        depth: rng.gen_range(1usize..4),
        fanout: rng.gen_range(1usize..4),
        leaves: rng.gen_range(1usize..3),
        star_percent: 45,
        attr_percent: 40,
        seed: rng.gen_range(0u64..5000),
    }
}

/// Canonical compact serialization — the comparison form throughout (the
/// corpus is data-centric, so reconstruction is byte-exact in it).
fn canonical(xml: &str) -> String {
    serialize(&xmlord_xml::parse(xml).unwrap(), &SerializeOptions::compact())
}

/// or9 / or8 through the full pipeline: store, retrieve with the valve on
/// and off, compare raw retrieval bytes and the canonical original.
#[test]
fn or_strategies_bulk_naive_and_original_agree() {
    for case in 0..6u64 {
        let config = corpus(case);
        let generated = generate_dtd(&config);
        let xml = generated.document(2, config.seed);
        let expect = canonical(&xml);
        for mode in [DbMode::Oracle9, DbMode::Oracle8] {
            let mut sys = Xml2OrDb::new(mode);
            sys.register_dtd("gen", &generated.dtd_text, &generated.root).unwrap();
            let id = sys.store_document("gen", &xml).unwrap();
            let bulk = sys.retrieve_document(&id).unwrap();
            sys.database().set_bulk_retrieval(false);
            let naive = sys.retrieve_document(&id).unwrap();
            assert_eq!(bulk, naive, "case {case} {mode:?}: walkers diverged");
            assert_eq!(canonical(&bulk), expect, "case {case} {mode:?}: lost the original");
        }
    }
}

/// rel / edge / attr / inline through the strategy-specific reconstructors:
/// shred into a fresh database, rebuild with both access paths, compare
/// against the canonical original.
#[test]
fn generic_strategies_bulk_naive_and_original_agree() {
    for case in 0..6u64 {
        let config = corpus(case);
        let generated = generate_dtd(&config);
        let xml = generated.document(2, config.seed);
        let expect = canonical(&xml);
        let dtd = parse_dtd(&generated.dtd_text).unwrap();
        let doc = xmlord_xml::parse(&xml).unwrap();
        let root = generated.root.as_str();

        // §6.3 key-based relational shredding.
        let schema = generate_schema(
            &dtd,
            root,
            DbMode::Oracle9,
            MappingOptions { with_doc_id: false, ..Default::default() },
            &IdrefTargets::new(),
        )
        .unwrap();
        let rel = relational_schema(&schema);
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&relational_ddl(&rel, 4000)).unwrap();
        for stmt in relational_load_script(&schema, &rel, &doc).unwrap() {
            db.execute(&stmt).unwrap();
        }
        let storage = db.storage();
        for bulk in [false, true] {
            let restored = reconstruct_relational(&schema, &rel, &storage, bulk).unwrap();
            assert_eq!(
                serialize(&restored, &SerializeOptions::compact()),
                expect,
                "case {case} rel bulk={bulk}"
            );
        }
        drop(storage);

        // Edge table.
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(edge::ddl()).unwrap();
        for stmt in edge::load(&doc) {
            db.execute(&stmt).unwrap();
        }
        let storage = db.storage();
        for bulk in [false, true] {
            let restored = reconstruct_edge(&storage, bulk).unwrap();
            assert_eq!(
                serialize(&restored, &SerializeOptions::compact()),
                expect,
                "case {case} edge bulk={bulk}"
            );
        }
        drop(storage);

        // Attribute tables.
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&attrtab::ddl(&dtd, root)).unwrap();
        for stmt in attrtab::load(&doc) {
            db.execute(&stmt).unwrap();
        }
        let storage = db.storage();
        for bulk in [false, true] {
            let restored = reconstruct_attrtab(&storage, &dtd, root, bulk).unwrap();
            assert_eq!(
                serialize(&restored, &SerializeOptions::compact()),
                expect,
                "case {case} attr bulk={bulk}"
            );
        }
        drop(storage);

        // Hybrid inlining.
        let inline_schema = InlineSchema::build(&dtd, root);
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&inline_schema.ddl()).unwrap();
        for stmt in inline_schema.load(&doc).unwrap() {
            db.execute(&stmt).unwrap();
        }
        let storage = db.storage();
        for bulk in [false, true] {
            let restored = reconstruct_inline(&storage, &inline_schema, &dtd, bulk).unwrap();
            assert_eq!(
                serialize(&restored, &SerializeOptions::compact()),
                expect,
                "case {case} inline bulk={bulk}"
            );
        }
    }
}

/// Parallel snapshot readers return the same bytes as one serial reader,
/// at every worker count and with the valve in both positions.
#[test]
fn parallel_retrieval_matches_serial_at_any_worker_count() {
    let config = corpus(1);
    let generated = generate_dtd(&config);
    for mode in [DbMode::Oracle9, DbMode::Oracle8] {
        let mut sys = Xml2OrDb::new(mode);
        sys.register_dtd("gen", &generated.dtd_text, &generated.root).unwrap();
        let docs: Vec<String> =
            (0..8).map(|i| generated.document(2, config.seed + i)).collect();
        let ids: Vec<String> =
            docs.iter().map(|d| sys.store_document("gen", d).unwrap()).collect();
        let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();

        sys.set_load_workers(1);
        let serial = sys.retrieve_documents(&id_refs).unwrap();
        for (original, retrieved) in docs.iter().zip(&serial) {
            assert_eq!(canonical(retrieved), canonical(original), "{mode:?} serial");
        }
        for workers in [2usize, 4] {
            sys.set_load_workers(workers);
            let parallel = sys.retrieve_documents(&id_refs).unwrap();
            assert_eq!(serial, parallel, "{mode:?} workers={workers}");
        }
        // Valve off: sessions inherit the writer's setting and the naive
        // walkers still produce the same bytes.
        sys.database().set_bulk_retrieval(false);
        sys.set_load_workers(4);
        let naive = sys.retrieve_documents(&id_refs).unwrap();
        assert_eq!(serial, naive, "{mode:?} naive valve diverged");
    }
}

/// A pinned MVCC snapshot keeps answering with identical bytes — bulk and
/// naive alternating — while the writer stores more documents.
#[test]
fn snapshot_readers_are_stable_under_writer_churn() {
    let config = corpus(2);
    let generated = generate_dtd(&config);
    let xml = generated.document(2, config.seed);
    let expect = canonical(&xml);
    let mut sys = Xml2OrDb::new(DbMode::Oracle9);
    sys.register_dtd("gen", &generated.dtd_text, &generated.root).unwrap();
    let id = sys.store_document("gen", &xml).unwrap();
    let schema = sys.schema("gen").unwrap().schema.clone();
    let mut session = sys.database().read_session();
    std::thread::scope(|scope| {
        let reader = scope.spawn(move || {
            let mut texts = Vec::new();
            for i in 0..12 {
                session.set_bulk_retrieval(i % 2 == 0);
                let (doc, _meta, _stats) =
                    retrieve_snapshot(&mut session, &schema, &id).unwrap();
                texts.push(serialize(&doc, &SerializeOptions::compact()));
            }
            texts
        });
        for i in 0..10u64 {
            sys.store_document("gen", &generated.document(2, config.seed + 100 + i))
                .unwrap();
        }
        for text in reader.join().unwrap() {
            assert_eq!(text, expect, "snapshot read changed under writer churn");
        }
    });
}

//! SQL script generation from a [`MappedSchema`].
//!
//! §4: "The DTD tree representation is the input for the generation
//! algorithm producing an SQL script. This script can be executed afterwards
//! without any modification to create and populate the database tables."
//! The output of [`create_script`] is exactly that script — plain SQL text
//! the `xmlord-ordb` engine (or, syntactically, Oracle) executes verbatim.

use crate::error::MappingError;
use crate::model::{CollectionStyle, ElementMapping, MappedSchema};

/// Render the complete CREATE script: forward declarations first (§6.2),
/// then attribute-list types, object types and collection types bottom-up,
/// then the object tables with their constraints.
///
/// Fails with [`MappingError::MalformedMapping`] when the schema violates a
/// generator invariant (a hand-built or post-generation-mutated mapping);
/// schemas straight out of [`generate_schema`](crate::schemagen::generate_schema)
/// never do.
pub fn create_script(schema: &MappedSchema) -> Result<String, MappingError> {
    let mut out = types_script(schema)?;
    for element in &schema.creation_order {
        let mapping = &schema.elements[element];
        push_table(&mut out, mapping)?;
    }
    Ok(out)
}

/// Only the type definitions (no tables) — used by the §6.3 object-view
/// generator, which superimposes the types on a *relational* schema.
pub fn types_script(schema: &MappedSchema) -> Result<String, MappingError> {
    let mut out = String::new();
    let varchar = schema.options.varchar_len;

    // Forward declarations: recursion targets (§6.2) plus every type that a
    // REF column points at — REF columns may appear in types created before
    // their target.
    let mut ref_targets: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for mapping in schema.elements.values() {
        for field in &mapping.fields {
            match &field.kind {
                crate::model::FieldKind::Ref(t)
                | crate::model::FieldKind::RefCollection { target_type: t, .. } => {
                    ref_targets.insert(t);
                }
                _ => {}
            }
        }
        if let Some(attr_list) = &mapping.attr_list {
            for f in &attr_list.fields {
                if let Some(target) = &f.idref_target {
                    if let Some(t) = schema.elements.get(target).and_then(|m| m.object_type.as_deref()) {
                        ref_targets.insert(t);
                    }
                }
            }
        }
    }
    for element in &schema.creation_order {
        let mapping = &schema.elements[element];
        let Some(type_name) = &mapping.object_type else { continue };
        if schema.forward_declared.contains(element) || ref_targets.contains(type_name.as_str()) {
            out.push_str(&format!("CREATE TYPE {type_name};\n"));
        }
    }
    // Nested-table-of-REF types only need the forward declarations above.
    for element in &schema.creation_order {
        push_ref_collection_type(&mut out, &schema.elements[element])?;
    }

    // Types, children before parents.
    for element in &schema.creation_order {
        let mapping = &schema.elements[element];
        push_attr_list_type(&mut out, schema, mapping, varchar);
        push_object_type(&mut out, mapping, varchar);
        push_collection_type(&mut out, schema, mapping, varchar);
    }
    Ok(out)
}

/// Render the teardown script. Tables first, then types in reverse creation
/// order; `DROP TYPE … FORCE` throughout because related types must be
/// force-dropped (§6.2).
pub fn drop_script(schema: &MappedSchema) -> String {
    let mut out = String::new();
    for element in schema.creation_order.iter().rev() {
        let mapping = &schema.elements[element];
        if let Some(table) = &mapping.table {
            out.push_str(&format!("DROP TABLE {table};\n"));
        }
    }
    for element in schema.creation_order.iter().rev() {
        let mapping = &schema.elements[element];
        if let Some(t) = &mapping.ref_collection_type {
            out.push_str(&format!("DROP TYPE {t} FORCE;\n"));
        }
        if let Some(t) = &mapping.collection_type {
            out.push_str(&format!("DROP TYPE {t} FORCE;\n"));
        }
        if let Some(t) = &mapping.object_type {
            out.push_str(&format!("DROP TYPE {t} FORCE;\n"));
        }
        if let Some(attr_list) = &mapping.attr_list {
            out.push_str(&format!("DROP TYPE {} FORCE;\n", attr_list.type_name));
        }
    }
    out
}

fn push_attr_list_type(
    out: &mut String,
    schema: &MappedSchema,
    mapping: &ElementMapping,
    varchar: u32,
) {
    let Some(attr_list) = &mapping.attr_list else { return };
    let _ = varchar;
    let mut cols = Vec::new();
    for field in &attr_list.fields {
        let sql_type = match &field.idref_target {
            Some(target) => {
                let target_type = schema
                    .elements
                    .get(target)
                    .and_then(|m| m.object_type.clone())
                    .unwrap_or_else(|| format!("Type_{target}"));
                format!("REF {target_type}")
            }
            None => field.scalar_type.sql_text(),
        };
        cols.push(format!("    {} {}", field.db_name, sql_type));
    }
    out.push_str(&format!(
        "CREATE TYPE {} AS OBJECT (\n{});\n",
        attr_list.type_name,
        cols.join(",\n") + "\n"
    ));
}

fn push_object_type(out: &mut String, mapping: &ElementMapping, varchar: u32) {
    let Some(type_name) = &mapping.object_type else { return };
    let cols: Vec<String> = mapping
        .fields
        .iter()
        .map(|f| format!("    {} {}", f.db_name, f.kind.sql_type_text(varchar)))
        .collect();
    out.push_str(&format!(
        "CREATE TYPE {} AS OBJECT (\n{});\n",
        type_name,
        cols.join(",\n") + "\n"
    ));
}

fn push_collection_type(
    out: &mut String,
    schema: &MappedSchema,
    mapping: &ElementMapping,
    varchar: u32,
) {
    let _ = varchar;
    let Some(collection) = &mapping.collection_type else { return };
    let element_type = match &mapping.object_type {
        Some(t) => t.clone(),
        None => mapping.scalar_type.sql_text(),
    };
    match schema.options.collection_style {
        CollectionStyle::Varray => out.push_str(&format!(
            "CREATE TYPE {collection} AS VARRAY({}) OF {element_type};\n",
            schema.options.varray_max
        )),
        CollectionStyle::NestedTable => {
            out.push_str(&format!("CREATE TYPE {collection} AS TABLE OF {element_type};\n"))
        }
    }
}

fn push_ref_collection_type(
    out: &mut String,
    mapping: &ElementMapping,
) -> Result<(), MappingError> {
    let Some(collection) = &mapping.ref_collection_type else { return Ok(()) };
    let target = mapping.object_type.as_ref().ok_or_else(|| {
        MappingError::MalformedMapping(format!(
            "element <{}> has REF collection type {collection} but no object type to point at",
            mapping.element
        ))
    })?;
    out.push_str(&format!("CREATE TYPE {collection} AS TABLE OF REF {target};\n"));
    Ok(())
}

fn push_table(out: &mut String, mapping: &ElementMapping) -> Result<(), MappingError> {
    let Some(table) = &mapping.table else { return Ok(()) };
    let type_name = mapping.object_type.as_ref().ok_or_else(|| {
        MappingError::MalformedMapping(format!(
            "element <{}> is table-rooted ({table}) but has no object type",
            mapping.element
        ))
    })?;
    let mut constraints: Vec<String> = Vec::new();
    // §4.3: mandatory, non-set-valued content → NOT NULL — expressible here
    // because this is a table.
    for field in &mapping.fields {
        if !field.optional && !field.set_valued {
            constraints.push(format!("    {} NOT NULL", field.db_name));
        }
    }
    // The synthetic ID is the lookup key for INSERT wiring and retrieval.
    if let Some(id) = &mapping.synthetic_id {
        constraints.push(format!("    {id} PRIMARY KEY"));
    }
    if constraints.is_empty() {
        out.push_str(&format!("CREATE TABLE {table} OF {type_name};\n"));
    } else {
        out.push_str(&format!(
            "CREATE TABLE {table} OF {type_name} (\n{}\n);\n",
            constraints.join(",\n")
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MappingOptions;
    use crate::schemagen::{generate_schema, IdrefTargets};
    use xmlord_dtd::parse_dtd;
    use xmlord_ordb::{Database, DbMode};

    const UNIVERSITY_DTD: &str = r#"
<!ELEMENT University (StudyCourse,Student*)>
<!ELEMENT Student (LName,FName,Course*)>
<!ATTLIST Student StudNr CDATA #REQUIRED>
<!ELEMENT Course (Name,Professor*,CreditPts?)>
<!ELEMENT Professor (PName,Subject+,Dept)>
<!ELEMENT LName (#PCDATA)> <!ELEMENT FName (#PCDATA)>
<!ELEMENT Name (#PCDATA)> <!ELEMENT PName (#PCDATA)>
<!ELEMENT Subject (#PCDATA)> <!ELEMENT Dept (#PCDATA)>
<!ELEMENT StudyCourse (#PCDATA)> <!ELEMENT CreditPts (#PCDATA)>
"#;

    fn schema_for(dtd_text: &str, root: &str, mode: DbMode) -> MappedSchema {
        let dtd = parse_dtd(dtd_text).unwrap();
        generate_schema(
            &dtd,
            root,
            mode,
            MappingOptions { with_doc_id: false, ..Default::default() },
            &IdrefTargets::new(),
        )
        .unwrap()
    }

    #[test]
    fn university_script_contains_the_section_4_2_shapes() {
        let schema = schema_for(UNIVERSITY_DTD, "University", DbMode::Oracle9);
        let script = create_script(&schema).unwrap();
        assert!(script.contains("CREATE TYPE TypeVA_Subject AS VARRAY(100) OF VARCHAR(4000);"));
        assert!(script.contains("CREATE TYPE TypeVA_Professor AS VARRAY(100) OF Type_Professor;"));
        assert!(script.contains("CREATE TYPE Type_Student AS OBJECT ("), "{script}");
        assert!(script.contains("attrStudNr VARCHAR(4000)"));
        assert!(script.contains("attrCourse TypeVA_Course"));
        assert!(script.contains("CREATE TABLE TabUniversity OF Type_University"));
        // Root table NOT NULL on the mandatory StudyCourse.
        assert!(script.contains("attrStudyCourse NOT NULL"), "{script}");
    }

    #[test]
    fn generated_script_executes_on_oracle9_engine_verbatim() {
        let schema = schema_for(UNIVERSITY_DTD, "University", DbMode::Oracle9);
        let script = create_script(&schema).unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&script).unwrap();
        assert_eq!(db.catalog().table_count(), 1);
        assert!(db.catalog().type_count() >= 7);
        // Teardown script also runs verbatim.
        let teardown = drop_script(&schema);
        db.execute_script(&teardown).unwrap();
        assert_eq!(db.catalog().table_count(), 0);
        assert_eq!(db.catalog().type_count(), 0);
    }

    #[test]
    fn generated_oracle8_script_executes_on_oracle8_engine() {
        let schema = schema_for(UNIVERSITY_DTD, "University", DbMode::Oracle8);
        let script = create_script(&schema).unwrap();
        let mut db = Database::new(DbMode::Oracle8);
        db.execute_script(&script).unwrap();
        // Student/Course/Professor each got their own object table.
        assert!(db.catalog().table_count() >= 4, "{script}");
        // And the script must NOT contain nested collections of objects.
        assert!(!script.contains("VARRAY(100) OF Type_"), "{script}");
    }

    #[test]
    fn oracle9_script_fails_on_oracle8_engine() {
        // The §2.2 restriction, demonstrated end-to-end: the nested-
        // collection DDL generated for Oracle 9 is rejected by Oracle 8.
        let schema = schema_for(UNIVERSITY_DTD, "University", DbMode::Oracle9);
        let script = create_script(&schema).unwrap();
        let mut db = Database::new(DbMode::Oracle8);
        assert!(db.execute_script(&script).is_err());
    }

    #[test]
    fn recursive_schema_script_round_trips() {
        let schema = schema_for(
            r#"<!ELEMENT Professor (PName,Dept)>
               <!ELEMENT Dept (DName,Professor*)>
               <!ELEMENT PName (#PCDATA)> <!ELEMENT DName (#PCDATA)>"#,
            "Professor",
            DbMode::Oracle9,
        );
        let script = create_script(&schema).unwrap();
        // §6.2's shape: forward declaration, TABLE OF REF, aggregation.
        assert!(script.starts_with("CREATE TYPE Type_Professor;\n"), "{script}");
        assert!(script.contains("CREATE TYPE TabRefProfessor AS TABLE OF REF Type_Professor;"));
        assert!(script.contains("attrProfessor TabRefProfessor"));
        assert!(script.contains("attrDept Type_Dept"));
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&script).unwrap();
        db.execute_script(&drop_script(&schema)).unwrap();
    }

    #[test]
    fn attr_list_types_render_and_execute() {
        let schema = schema_for(
            r#"<!ELEMENT A (B)>
               <!ELEMENT B (#PCDATA)>
               <!ATTLIST B C CDATA #IMPLIED D CDATA #IMPLIED>"#,
            "A",
            DbMode::Oracle9,
        );
        let script = create_script(&schema).unwrap();
        assert!(script.contains("CREATE TYPE TypeAttrL_B AS OBJECT ("));
        assert!(script.contains("attrListB TypeAttrL_B"));
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&script).unwrap();
    }

    #[test]
    fn nested_table_style_renders_table_of() {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        let schema = generate_schema(
            &dtd,
            "University",
            DbMode::Oracle9,
            MappingOptions {
                collection_style: CollectionStyle::NestedTable,
                with_doc_id: false,
                ..Default::default()
            },
            &IdrefTargets::new(),
        )
        .unwrap();
        let script = create_script(&schema).unwrap();
        assert!(script.contains("CREATE TYPE Type_TabSubject AS TABLE OF VARCHAR(4000);"));
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&script).unwrap();
    }

    #[test]
    fn doc_id_column_becomes_primary_key() {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        let schema = generate_schema(
            &dtd,
            "University",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let script = create_script(&schema).unwrap();
        assert!(script.contains("IDUniversity PRIMARY KEY"), "{script}");
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&script).unwrap();
    }
}

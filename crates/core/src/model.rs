//! The mapped-schema model: the output of the Fig. 2 mapping algorithm and
//! the single source of truth shared by the DDL generator, the document
//! loader and the retriever.
//!
//! One [`ElementMapping`] exists per DTD element *type* (multi-parent
//! elements share it, as the paper shares object types). Each mapping lists
//! its generated database names and, field by field, where each database
//! attribute comes from in the XML document — the provenance that §5's
//! meta-table persists.

use std::collections::BTreeMap;

use xmlord_ordb::DbMode;

/// Why an element is stored in its own object table rather than embedded in
/// its parent's object value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableRootReason {
    /// The document's root element — always a table (§4.1).
    Root,
    /// Oracle 8 workaround: set-valued complex subelements cannot be
    /// collections of objects, so the subelement becomes an object table
    /// whose rows point back to the parent with a REF attribute (§4.2).
    Oracle8SetValuedComplex,
    /// Oracle 8 workaround cascade: a REF can only point to a row object,
    /// so the *parent* of a workaround child needs an object table too.
    Oracle8RefTarget,
    /// The element lies on a recursion cycle; the cycle is broken with
    /// REF-valued attributes pointing to the element's object table (§6.2).
    Recursion,
    /// The element carries an ID attribute that an IDREF in the document
    /// references; REF columns must be able to point at it (§4.4).
    IdTarget,
}

/// Where a database field's value comes from in the source document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldSource {
    /// The element's own `#PCDATA` text (simple elements with attributes,
    /// and the text of mixed-content elements).
    Text,
    /// A subelement with this XML name.
    ChildElement(String),
    /// An XML attribute with this name.
    XmlAttribute(String),
    /// The object type holding the full attribute list (§4.4's
    /// `TypeAttrL_…` field).
    AttrList,
    /// Synthetic unique identifier "introduced … for the sole purpose of
    /// simplifying the generation of INSERT operations" (§4.2).
    SyntheticId,
    /// Oracle 8 workaround: REF pointing at the parent element's row (§4.2).
    ParentRef(String),
}

/// Scalar database type of a text-bearing field.
///
/// The paper's DTD-based mapping only ever produces `VARCHAR(4000)` (§4.1 —
/// "there is no way to restrict the type of the table attributes"); the §7
/// future-work items add `CLOB` ("Large text elements should be assigned
/// the CLOB type") and real types from XML Schema ("which provides more
/// advanced concepts (such as element types)") — both are supported here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScalarType {
    Varchar(u32),
    Clob,
    Number,
    Date,
}

impl ScalarType {
    pub fn sql_text(&self) -> String {
        match self {
            ScalarType::Varchar(n) => format!("VARCHAR({n})"),
            ScalarType::Clob => "CLOB".to_string(),
            ScalarType::Number => "NUMBER".to_string(),
            ScalarType::Date => "DATE".to_string(),
        }
    }
}

/// The database type of a generated field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldKind {
    /// A scalar column (`VARCHAR(4000)` by default, §4.1).
    Scalar(ScalarType),
    /// Embedded object value of the named `Type_…`.
    Object(String),
    /// Collection (named collection type) of scalars.
    ScalarCollection(String),
    /// Collection (named collection type) of the named object type.
    ObjectCollection { collection: String, element_type: String },
    /// `REF Type_…`.
    Ref(String),
    /// Nested table of `REF Type_…` (collection type name + target type),
    /// the §6.2 device for set-valued recursive children.
    RefCollection { collection: String, target_type: String },
}

impl FieldKind {
    /// Render as SQL type text for DDL generation.
    pub fn sql_type_text(&self, _varchar_len: u32) -> String {
        match self {
            FieldKind::Scalar(t) => t.sql_text(),
            FieldKind::Object(t) => t.clone(),
            FieldKind::ScalarCollection(t) => t.clone(),
            FieldKind::ObjectCollection { collection, .. } => collection.clone(),
            FieldKind::Ref(t) => format!("REF {t}"),
            FieldKind::RefCollection { collection, .. } => collection.clone(),
        }
    }
}

/// One attribute of a generated object type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldMapping {
    /// Database attribute name (`attr…`, `attrList…`, `ID…`).
    pub db_name: String,
    pub source: FieldSource,
    pub kind: FieldKind,
    /// Paper terminology: may occur more than once (§4.2).
    pub set_valued: bool,
    /// May be absent — maps to a nullable column (§4.3).
    pub optional: bool,
}

/// Mapping of one XML attribute inside an attribute-list object (§4.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrFieldMapping {
    pub db_name: String,
    pub xml_attribute: String,
    pub required: bool,
    /// Scalar column type (VARCHAR(4000) unless an XML Schema hint says
    /// otherwise).
    pub scalar_type: ScalarType,
    /// Set when this is an IDREF attribute mapped to a REF column; names
    /// the target element.
    pub idref_target: Option<String>,
}

/// The `TypeAttrL_…` object generated for an element with more than one
/// XML attribute (§4.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrListMapping {
    pub type_name: String,
    pub fields: Vec<AttrFieldMapping>,
}

/// Complete mapping of one element type.
#[derive(Debug, Clone)]
pub struct ElementMapping {
    /// XML element type name.
    pub element: String,
    /// `(#PCDATA)`-only content (§4.1 "simple element").
    pub simple: bool,
    /// Mixed content — text plus elements. The paper lists mixed content
    /// among the known transformation problems; we store the concatenated
    /// text in a dedicated field and document the interleaving loss.
    pub mixed: bool,
    /// Generated `Type_…` object type; `None` for simple elements without
    /// attributes, which map to plain VARCHAR fields of their parents.
    pub object_type: Option<String>,
    /// Generated collection type wrapping this element when it occurs
    /// set-valued under a parent (`TypeVA_…` or `Type_Tab…`).
    pub collection_type: Option<String>,
    /// Generated nested-table-of-REF type (`TabRef…`, §6.2).
    pub ref_collection_type: Option<String>,
    /// Own object table (`Tab…`) when table-rooted.
    pub table: Option<String>,
    pub table_rooted: Option<TableRootReason>,
    /// Synthetic unique id field name (`ID…`) when table-rooted.
    pub synthetic_id: Option<String>,
    /// Scalar type of this element's own text (simple elements; defaults to
    /// `VARCHAR(varchar_len)`).
    pub scalar_type: ScalarType,
    /// Attribute-list object (§4.4), when the element has >1 XML attribute.
    pub attr_list: Option<AttrListMapping>,
    /// Fields of the object type, in declaration order. For simple
    /// elements without attributes this is empty.
    pub fields: Vec<FieldMapping>,
    /// Child element names in content-model order — used by the retriever
    /// to place Oracle 8 inverted children back at their original position.
    pub child_order: Vec<String>,
}

impl ElementMapping {
    /// The field fed by a given child element, if any.
    pub fn field_for_child(&self, child: &str) -> Option<&FieldMapping> {
        self.fields
            .iter()
            .find(|f| matches!(&f.source, FieldSource::ChildElement(c) if c == child))
    }

    /// The field fed by a given XML attribute (inlined attributes only).
    pub fn field_for_attribute(&self, attr: &str) -> Option<&FieldMapping> {
        self.fields
            .iter()
            .find(|f| matches!(&f.source, FieldSource::XmlAttribute(a) if a == attr))
    }

    pub fn text_field(&self) -> Option<&FieldMapping> {
        self.fields.iter().find(|f| f.source == FieldSource::Text)
    }
}

/// A NOT NULL constraint the mapping *wanted* but could not express because
/// the mandatory element sits inside an embedded object type or collection
/// (§4.3: "The provided modeling features of Oracle do not allow to define
/// NOT NULL constraints for subelements of complex element types…").
/// Collected so the drawback is observable (experiment E12).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnenforcedNotNull {
    /// Object type whose attribute should have been NOT NULL.
    pub type_name: String,
    pub field: String,
    pub reason: String,
}

/// Collection flavour for set-valued elements (§2.2 offers both; "In our
/// prototype, we chose the VARRAY collection type; nested tables work in
/// nearly the same manner").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectionStyle {
    Varray,
    NestedTable,
}

/// How element text is stored when no explicit type hint applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextStorage {
    /// `VARCHAR(varchar_len)` — the paper's §4.1 default, with its §7
    /// "restricted maximum length" drawback.
    Varchar,
    /// `CLOB` — the §7 recommendation for large text elements.
    Clob,
}

/// Per-name scalar type hints, typically derived from an XML Schema
/// (the paper's §7: "XML Schema … provides more advanced concepts (such as
/// element types)").
#[derive(Debug, Clone, Default)]
pub struct TypeHints {
    /// Element name → scalar type of its text.
    pub elements: BTreeMap<String, ScalarType>,
    /// (element name, attribute name) → scalar type.
    pub attributes: BTreeMap<(String, String), ScalarType>,
}

/// Knobs of the schema generator.
#[derive(Debug, Clone)]
pub struct MappingOptions {
    pub collection_style: CollectionStyle,
    /// VARRAY capacity (the paper's §4.2 example uses 100).
    pub varray_max: u32,
    /// Default scalar column width (§4.1 generates `VARCHAR(4000)`).
    pub varchar_len: u32,
    /// Add a `ID<Root>` document-id column to the root table so several
    /// documents of the same DTD can coexist and be retrieved separately —
    /// the same synthetic-identifier device §4.2 introduces, applied to the
    /// root.
    pub with_doc_id: bool,
    /// Map IDREF attributes to REF columns (§4.4); requires document
    /// knowledge to resolve targets.
    pub map_idrefs: bool,
    /// SchemaID suffix for all global names (§5).
    pub schema_id: Option<String>,
    /// Default storage for un-hinted element text (§7 CLOB extension).
    pub text_storage: TextStorage,
    /// Scalar type hints (XML Schema extension).
    pub type_hints: TypeHints,
}

impl Default for MappingOptions {
    fn default() -> Self {
        MappingOptions {
            collection_style: CollectionStyle::Varray,
            varray_max: 100,
            varchar_len: 4000,
            with_doc_id: true,
            map_idrefs: false,
            schema_id: None,
            text_storage: TextStorage::Varchar,
            type_hints: TypeHints::default(),
        }
    }
}

/// The generated object-relational schema for one DTD.
#[derive(Debug, Clone)]
pub struct MappedSchema {
    pub mode: DbMode,
    pub options: MappingOptions,
    pub root_element: String,
    /// Element name → mapping.
    pub elements: BTreeMap<String, ElementMapping>,
    /// Element names in type-creation order (dependencies first).
    pub creation_order: Vec<String>,
    /// Elements needing forward declarations (recursion, §6.2).
    pub forward_declared: Vec<String>,
    /// Name of the root table.
    pub root_table: String,
    /// Document-id column on the root table (when `with_doc_id`).
    pub doc_id_column: Option<String>,
    /// §4.3 drawbacks made visible.
    pub unenforced_not_null: Vec<UnenforcedNotNull>,
}

impl MappedSchema {
    pub fn mapping(&self, element: &str) -> Option<&ElementMapping> {
        self.elements.get(element)
    }

    /// All table-rooted element mappings.
    pub fn table_rooted(&self) -> impl Iterator<Item = &ElementMapping> {
        self.elements.values().filter(|m| m.table_rooted.is_some())
    }

    /// Count of generated object types (incl. attribute-list and collection
    /// types) — the fragmentation metric of experiment E8.
    pub fn generated_type_count(&self) -> usize {
        self.elements
            .values()
            .map(|m| {
                m.object_type.is_some() as usize
                    + m.collection_type.is_some() as usize
                    + m.ref_collection_type.is_some() as usize
                    + m.attr_list.is_some() as usize
            })
            .sum()
    }

    pub fn generated_table_count(&self) -> usize {
        self.elements.values().filter(|m| m.table.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_kind_sql_text() {
        assert_eq!(
            FieldKind::Scalar(ScalarType::Varchar(4000)).sql_type_text(4000),
            "VARCHAR(4000)"
        );
        assert_eq!(FieldKind::Scalar(ScalarType::Clob).sql_type_text(4000), "CLOB");
        assert_eq!(FieldKind::Scalar(ScalarType::Number).sql_type_text(4000), "NUMBER");
        assert_eq!(FieldKind::Object("Type_X".into()).sql_type_text(4000), "Type_X");
        assert_eq!(FieldKind::Ref("Type_X".into()).sql_type_text(4000), "REF Type_X");
        assert_eq!(
            FieldKind::ObjectCollection {
                collection: "TypeVA_X".into(),
                element_type: "Type_X".into()
            }
            .sql_type_text(4000),
            "TypeVA_X"
        );
    }

    #[test]
    fn default_options_match_the_paper() {
        let opts = MappingOptions::default();
        assert_eq!(opts.varchar_len, 4000); // §4.1
        assert_eq!(opts.varray_max, 100); // §4.2 example
        assert_eq!(opts.collection_style, CollectionStyle::Varray); // §4.2
    }

    #[test]
    fn element_mapping_field_lookup() {
        let m = ElementMapping {
            element: "Student".into(),
            simple: false,
            mixed: false,
            object_type: Some("Type_Student".into()),
            collection_type: None,
            ref_collection_type: None,
            table: None,
            table_rooted: None,
            synthetic_id: None,
            scalar_type: ScalarType::Varchar(4000),
            attr_list: None,
            child_order: vec!["LName".into()],
            fields: vec![
                FieldMapping {
                    db_name: "attrStudNr".into(),
                    source: FieldSource::XmlAttribute("StudNr".into()),
                    kind: FieldKind::Scalar(ScalarType::Varchar(4000)),
                    set_valued: false,
                    optional: false,
                },
                FieldMapping {
                    db_name: "attrLName".into(),
                    source: FieldSource::ChildElement("LName".into()),
                    kind: FieldKind::Scalar(ScalarType::Varchar(4000)),
                    set_valued: false,
                    optional: false,
                },
            ],
        };
        assert_eq!(m.field_for_child("LName").unwrap().db_name, "attrLName");
        assert_eq!(m.field_for_attribute("StudNr").unwrap().db_name, "attrStudNr");
        assert!(m.field_for_child("StudNr").is_none());
        assert!(m.text_field().is_none());
    }
}

//! Path queries over the object-relational schema.
//!
//! §4.1: "The object structure can be traversed using the dot notation
//! without executing join operations … tight correspondence with XPath
//! expressions." This module translates a simple XPath-like path (steps of
//! element names, optionally a final `@attribute`, optionally one equality
//! predicate) into the corresponding SELECT:
//!
//! * embedded single-valued steps → dot navigation,
//! * set-valued steps → `TABLE(…)` collection un-nesting,
//! * REF steps → implicit dereference in the path,
//! * Oracle 8 inverted steps → a join with the child's table on its
//!   back-pointing REF attribute.

use crate::error::MappingError;
use crate::model::{FieldKind, FieldSource, MappedSchema};

/// A parsed path query, e.g.
/// `University/Student/Course/Professor/PName[.= 'Jaeger']` is
/// `{ steps: [Student, Course, Professor, PName], predicate: … }` relative
/// to the mapped root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathQuery {
    /// Steps below the root element. A final step may be `@name` for an
    /// attribute.
    pub steps: Vec<String>,
    /// Optional equality predicate on another path below the root.
    pub predicate: Option<(Vec<String>, String)>,
}

impl PathQuery {
    /// Parse `"Student/Course/@CreditPts"` style text (no predicate).
    pub fn parse(text: &str) -> PathQuery {
        PathQuery {
            steps: text.split('/').filter(|s| !s.is_empty()).map(str::to_string).collect(),
            predicate: None,
        }
    }

    pub fn with_predicate(mut self, path: &str, value: &str) -> PathQuery {
        self.predicate = Some((
            path.split('/').filter(|s| !s.is_empty()).map(str::to_string).collect(),
            value.to_string(),
        ));
        self
    }
}

/// The generated SQL plus bookkeeping for the experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslatedQuery {
    pub sql: String,
    /// FROM items beyond the root table (TABLE() un-nestings + O8 joins).
    pub extra_from_items: usize,
    /// True relational joins (Oracle 8 inverted relationships).
    pub relational_joins: usize,
}

/// Translate a path query against a mapped schema. The predicate path
/// shares its common prefix with the result path, so set-valued steps
/// un-nest through the *same* `TABLE(…)` alias and the predicate is
/// correlated correctly.
///
/// Every generated equality — the user predicate (`alias.col = 'v'`) and
/// the Oracle 8 back-pointing joins (`alias.ref = REF(parent)`) — keeps a
/// bare two-part `alias.column` on one side, the shape the cost-based
/// planner matches against secondary indexes. With the [`index_script`]
/// DDL applied, translated path queries run as index probes instead of
/// full scans.
pub fn translate(schema: &MappedSchema, query: &PathQuery) -> Result<TranslatedQuery, MappingError> {
    let mut builder = Builder {
        schema,
        from: vec![format!("{} t0", schema.root_table)],
        where_clauses: Vec::new(),
        next_alias: 1,
        relational_joins: 0,
    };
    let root_cursor = Cursor { expr: "t0".to_string(), element: schema.root_element.clone() };
    let select_expr = match &query.predicate {
        None => builder.walk(root_cursor, &query.steps)?,
        Some((pred_path, value)) => {
            let shared = query
                .steps
                .iter()
                .zip(pred_path.iter())
                .take_while(|(a, b)| a == b)
                .count()
                .min(query.steps.len().saturating_sub(1))
                .min(pred_path.len().saturating_sub(1));
            let mut cursor = root_cursor;
            for step in &query.steps[..shared] {
                cursor = builder.advance(cursor, step)?;
            }
            let select_expr = builder.walk(cursor.clone(), &query.steps[shared..])?;
            let pred_expr = builder.walk(cursor, &pred_path[shared..])?;
            builder
                .where_clauses
                .push(format!("{pred_expr} = '{}'", value.replace('\'', "''")));
            select_expr
        }
    };
    let mut sql = format!("SELECT {select_expr} FROM {}", builder.from.join(", "));
    if !builder.where_clauses.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&builder.where_clauses.join(" AND "));
    }
    Ok(TranslatedQuery {
        sql,
        extra_from_items: builder.from.len() - 1,
        relational_joins: builder.relational_joins,
    })
}

/// DDL that accelerates translated path queries: one secondary index per
/// back-pointing REF column (the join keys every Oracle 8 inverted
/// relationship probes) plus an `ANALYZE` per object table so the
/// cost-based planner can order joins by cardinality. Run it *after*
/// loading documents — ANALYZE snapshots the current row counts.
pub fn index_script(schema: &MappedSchema) -> Vec<String> {
    let mut out = Vec::new();
    let mut n = 0usize;
    for mapping in schema.elements.values() {
        let Some(table) = &mapping.table else { continue };
        for field in &mapping.fields {
            if matches!(field.source, FieldSource::ParentRef(_)) {
                n += 1;
                // Oracle's 30-character identifier limit; the counter keeps
                // truncated names unique.
                let mut name = format!("Idx{n:02}{table}");
                name.truncate(30);
                out.push(format!("CREATE INDEX {name} ON {table} ({})", field.db_name));
            }
        }
        out.push(format!("ANALYZE TABLE {table} COMPUTE STATISTICS"));
    }
    out
}

/// Position while translating: a SQL expression plus the element it denotes.
#[derive(Debug, Clone)]
struct Cursor {
    expr: String,
    element: String,
}

struct Builder<'a> {
    schema: &'a MappedSchema,
    from: Vec<String>,
    where_clauses: Vec<String>,
    next_alias: u32,
    relational_joins: usize,
}

impl<'a> Builder<'a> {
    fn fresh_alias(&mut self) -> String {
        let alias = format!("t{}", self.next_alias);
        self.next_alias += 1;
        alias
    }

    /// Walk all steps from `cursor` and return the SQL expression of the
    /// final step's value.
    fn walk(&mut self, cursor: Cursor, steps: &[String]) -> Result<String, MappingError> {
        let Some((last, prefix)) = steps.split_last() else {
            return Ok(cursor.expr);
        };
        let mut cursor = cursor;
        for step in prefix {
            cursor = self.advance(cursor, step)?;
        }
        self.terminal(cursor, last)
    }

    /// Advance one *non-terminal* step (must lead to a complex element).
    fn advance(&mut self, cursor: Cursor, step: &str) -> Result<Cursor, MappingError> {
        let mapping = self
            .schema
            .mapping(&cursor.element)
            .ok_or_else(|| MappingError::UndeclaredElement(cursor.element.clone()))?;
        if let Some(field) = mapping.field_for_child(step) {
            let child_expr = format!("{}.{}", cursor.expr, field.db_name);
            return match &field.kind {
                FieldKind::Object(_) | FieldKind::Ref(_) => {
                    // Dot navigation — REFs dereference implicitly (§2.3).
                    Ok(Cursor { expr: child_expr, element: step.to_string() })
                }
                FieldKind::ObjectCollection { .. } => {
                    let alias = self.fresh_alias();
                    self.from.push(format!("TABLE({child_expr}) {alias}"));
                    Ok(Cursor { expr: alias, element: step.to_string() })
                }
                FieldKind::RefCollection { .. } => {
                    let alias = self.fresh_alias();
                    self.from.push(format!("TABLE({child_expr}) {alias}"));
                    // Collection elements are REFs → COLUMN_VALUE, then
                    // implicit dereference on further navigation.
                    Ok(Cursor {
                        expr: format!("{alias}.COLUMN_VALUE"),
                        element: step.to_string(),
                    })
                }
                FieldKind::Scalar(_) | FieldKind::ScalarCollection(_) => {
                    Err(MappingError::Unsupported(format!(
                        "<{step}> is a simple element; cannot continue path"
                    )))
                }
            };
        }
        // Oracle 8 inverted relationship: join the child's table on its
        // back-pointing REF (cursor.expr is a bare table alias then).
        if let Some(child_mapping) = self.schema.mapping(step) {
            let back_ref = child_mapping.fields.iter().find(
                |f| matches!(&f.source, FieldSource::ParentRef(p) if p == &cursor.element),
            );
            if let (Some(back_ref), Some(child_table)) = (back_ref, &child_mapping.table) {
                let alias = self.fresh_alias();
                self.from.push(format!("{child_table} {alias}"));
                self.where_clauses
                    .push(format!("{alias}.{} = REF({})", back_ref.db_name, cursor.expr));
                self.relational_joins += 1;
                return Ok(Cursor { expr: alias, element: step.to_string() });
            }
        }
        Err(MappingError::Unsupported(format!(
            "<{}> has no mapped child <{step}>",
            cursor.element
        )))
    }

    /// Resolve the final step to a value expression.
    fn terminal(&mut self, cursor: Cursor, step: &str) -> Result<String, MappingError> {
        let mapping = self
            .schema
            .mapping(&cursor.element)
            .ok_or_else(|| MappingError::UndeclaredElement(cursor.element.clone()))?;

        // Attribute step.
        if let Some(attr) = step.strip_prefix('@') {
            if let Some(field) = mapping.field_for_attribute(attr) {
                return Ok(format!("{}.{}", cursor.expr, field.db_name));
            }
            if let Some(attr_list) = &mapping.attr_list {
                let list_field = mapping
                    .fields
                    .iter()
                    .find(|f| f.source == FieldSource::AttrList)
                    .ok_or_else(|| {
                        MappingError::MalformedMapping(format!(
                            "<{}> has an attribute-list mapping but no attrList field",
                            cursor.element
                        ))
                    })?;
                if let Some(inner) = attr_list.fields.iter().find(|f| f.xml_attribute == attr) {
                    return Ok(format!(
                        "{}.{}.{}",
                        cursor.expr, list_field.db_name, inner.db_name
                    ));
                }
            }
            return Err(MappingError::Unsupported(format!(
                "<{}> has no attribute '{attr}'",
                cursor.element
            )));
        }

        if let Some(field) = mapping.field_for_child(step) {
            let child_expr = format!("{}.{}", cursor.expr, field.db_name);
            return match &field.kind {
                FieldKind::Scalar(_) | FieldKind::Object(_) | FieldKind::Ref(_) => Ok(child_expr),
                FieldKind::ScalarCollection(_) => {
                    let alias = self.fresh_alias();
                    self.from.push(format!("TABLE({child_expr}) {alias}"));
                    Ok(format!("{alias}.COLUMN_VALUE"))
                }
                FieldKind::ObjectCollection { .. } | FieldKind::RefCollection { .. } => {
                    let alias = self.fresh_alias();
                    self.from.push(format!("TABLE({child_expr}) {alias}"));
                    Ok(format!("{alias}.COLUMN_VALUE"))
                }
            };
        }
        // Oracle 8 inverted terminal: join and return the whole row alias.
        let cursor2 = self.advance(cursor, step)?;
        Ok(cursor2.expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddlgen::create_script;
    use crate::loader::load_script;
    use crate::model::MappingOptions;
    use crate::schemagen::{generate_schema, IdrefTargets};
    use xmlord_dtd::parse_dtd;
    use xmlord_ordb::{Database, DbMode, Value};

    const UNIVERSITY_DTD: &str = r#"
<!ELEMENT University (StudyCourse,Student*)>
<!ELEMENT Student (LName,FName,Course*)>
<!ATTLIST Student StudNr CDATA #REQUIRED>
<!ELEMENT Course (Name,Professor*,CreditPts?)>
<!ELEMENT Professor (PName,Subject+,Dept)>
<!ELEMENT LName (#PCDATA)> <!ELEMENT FName (#PCDATA)>
<!ELEMENT Name (#PCDATA)> <!ELEMENT PName (#PCDATA)>
<!ELEMENT Subject (#PCDATA)> <!ELEMENT Dept (#PCDATA)>
<!ELEMENT StudyCourse (#PCDATA)> <!ELEMENT CreditPts (#PCDATA)>
"#;

    const XML: &str = "<University><StudyCourse>CS</StudyCourse>\
<Student StudNr=\"1\"><LName>Conrad</LName><FName>M</FName>\
<Course><Name>DBS</Name><Professor><PName>Jaeger</PName><Subject>CAD</Subject>\
<Dept>CS</Dept></Professor></Course></Student></University>";

    fn loaded(mode: DbMode) -> (Database, MappedSchema) {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        let doc = xmlord_xml::parse(XML).unwrap();
        let schema = generate_schema(
            &dtd,
            "University",
            mode,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let mut db = Database::new(mode);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        for stmt in load_script(&schema, &dtd, &doc, "d").unwrap() {
            db.execute(&stmt).unwrap();
        }
        (db, schema)
    }

    #[test]
    fn simple_dot_navigation_has_no_extra_from_items() {
        let (mut db, schema) = loaded(DbMode::Oracle9);
        let q = PathQuery::parse("StudyCourse");
        let t = translate(&schema, &q).unwrap();
        assert_eq!(t.extra_from_items, 0);
        assert_eq!(t.relational_joins, 0);
        assert_eq!(db.query_scalar(&t.sql).unwrap(), Value::str("CS"));
    }

    #[test]
    fn paper_query_translates_and_runs_on_oracle9() {
        let (mut db, schema) = loaded(DbMode::Oracle9);
        // "Family names of students who subscribed to a course of
        // Professor Jaeger" (§4.1).
        let q = PathQuery::parse("Student/LName")
            .with_predicate("Student/Course/Professor/PName", "Jaeger");
        let t = translate(&schema, &q).unwrap();
        // No relational joins — the paper's claim.
        assert_eq!(t.relational_joins, 0);
        let rows = db.query(&t.sql).unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("Conrad")]]);
    }

    #[test]
    fn same_query_on_oracle8_needs_relational_joins() {
        let (mut db, schema) = loaded(DbMode::Oracle8);
        let q = PathQuery::parse("Student/LName")
            .with_predicate("Student/Course/Professor/PName", "Jaeger");
        let t = translate(&schema, &q).unwrap();
        assert!(t.relational_joins >= 2, "{t:?}");
        let rows = db.query(&t.sql).unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("Conrad")]]);
    }

    #[test]
    fn attribute_steps_resolve() {
        let (mut db, schema) = loaded(DbMode::Oracle9);
        let q = PathQuery::parse("Student/@StudNr");
        let t = translate(&schema, &q).unwrap();
        assert_eq!(db.query_scalar(&t.sql).unwrap(), Value::str("1"));
    }

    #[test]
    fn scalar_collection_terminal_step() {
        let (mut db, schema) = loaded(DbMode::Oracle9);
        let q = PathQuery::parse("Student/Course/Professor/Subject");
        let t = translate(&schema, &q).unwrap();
        let rows = db.query(&t.sql).unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("CAD")]]);
    }

    #[test]
    fn unknown_step_is_reported() {
        let (_, schema) = loaded(DbMode::Oracle9);
        let q = PathQuery::parse("Student/Bogus");
        assert!(matches!(
            translate(&schema, &q),
            Err(MappingError::Unsupported(_))
        ));
    }

    #[test]
    fn continuing_past_a_simple_element_is_an_error() {
        let (_, schema) = loaded(DbMode::Oracle9);
        let q = PathQuery::parse("StudyCourse/Deeper");
        assert!(translate(&schema, &q).is_err());
    }

    #[test]
    fn predicate_is_correlated_not_existential() {
        // Two students; only one attends a Jaeger course. An uncorrelated
        // translation would return both LNames.
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        let xml = "<University><StudyCourse>CS</StudyCourse>\
<Student StudNr=\"1\"><LName>Conrad</LName><FName>M</FName>\
<Course><Name>DBS</Name><Professor><PName>Jaeger</PName><Subject>CAD</Subject>\
<Dept>CS</Dept></Professor></Course></Student>\
<Student StudNr=\"2\"><LName>Meier</LName><FName>R</FName>\
<Course><Name>OS</Name><Professor><PName>Kudrass</PName><Subject>OS</Subject>\
<Dept>CS</Dept></Professor></Course></Student></University>";
        let doc = xmlord_xml::parse(xml).unwrap();
        for mode in [DbMode::Oracle9, DbMode::Oracle8] {
            let schema = generate_schema(
                &dtd,
                "University",
                mode,
                MappingOptions::default(),
                &IdrefTargets::new(),
            )
            .unwrap();
            let mut db = Database::new(mode);
            db.execute_script(&crate::ddlgen::create_script(&schema).unwrap()).unwrap();
            for stmt in crate::loader::load_script(&schema, &dtd, &doc, "d").unwrap() {
                db.execute(&stmt).unwrap();
            }
            let q = PathQuery::parse("Student/LName")
                .with_predicate("Student/Course/Professor/PName", "Jaeger");
            let t = translate(&schema, &q).unwrap();
            let rows = db.query(&t.sql).unwrap();
            assert_eq!(rows.rows, vec![vec![Value::str("Conrad")]], "{mode}: {}", t.sql);
        }
    }

    #[test]
    fn oracle8_path_predicates_become_index_probes() {
        let (mut db, schema) = loaded(DbMode::Oracle8);
        let q = PathQuery::parse("Student/LName")
            .with_predicate("Student/Course/Professor/PName", "Jaeger");
        let t = translate(&schema, &q).unwrap();
        let naive = db.query(&t.sql).unwrap();
        for stmt in index_script(&schema) {
            db.execute(&stmt).unwrap();
        }
        // The generated back-ref equalities are planner-matchable: the
        // plan now probes the REF indexes instead of scanning.
        let plan = db.query(&format!("EXPLAIN {}", t.sql)).unwrap();
        let lines: Vec<String> =
            plan.rows.iter().map(|r| r[0].as_str().unwrap().to_string()).collect();
        assert!(lines.iter().any(|l| l.contains("index probe")), "{lines:#?}");
        // Index-backed execution returns exactly the naive rows, with the
        // planner on and off.
        assert_eq!(db.query(&t.sql).unwrap(), naive);
        db.set_cost_planner(false);
        assert_eq!(db.query(&t.sql).unwrap(), naive);
    }

    #[test]
    fn parse_helper_splits_steps() {
        let q = PathQuery::parse("/Student/Course/@CreditPts");
        assert_eq!(q.steps, vec!["Student", "Course", "@CreditPts"]);
    }
}

//! Naming conventions for generated database objects — the paper's Table 1.
//!
//! | Convention             | Object semantics                                      |
//! |------------------------|-------------------------------------------------------|
//! | `TabElementname`       | Name of a table                                       |
//! | `attrElementname`      | DB attribute derived from a simple XML element        |
//! | `attrAttributename`    | DB attribute derived from an XML attribute            |
//! | `attrListElementname`  | DB attribute that represents an XML attribute list    |
//! | `IDElementname`        | Primary/foreign key attribute                         |
//! | `Type_Elementname`     | Object type derived from an element name              |
//! | `TypeAttrL_Elementname`| Object type generated for an attribute list           |
//! | `TypeVA_Elementname`   | Name of an array                                      |
//! | `OView_Elementname`    | Name of an object view                                |
//!
//! §5 adds three constraints this module enforces: generated names must not
//! collide with SQL keywords, must be unique (across documents, via the
//! SchemaID), and must respect Oracle's 30-character identifier limit.

use std::collections::BTreeSet;

use xmlord_ordb::ident::{is_reserved_word, MAX_IDENTIFIER_LEN};

/// The Table 1 prefix applied to a name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameKind {
    Table,
    AttrFromElement,
    AttrFromAttribute,
    AttrList,
    IdAttr,
    ObjectType,
    AttrListType,
    VarrayType,
    ObjectView,
}

impl NameKind {
    pub fn prefix(self) -> &'static str {
        match self {
            NameKind::Table => "Tab",
            NameKind::AttrFromElement | NameKind::AttrFromAttribute => "attr",
            NameKind::AttrList => "attrList",
            NameKind::IdAttr => "ID",
            NameKind::ObjectType => "Type_",
            NameKind::AttrListType => "TypeAttrL_",
            NameKind::VarrayType => "TypeVA_",
            NameKind::ObjectView => "OView_",
        }
    }
}

/// Allocates unique, keyword-safe, length-bounded identifiers following the
/// Table 1 conventions. One generator is used per generated schema; the
/// optional `schema_id` ("SchemaIDs are necessary to deal with identical
/// element names from different DTDs", §5) is appended to every *global*
/// name (types, tables, views).
#[derive(Debug, Clone, Default)]
pub struct NameGenerator {
    schema_id: Option<String>,
    used: BTreeSet<String>,
}

impl NameGenerator {
    pub fn new() -> NameGenerator {
        NameGenerator::default()
    }

    /// Generator with a schema identifier suffix, e.g. `S1`.
    pub fn with_schema_id(schema_id: &str) -> NameGenerator {
        NameGenerator { schema_id: Some(schema_id.to_string()), used: BTreeSet::new() }
    }

    pub fn schema_id(&self) -> Option<&str> {
        self.schema_id.as_deref()
    }

    /// Generate the conventional name for `xml_name`, guaranteed unique
    /// among all names this generator has produced.
    ///
    /// Attribute-level names (`attr…`, `attrList…`, `ID…`) are unique only
    /// *within* their owning type, so callers pass a fresh `scope` for each
    /// type; global names (tables, types, views) use [`Self::global`].
    pub fn global(&mut self, kind: NameKind, xml_name: &str) -> String {
        let raw = self.conventional(kind, xml_name, true);
        let name = self.uniquify(&raw);
        self.used.insert(name.to_uppercase());
        name
    }

    /// Generate a column/attribute-level name unique within `scope`.
    pub fn scoped(
        &self,
        kind: NameKind,
        xml_name: &str,
        scope: &mut BTreeSet<String>,
    ) -> String {
        let raw = self.conventional(kind, xml_name, false);
        let mut candidate = raw.clone();
        let mut counter = 2;
        while scope.contains(&candidate.to_uppercase()) || is_reserved_word(&candidate) {
            candidate = truncate_with_suffix(&raw, &counter.to_string());
            counter += 1;
        }
        scope.insert(candidate.to_uppercase());
        candidate
    }

    /// The raw Table 1 name (prefix + sanitized element name + optional
    /// schema id), truncated to the identifier limit — before uniqueness.
    pub fn conventional(&self, kind: NameKind, xml_name: &str, with_schema_id: bool) -> String {
        let sanitized = sanitize(xml_name);
        let mut name = format!("{}{}", kind.prefix(), sanitized);
        if with_schema_id {
            if let Some(id) = &self.schema_id {
                name = truncate_with_suffix(&name, &format!("_{id}"));
            }
        }
        if name.len() > MAX_IDENTIFIER_LEN {
            name = truncate_bytes(&name, MAX_IDENTIFIER_LEN).to_string();
        }
        // Prefixes make keyword collisions impossible in practice, but stay
        // safe for exotic cases.
        if is_reserved_word(&name) {
            name = truncate_with_suffix(&name, "_X");
        }
        name
    }

    fn uniquify(&self, raw: &str) -> String {
        if !self.used.contains(&raw.to_uppercase()) && !is_reserved_word(raw) {
            return raw.to_string();
        }
        let mut counter = 2;
        loop {
            let candidate = truncate_with_suffix(raw, &counter.to_string());
            if !self.used.contains(&candidate.to_uppercase()) {
                return candidate;
            }
            counter += 1;
        }
    }
}

/// Replace characters illegal in SQL identifiers (`-`, `.`, `:` appear in
/// XML names) with underscores.
pub fn sanitize(xml_name: &str) -> String {
    xml_name
        .chars()
        .map(|c| if c.is_alphanumeric() || c == '_' || c == '$' || c == '#' { c } else { '_' })
        .collect()
}

/// Append `suffix`, truncating the base so the result fits the limit.
/// The limit is in *bytes* (what the catalog enforces), so multi-byte
/// sanitized names must be cut on a char boundary, not by char count.
fn truncate_with_suffix(base: &str, suffix: &str) -> String {
    let max_base = MAX_IDENTIFIER_LEN.saturating_sub(suffix.len());
    let mut out = truncate_bytes(base, max_base).to_string();
    out.push_str(suffix);
    out
}

/// Longest prefix of `s` that fits in `max` bytes, on a char boundary.
fn truncate_bytes(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_conventions_exactly() {
        let mut names = NameGenerator::new();
        assert_eq!(names.global(NameKind::Table, "University"), "TabUniversity");
        assert_eq!(names.global(NameKind::ObjectType, "Professor"), "Type_Professor");
        assert_eq!(names.global(NameKind::VarrayType, "Subject"), "TypeVA_Subject");
        assert_eq!(names.global(NameKind::AttrListType, "B"), "TypeAttrL_B");
        assert_eq!(names.global(NameKind::ObjectView, "University"), "OView_University");
        let mut scope = BTreeSet::new();
        assert_eq!(names.scoped(NameKind::AttrFromElement, "LName", &mut scope), "attrLName");
        assert_eq!(names.scoped(NameKind::AttrFromAttribute, "StudNr", &mut scope), "attrStudNr");
        assert_eq!(names.scoped(NameKind::AttrList, "B", &mut scope), "attrListB");
        assert_eq!(names.scoped(NameKind::IdAttr, "Professor", &mut scope), "IDProfessor");
    }

    #[test]
    fn schema_id_suffixes_global_names() {
        let mut names = NameGenerator::with_schema_id("S1");
        assert_eq!(names.global(NameKind::Table, "University"), "TabUniversity_S1");
        assert_eq!(names.global(NameKind::ObjectType, "Course"), "Type_Course_S1");
    }

    #[test]
    fn identical_element_names_get_distinct_db_names() {
        let mut names = NameGenerator::new();
        let a = names.global(NameKind::ObjectType, "Address");
        let b = names.global(NameKind::ObjectType, "Address");
        assert_eq!(a, "Type_Address");
        assert_eq!(b, "Type_Address2");
        assert_ne!(a.to_uppercase(), b.to_uppercase());
    }

    #[test]
    fn uniqueness_is_case_insensitive_like_oracle() {
        let mut names = NameGenerator::new();
        let a = names.global(NameKind::ObjectType, "course");
        let b = names.global(NameKind::ObjectType, "COURSE");
        assert_ne!(a.to_uppercase(), b.to_uppercase());
    }

    #[test]
    fn thirty_char_limit_respected_with_long_element_names() {
        let mut names = NameGenerator::with_schema_id("S99");
        let long = "AnExtremelyLongElementNameFromSomeVerboseSchema";
        let name = names.global(NameKind::AttrListType, long);
        assert!(name.len() <= MAX_IDENTIFIER_LEN, "{name} too long");
        // And a second one must still be unique despite truncation.
        let name2 = names.global(NameKind::AttrListType, long);
        assert!(name2.len() <= MAX_IDENTIFIER_LEN);
        assert_ne!(name.to_uppercase(), name2.to_uppercase());
    }

    #[test]
    fn scoped_names_dodge_keywords_and_collisions() {
        let names = NameGenerator::new();
        let mut scope = BTreeSet::new();
        // Two XML names that sanitize to the same SQL identifier.
        let a = names.scoped(NameKind::AttrFromElement, "my-name", &mut scope);
        let b = names.scoped(NameKind::AttrFromElement, "my.name", &mut scope);
        assert_eq!(a, "attrmy_name");
        assert_ne!(a.to_uppercase(), b.to_uppercase());
    }

    #[test]
    fn sanitize_replaces_xml_punctuation() {
        assert_eq!(sanitize("ns:element"), "ns_element");
        assert_eq!(sanitize("a-b.c"), "a_b_c");
        assert_eq!(sanitize("Straße"), "Straße"); // alphanumerics kept
    }

    #[test]
    fn order_element_does_not_collide_with_keyword() {
        // §5: "element names may conflict with SQL keywords (e.g., ORDER)" —
        // prefixes save the day; the generated name is not a keyword.
        let mut names = NameGenerator::new();
        let t = names.global(NameKind::Table, "Order");
        assert_eq!(t, "TabOrder");
        assert!(!xmlord_ordb::ident::is_reserved_word(&t));
    }

    #[test]
    fn separate_scopes_allow_same_attr_names() {
        let names = NameGenerator::new();
        let mut scope_a = BTreeSet::new();
        let mut scope_b = BTreeSet::new();
        let a = names.scoped(NameKind::AttrFromElement, "Name", &mut scope_a);
        let b = names.scoped(NameKind::AttrFromElement, "Name", &mut scope_b);
        assert_eq!(a, b); // same convention, different types — no clash
    }
}

//! maplint level 2: lints over a [`MappedSchema`] and the catalog-drift
//! checker.
//!
//! The DTD level (`xmlord_dtd::lint`) judges the *input*; this module
//! judges the *derivation*: the generated names, types and constraints of
//! one mapped schema, plus whether the live engine catalog still matches
//! it. Diagnostics anchor into the schema's own CREATE script (regenerated
//! via [`create_script`]) so the rustc-style renderer points at the exact
//! `CREATE TYPE`/`CREATE TABLE` line a finding concerns.
//!
//! Severity follows the workspace-wide differential guarantee: **Error**
//! only where executing the pipeline is guaranteed to fail (the engine's
//! eager, data-independent checks — duplicate global names, unknown REF
//! targets, missing catalog objects), **Warning** for lossy or
//! data-dependent findings (unenforced NOT NULL, VARCHAR capacity,
//! collection order).

use std::collections::BTreeMap;

use xmlord_diag::{Diagnostic, Severity, Span};
use xmlord_ordb::catalog::{Catalog, TableDef};
use xmlord_ordb::ident::Ident;

use crate::ddlgen::create_script;
use crate::error::MappingError;
use crate::model::{CollectionStyle, FieldKind, FieldSource, MappedSchema, ScalarType};
use crate::naming;

/// A maplint report: diagnostics plus the source text their spans index.
#[derive(Debug, Clone)]
pub struct MapLintReport {
    /// The regenerated CREATE script the spans anchor into.
    pub source: String,
    pub diagnostics: Vec<Diagnostic>,
}

impl MapLintReport {
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Render every diagnostic rustc-style against the report's source.
    pub fn render(&self, source_name: &str) -> String {
        self.diagnostics.iter().map(|d| d.render(&self.source, source_name)).collect::<Vec<_>>().join("\n")
    }
}

/// First occurrence of identifier `name` in `script`, as a character span.
/// Zero-length span at the start when the name never appears (e.g. a
/// mapping invariant broken before DDL rendering).
fn anchor(script: &str, name: &str) -> Span {
    if name.is_empty() {
        return Span::at(0);
    }
    let mut from = 0usize;
    while let Some(rel) = script[from..].find(name) {
        let byte = from + rel;
        let end = byte + name.len();
        let before_ok =
            byte == 0 || !script[..byte].chars().next_back().is_some_and(is_ident_char);
        let after_ok = !script[end..].chars().next().is_some_and(is_ident_char);
        if before_ok && after_ok {
            let start = script[..byte].chars().count();
            return Span::new(start, start + name.chars().count());
        }
        from = end;
    }
    Span::at(0)
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '$' || c == '#'
}

/// Lint catalog, level 2 (IDs are stable; see DESIGN.md §5i):
///
/// | code | finding | severity |
/// |------|---------|----------|
/// | `MAP010 duplicate-global-name` | two generated global names collide (case-insensitive) | Error |
/// | `MAP011 illegal-identifier` | a generated name is reserved/over-long/illegal | Error |
/// | `MAP012 duplicate-field-name` | duplicate attribute inside one object type | Warning |
/// | `MAP020 attrlist-mismatch` | attrList field without mapping (Error: unknown type in DDL) or mapping without field (Warning: attributes silently dropped) | Error/Warning |
/// | `MAP021 ref-unknown-target` | REF column targets a type no element provides | Error |
/// | `MAP030 unenforced-not-null` | §4.3: NOT NULL inexpressible for inner attributes | Warning |
/// | `MAP031 varchar-capacity` | hinted VARCHAR narrower than the default — loads can overflow | Warning |
/// | `MAP032 order-loss` | nested-table collections do not preserve document order | Warning |
/// | `MAP033 name-mangled` | XML name sanitized: distinct XML names can collide | Warning |
pub fn lint_schema(schema: &MappedSchema) -> Result<MapLintReport, MappingError> {
    let script = create_script(schema)?;
    let mut diags: Vec<Diagnostic> = Vec::new();

    // ---- MAP010/MAP011: the global namespace (types + tables share it).
    let mut globals: BTreeMap<String, (String, &str)> = BTreeMap::new();
    let mut check_global = |name: &str, what: &'static str, diags: &mut Vec<Diagnostic>| {
        if Ident::new(name).is_err() {
            diags.push(Diagnostic {
                severity: Severity::Error,
                code: "MAP011",
                message: format!("generated {what} name '{name}' is not a legal identifier (reserved word, too long, or illegal characters): the engine rejects the DDL"),
                span: anchor(&script, name),
            });
        }
        if let Some((other, other_what)) = globals.get(&name.to_uppercase()) {
            diags.push(Diagnostic {
                severity: Severity::Error,
                code: "MAP010",
                message: format!("generated {what} name '{name}' collides with {other_what} '{other}' (identifiers are case-insensitive): the engine rejects the second CREATE with DuplicateName"),
                span: anchor(&script, name),
            });
        } else {
            globals.insert(name.to_uppercase(), (name.to_string(), what));
        }
    };
    for element in &schema.creation_order {
        let m = &schema.elements[element];
        if let Some(al) = &m.attr_list {
            check_global(&al.type_name, "attribute-list type", &mut diags);
        }
        if let Some(t) = &m.object_type {
            check_global(t, "object type", &mut diags);
        }
        if let Some(t) = &m.collection_type {
            check_global(t, "collection type", &mut diags);
        }
        if let Some(t) = &m.ref_collection_type {
            check_global(t, "REF collection type", &mut diags);
        }
        if let Some(t) = &m.table {
            check_global(t, "table", &mut diags);
        }
    }

    // The set of object types some element actually generates (REF targets
    // must come from here — only row objects of these types exist).
    let provided_types: BTreeMap<String, &str> = schema
        .elements
        .values()
        .filter_map(|m| m.object_type.as_deref().map(|t| (t.to_uppercase(), m.element.as_str())))
        .collect();

    for element in &schema.creation_order {
        let m = &schema.elements[element];

        // ---- MAP012: duplicate attribute names within one object type.
        let mut seen: BTreeMap<String, String> = BTreeMap::new();
        for f in &m.fields {
            if let Some(other) = seen.insert(f.db_name.to_uppercase(), f.db_name.clone()) {
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "MAP012",
                    message: format!("object type of <{element}> declares attribute '{}' twice (also as '{other}'): the engine accepts the DDL but lookups resolve to one of them arbitrarily", f.db_name),
                    span: anchor(&script, &f.db_name),
                });
            }
        }

        // ---- MAP020: attrList field/mapping invariant.
        let has_attr_list_field = m.fields.iter().any(|f| f.source == FieldSource::AttrList);
        match (&m.attr_list, has_attr_list_field) {
            (None, true) => diags.push(Diagnostic {
                severity: Severity::Error,
                code: "MAP020",
                message: format!("<{element}> has an attrList field but no attribute-list mapping: the field's type is never created and the load aborts with MalformedMapping"),
                span: anchor(&script, m.object_type.as_deref().unwrap_or("")),
            }),
            (Some(al), false) if m.object_type.is_some() => diags.push(Diagnostic {
                severity: Severity::Warning,
                code: "MAP020",
                message: format!("<{element}> has attribute-list mapping {} but no attrList field: its XML attributes are silently dropped on load", al.type_name),
                span: anchor(&script, &al.type_name),
            }),
            _ => {}
        }

        // ---- MAP021: REF columns must target a provided object type.
        for f in &m.fields {
            let target = match &f.kind {
                FieldKind::Ref(t) => Some(t),
                FieldKind::RefCollection { target_type, .. } => Some(target_type),
                _ => None,
            };
            if let Some(t) = target {
                if !provided_types.contains_key(&t.to_uppercase()) {
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        code: "MAP021",
                        message: format!("field '{}' of <{element}> is REF {t}, but no element maps to object type {t}: the engine rejects the DDL with UnknownType", f.db_name),
                        span: anchor(&script, &f.db_name),
                    });
                }
            }
        }
        if let Some(al) = &m.attr_list {
            for f in &al.fields {
                if let Some(target_element) = &f.idref_target {
                    let ok = schema
                        .elements
                        .get(target_element)
                        .is_some_and(|t| t.object_type.is_some() && t.table.is_some());
                    if !ok {
                        diags.push(Diagnostic {
                            severity: Severity::Error,
                            code: "MAP021",
                            message: format!("IDREF attribute '{}' of <{element}> targets <{target_element}>, which has no object table to REF into", f.xml_attribute),
                            span: anchor(&script, &f.db_name),
                        });
                    }
                }
            }
        }

        // ---- MAP031: hinted VARCHAR narrower than the default.
        for f in &m.fields {
            if let FieldKind::Scalar(ScalarType::Varchar(n)) = &f.kind {
                if *n < schema.options.varchar_len {
                    diags.push(Diagnostic {
                        severity: Severity::Warning,
                        code: "MAP031",
                        message: format!("field '{}' of <{element}> is VARCHAR({n}) (narrower than the default {}): longer text fails at load time", f.db_name, schema.options.varchar_len),
                        span: anchor(&script, &f.db_name),
                    });
                }
            }
        }

        // ---- MAP032: nested tables lose document order.
        if schema.options.collection_style == CollectionStyle::NestedTable {
            if let Some(t) = &m.collection_type {
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "MAP032",
                    message: format!("collection {t} is a nested table: unlike a VARRAY it does not preserve document order of <{element}> occurrences (§4.2)"),
                    span: anchor(&script, t),
                });
            }
        }

        // ---- MAP033: sanitized names can collide across XML names.
        if naming::sanitize(element) != *element {
            let display = m
                .object_type
                .as_deref()
                .or(m.table.as_deref())
                .unwrap_or(element);
            diags.push(Diagnostic {
                severity: Severity::Warning,
                code: "MAP033",
                message: format!("XML name '{element}' contains characters illegal in SQL identifiers; it is sanitized to '{}' in generated names — distinct XML names can sanitize to the same identifier (uniqueness is restored by numeric suffixes)", naming::sanitize(element)),
                span: anchor(&script, display),
            });
        }
    }

    // ---- MAP030: §4.3 unenforced NOT NULLs recorded by schemagen.
    for u in &schema.unenforced_not_null {
        diags.push(Diagnostic {
            severity: Severity::Warning,
            code: "MAP030",
            message: format!("NOT NULL on {}.{} cannot be enforced: {}", u.type_name, u.field, u.reason),
            span: anchor(&script, &u.field),
        });
    }

    Ok(MapLintReport { source: script, diagnostics: diags })
}

/// Catalog-drift checker: diff `schema` against the live `catalog`.
///
/// Every finding is an **Error** — each one reproduces as a runtime
/// failure (`InconsistentMapping`, unknown table/type, or constructor
/// arity mismatch) the moment a document is stored or retrieved through
/// the drifted mapping:
///
/// | code | drift |
/// |------|-------|
/// | `DRIFT001 missing-table` | mapped table absent from the catalog |
/// | `DRIFT002 table-kind` | table exists but is not an object table of the mapped type |
/// | `DRIFT003 missing-type` | mapped type absent from the catalog |
/// | `DRIFT004 column-drift` | object type attributes disagree with the mapped fields |
pub fn check_catalog_drift(
    schema: &MappedSchema,
    catalog: &Catalog,
) -> Result<MapLintReport, MappingError> {
    let script = create_script(schema)?;
    let mut diags: Vec<Diagnostic> = Vec::new();

    for element in &schema.creation_order {
        let m = &schema.elements[element];

        for type_name in [
            m.object_type.as_deref(),
            m.collection_type.as_deref(),
            m.ref_collection_type.as_deref(),
            m.attr_list.as_ref().map(|al| al.type_name.as_str()),
        ]
        .into_iter()
        .flatten()
        {
            let Some(def) = catalog.get_type(&Ident::internal(type_name)) else {
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    code: "DRIFT003",
                    message: format!("mapped type {type_name} (element <{element}>) does not exist in the catalog: loads and retrievals through this mapping fail"),
                    span: anchor(&script, type_name),
                });
                continue;
            };
            // Column drift only checks the element's own object type — the
            // constructor the loader emits must match it positionally.
            if Some(type_name) == m.object_type.as_deref() && !def.is_incomplete() {
                let attrs = def.object_attrs();
                let mapped: Vec<&str> = m.fields.iter().map(|f| f.db_name.as_str()).collect();
                let actual: Vec<&str> = attrs.iter().map(|(n, _)| n.as_str()).collect();
                let same = mapped.len() == actual.len()
                    && mapped
                        .iter()
                        .zip(&actual)
                        .all(|(a, b)| a.to_uppercase() == b.to_uppercase());
                if !same {
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        code: "DRIFT004",
                        message: format!(
                            "object type {type_name} has attributes ({}) in the catalog but the mapping of <{element}> expects ({}): the loader's constructor calls fail",
                            actual.join(", "),
                            mapped.join(", ")
                        ),
                        span: anchor(&script, type_name),
                    });
                }
            }
        }

        if let Some(table) = &m.table {
            match catalog.get_table(&Ident::internal(table)) {
                None => diags.push(Diagnostic {
                    severity: Severity::Error,
                    code: "DRIFT001",
                    message: format!("mapped table {table} (element <{element}>) does not exist in the catalog: every INSERT and SELECT against it fails"),
                    span: anchor(&script, table),
                }),
                Some(TableDef::Object { of_type, .. }) => {
                    if let Some(expected) = &m.object_type {
                        if !of_type.eq_str(expected) {
                            diags.push(Diagnostic {
                                severity: Severity::Error,
                                code: "DRIFT002",
                                message: format!("table {table} is an object table of {}, but the mapping of <{element}> expects {expected}: stored rows are inconsistent with the mapping", of_type.as_str()),
                                span: anchor(&script, table),
                            });
                        }
                    }
                }
                Some(TableDef::Relational { .. }) => diags.push(Diagnostic {
                    severity: Severity::Error,
                    code: "DRIFT002",
                    message: format!("table {table} exists but is a relational table, not an object table of {}: the loader's object constructors fail against it", m.object_type.as_deref().unwrap_or("the mapped type")),
                    span: anchor(&script, table),
                }),
            }
        }
    }

    Ok(MapLintReport { source: script, diagnostics: diags })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MappingOptions;
    use crate::schemagen::{generate_schema, IdrefTargets};
    use xmlord_dtd::parse_dtd;
    use xmlord_ordb::{Database, DbMode};

    const UNIVERSITY_DTD: &str = r#"
<!ELEMENT University (StudyCourse,Student*)>
<!ELEMENT Student (LName)>
<!ATTLIST Student StudNr CDATA #REQUIRED>
<!ELEMENT LName (#PCDATA)>
<!ELEMENT StudyCourse (#PCDATA)>
"#;

    fn schema() -> MappedSchema {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        generate_schema(
            &dtd,
            "University",
            DbMode::Oracle9,
            MappingOptions { with_doc_id: false, ..Default::default() },
            &IdrefTargets::new(),
        )
        .unwrap()
    }

    #[test]
    fn generated_schema_is_clean() {
        let report = lint_schema(&schema()).unwrap();
        assert_eq!(report.error_count(), 0, "{}", report.render("university.sql"));
    }

    #[test]
    fn hand_broken_ref_target_is_an_error_and_the_ddl_fails() {
        let mut s = schema();
        let m = s.elements.get_mut("Student").unwrap();
        m.fields.push(crate::model::FieldMapping {
            db_name: "attrGhost".into(),
            source: FieldSource::ChildElement("Ghost".into()),
            kind: FieldKind::Ref("Type_Ghost".into()),
            set_valued: false,
            optional: true,
        });
        let report = lint_schema(&s).unwrap();
        assert!(report.diagnostics.iter().any(|d| d.code == "MAP021" && d.severity == Severity::Error), "{}", report.render("s.sql"));
        // Differential: the engine indeed rejects the generated DDL.
        let script = create_script(&s).unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        assert!(db.execute_script(&script).is_err());
    }

    #[test]
    fn forced_name_collision_is_an_error_and_the_ddl_fails() {
        let mut s = schema();
        // Collide the Student table with the University table.
        let m = s.elements.get_mut("Student").unwrap();
        m.table = Some("TabUniversity".into());
        let report = lint_schema(&s).unwrap();
        assert!(report.diagnostics.iter().any(|d| d.code == "MAP010"), "{}", report.render("s.sql"));
        let script = create_script(&s).unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        assert!(db.execute_script(&script).is_err());
    }

    #[test]
    fn unenforced_not_null_surfaces_as_warning() {
        let dtd = parse_dtd(
            r#"<!ELEMENT A (B*)> <!ELEMENT B (C)> <!ELEMENT C (#PCDATA)>"#,
        )
        .unwrap();
        let s = generate_schema(
            &dtd,
            "A",
            DbMode::Oracle9,
            MappingOptions { with_doc_id: false, ..Default::default() },
            &IdrefTargets::new(),
        )
        .unwrap();
        if s.unenforced_not_null.is_empty() {
            return; // schema variant without the drawback — nothing to check
        }
        let report = lint_schema(&s).unwrap();
        assert!(report.diagnostics.iter().any(|d| d.code == "MAP030"));
        assert_eq!(report.error_count(), 0);
    }

    #[test]
    fn drift_checker_is_quiet_on_a_fresh_catalog_and_loud_after_drop() {
        let s = schema();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&create_script(&s).unwrap()).unwrap();
        let clean = check_catalog_drift(&s, &db.catalog()).unwrap();
        assert_eq!(clean.error_count(), 0, "{}", clean.render("drift.sql"));

        db.execute("DROP TABLE TabUniversity").unwrap();
        let drifted = check_catalog_drift(&s, &db.catalog()).unwrap();
        assert!(drifted.diagnostics.iter().any(|d| d.code == "DRIFT001"));
        // Differential: the load path indeed fails against the drifted DB.
        assert!(db.execute("INSERT INTO TabUniversity VALUES (Type_University('x', NULL))").is_err());
    }

    #[test]
    fn drift_checker_reports_column_drift() {
        let s = schema();
        let mut db = Database::new(DbMode::Oracle9);
        // Recreate the Student type with a different attribute list.
        let mut script = create_script(&s).unwrap();
        script = script.replace(
            "CREATE TYPE Type_Student AS OBJECT (\n    attrStudNr VARCHAR(4000),\n    attrLName VARCHAR(4000)\n);",
            "CREATE TYPE Type_Student AS OBJECT (\n    attrStudNr VARCHAR(4000)\n);",
        );
        db.execute_script(&script).unwrap();
        let drifted = check_catalog_drift(&s, &db.catalog()).unwrap();
        assert!(
            drifted.diagnostics.iter().any(|d| d.code == "DRIFT004"),
            "{}",
            drifted.render("drift.sql")
        );
    }

    #[test]
    fn anchors_point_into_the_create_script() {
        let s = schema();
        let report = lint_schema(&s).unwrap();
        for d in &report.diagnostics {
            assert!(d.span.end <= report.source.chars().count());
        }
        let span = anchor("CREATE TABLE TabX OF Type_X;", "Type_X");
        assert_eq!((span.start, span.end), (21, 27));
        // Whole-word matching: `Type_X` must not anchor inside `Type_XY`.
        let span2 = anchor("CREATE TYPE Type_XY;\nCREATE TABLE T OF Type_X;", "Type_X");
        assert_eq!(span2.start, 39);
    }
}

//! # xml2ordb — management of XML documents in an object-relational database
//!
//! The **core contribution** of the reproduction of *Kudrass & Conrad,
//! "Management of XML Documents in Object-Relational Databases" (EDBT 2002
//! Workshops, LNCS 2490, pp. 210–227)*: the paper's `XML2Oracle` utility as
//! a Rust library.
//!
//! The pipeline mirrors the paper's architecture (Fig. 1):
//!
//! 1. an XML parser checks well-formedness and builds the document DOM
//!    (`xmlord-xml`),
//! 2. a DTD parser builds the DTD tree and the document is validated
//!    (`xmlord-dtd`),
//! 3. [`schemagen`] runs the Fig. 2 mapping algorithm over the DTD and
//!    produces a [`model::MappedSchema`],
//! 4. [`ddlgen`] renders it as a SQL script ("executed afterwards without
//!    any modification", §4) for the object-relational engine
//!    (`xmlord-ordb`),
//! 5. [`loader`] turns a document into INSERT statements — a *single*
//!    nested INSERT per document in Oracle 9 mode (§4.1/§4.2),
//! 6. [`metadata`] maintains the §5 meta-tables (document catalog, name
//!    provenance, namespaces, entities),
//! 7. [`retriever`] reconstructs the XML document from the database,
//!    restoring entity references from the meta-data (§6.1),
//! 8. [`pathquery`] translates path queries to the dot-notation SELECTs of
//!    §4.1, and [`views`] builds the §6.3 object views over a shredded
//!    relational schema.
//!
//! [`pipeline::Xml2OrDb`] ties all of it together:
//!
//! ```
//! use xml2ordb::pipeline::Xml2OrDb;
//! use xmlord_ordb::DbMode;
//!
//! let dtd = "<!ELEMENT note (to,body)> <!ELEMENT to (#PCDATA)> <!ELEMENT body (#PCDATA)>";
//! let xml = "<note><to>Ada</to><body>hi</body></note>";
//!
//! let mut system = Xml2OrDb::new(DbMode::Oracle9);
//! system.register_dtd("note-dtd", dtd, "note").unwrap();
//! let doc_id = system.store_document("note-dtd", xml).unwrap();
//! let restored = system.retrieve_document(&doc_id).unwrap();
//! assert!(restored.contains("<to>Ada</to>"));
//! ```

pub mod ddlgen;
pub mod error;
pub mod loader;
pub mod maplint;
pub mod metadata;
pub mod model;
pub mod naming;
pub mod pathquery;
pub mod pipeline;
pub mod retriever;
pub mod roundtrip;
pub mod schemagen;
pub mod views;

pub use error::MappingError;
pub use loader::{load_ops, load_script, plan_batches, LoadOp, LoadUnit};
pub use maplint::{check_catalog_drift, lint_schema, MapLintReport};
pub use pipeline::{LoadStrategy, Xml2OrDb};
pub use model::{MappedSchema, MappingOptions};
pub use schemagen::generate_schema;

//! Round-trip fidelity measurement (experiment E9).
//!
//! The paper's §6.1 and §7 enumerate what the mapping loses: comments,
//! processing instructions, entity references (unless the meta-data is
//! used), the ordering of elements stored through references, and the
//! interleaving of mixed content. This module *measures* those losses by
//! comparing the original document with its reconstruction.

use xmlord_xml::{Document, NodeId, NodeKind};

/// One observed difference between original and restored document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Loss {
    /// A comment did not survive (expected per §7).
    Comment { path: String },
    /// A processing instruction did not survive (expected per §7).
    ProcessingInstruction { path: String },
    /// A CDATA section came back as plain text.
    CDataDemoted { path: String },
    /// Whitespace between elements was not preserved.
    Whitespace { path: String },
    /// Same children, different order (REF storage, §7).
    OrderChanged { path: String },
    /// Mixed-content text was concatenated (interleaving lost).
    MixedInterleaving { path: String },
    /// Text content differs.
    TextChanged { path: String, original: String, restored: String },
    /// Attribute missing or value changed.
    AttributeChanged { path: String, attribute: String },
    /// Element missing, added, or renamed — structural damage.
    ElementChanged { path: String, detail: String },
}

impl Loss {
    /// Losses the paper explicitly accepts (§6.1/§7) versus real damage.
    pub fn is_expected(&self) -> bool {
        !matches!(
            self,
            Loss::TextChanged { .. } | Loss::AttributeChanged { .. } | Loss::ElementChanged { .. }
        )
    }
}

/// The outcome of comparing original and restored documents.
#[derive(Debug, Clone, Default)]
pub struct FidelityReport {
    pub losses: Vec<Loss>,
}

impl FidelityReport {
    /// No differences at all.
    pub fn is_exact(&self) -> bool {
        self.losses.is_empty()
    }

    /// All data (elements, attributes, text) survived; only the losses the
    /// paper accepts occurred.
    pub fn data_preserved(&self) -> bool {
        self.losses.iter().all(Loss::is_expected)
    }

    pub fn count(&self, pred: impl Fn(&Loss) -> bool) -> usize {
        self.losses.iter().filter(|l| pred(l)).count()
    }
}

/// Compare `original` against `restored`.
pub fn compare(original: &Document, restored: &Document) -> FidelityReport {
    let mut report = FidelityReport::default();
    match (original.root_element(), restored.root_element()) {
        (Some(a), Some(b)) => {
            compare_elements(original, a, restored, b, &mut String::new(), &mut report)
        }
        (None, None) => {}
        _ => report.losses.push(Loss::ElementChanged {
            path: String::new(),
            detail: "one document has no root element".into(),
        }),
    }
    // Prolog/epilog comments and PIs.
    for id in original.prolog_misc.iter().chain(&original.epilog_misc) {
        match original.kind(*id) {
            NodeKind::Comment(_) => {
                report.losses.push(Loss::Comment { path: "(prolog)".into() })
            }
            NodeKind::ProcessingInstruction { .. } => report
                .losses
                .push(Loss::ProcessingInstruction { path: "(prolog)".into() }),
            _ => {}
        }
    }
    // Remove prolog losses again when the restored document *does* carry
    // them (e.g. an extended pipeline).
    if !restored.prolog_misc.is_empty() || !restored.epilog_misc.is_empty() {
        report.losses.retain(|l| {
            !matches!(l, Loss::Comment { path } | Loss::ProcessingInstruction { path }
                if path == "(prolog)")
        });
    }
    report
}

fn compare_elements(
    a_doc: &Document,
    a: NodeId,
    b_doc: &Document,
    b: NodeId,
    path: &mut String,
    report: &mut FidelityReport,
) {
    let a_name = a_doc.name(a).as_raw();
    let b_name = b_doc.name(b).as_raw();
    let saved_len = path.len();
    path.push('/');
    path.push_str(&a_name);
    if a_name != b_name {
        report.losses.push(Loss::ElementChanged {
            path: path.clone(),
            detail: format!("<{a_name}> became <{b_name}>"),
        });
        path.truncate(saved_len);
        return;
    }

    // Attributes as sets (XML attribute order is not significant).
    for attr in a_doc.attributes(a) {
        match b_doc.attribute(b, &attr.name.as_raw()) {
            Some(v) if v == attr.value => {}
            _ => report.losses.push(Loss::AttributeChanged {
                path: path.clone(),
                attribute: attr.name.as_raw(),
            }),
        }
    }
    for attr in b_doc.attributes(b) {
        if a_doc.attribute(a, &attr.name.as_raw()).is_none() {
            report.losses.push(Loss::AttributeChanged {
                path: path.clone(),
                attribute: attr.name.as_raw(),
            });
        }
    }

    // Non-element child inventory.
    for child in a_doc.children(a) {
        match a_doc.kind(*child) {
            NodeKind::Comment(_) => {
                report.losses.push(Loss::Comment { path: path.clone() })
            }
            NodeKind::ProcessingInstruction { .. } => report
                .losses
                .push(Loss::ProcessingInstruction { path: path.clone() }),
            NodeKind::CData(_) => {
                report.losses.push(Loss::CDataDemoted { path: path.clone() })
            }
            _ => {}
        }
    }

    // Text: compare the concatenated direct text. Whitespace-only original
    // text that vanished is a Whitespace loss, not damage.
    let a_text = direct_text(a_doc, a);
    let b_text = direct_text(b_doc, b);
    if a_text != b_text {
        let whitespace_only = a_text.trim() == b_text.trim()
            || (a_text.trim().is_empty() && b_text.is_empty());
        if whitespace_only {
            report.losses.push(Loss::Whitespace { path: path.clone() });
        } else {
            report.losses.push(Loss::TextChanged {
                path: path.clone(),
                original: a_text.clone(),
                restored: b_text.clone(),
            });
        }
    }
    // Mixed interleaving: text plus elements present, text survived only in
    // concatenated form. Detect: multiple original direct text runs.
    let a_text_runs = a_doc
        .children(a)
        .iter()
        .filter(|c| matches!(a_doc.kind(**c), NodeKind::Text(t) if !t.trim().is_empty()))
        .count();
    if a_text_runs > 1 && !a_doc.child_elements(a).is_empty() {
        report.losses.push(Loss::MixedInterleaving { path: path.clone() });
    }

    // Element children.
    let a_children = a_doc.child_elements(a);
    let b_children = b_doc.child_elements(b);
    let a_names: Vec<String> = a_children.iter().map(|c| a_doc.name(*c).as_raw()).collect();
    let b_names: Vec<String> = b_children.iter().map(|c| b_doc.name(*c).as_raw()).collect();
    if a_names != b_names {
        let mut a_sorted = a_names.clone();
        let mut b_sorted = b_names.clone();
        a_sorted.sort();
        b_sorted.sort();
        if a_sorted == b_sorted {
            report.losses.push(Loss::OrderChanged { path: path.clone() });
        } else {
            report.losses.push(Loss::ElementChanged {
                path: path.clone(),
                detail: format!("children ({}) became ({})", a_names.join(","), b_names.join(",")),
            });
            path.truncate(saved_len);
            return;
        }
    }
    // Pair same-named children in order and recurse.
    let mut b_used = vec![false; b_children.len()];
    for (i, a_child) in a_children.iter().enumerate() {
        let a_child_name = &a_names[i];
        let mate = b_children
            .iter()
            .enumerate()
            .find(|(j, _)| !b_used[*j] && &b_names[*j] == a_child_name);
        if let Some((j, b_child)) = mate {
            b_used[j] = true;
            compare_elements(a_doc, *a_child, b_doc, *b_child, path, report);
        }
    }
    path.truncate(saved_len);
}

fn direct_text(doc: &Document, node: NodeId) -> String {
    let mut out = String::new();
    for child in doc.children(node) {
        match doc.kind(*child) {
            NodeKind::Text(t) | NodeKind::CData(t) => out.push_str(t),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlord_xml::parse;

    fn report(a: &str, b: &str) -> FidelityReport {
        compare(&parse(a).unwrap(), &parse(b).unwrap())
    }

    #[test]
    fn identical_documents_are_exact() {
        let r = report("<a x=\"1\"><b>t</b></a>", "<a x=\"1\"><b>t</b></a>");
        assert!(r.is_exact(), "{:?}", r.losses);
    }

    #[test]
    fn lost_comment_is_expected_loss() {
        let r = report("<a><!--note--><b/></a>", "<a><b/></a>");
        assert!(!r.is_exact());
        assert!(r.data_preserved());
        assert_eq!(r.count(|l| matches!(l, Loss::Comment { .. })), 1);
    }

    #[test]
    fn lost_pi_is_expected_loss() {
        let r = report("<a><?pi d?></a>", "<a/>");
        assert!(r.data_preserved());
        assert_eq!(r.count(|l| matches!(l, Loss::ProcessingInstruction { .. })), 1);
    }

    #[test]
    fn changed_text_is_damage() {
        let r = report("<a>x</a>", "<a>y</a>");
        assert!(!r.data_preserved());
        assert!(matches!(&r.losses[0], Loss::TextChanged { original, restored, .. }
            if original == "x" && restored == "y"));
    }

    #[test]
    fn missing_attribute_is_damage() {
        let r = report("<a x=\"1\"/>", "<a/>");
        assert!(!r.data_preserved());
        // Added attribute too.
        let r2 = report("<a/>", "<a x=\"1\"/>");
        assert!(!r2.data_preserved());
    }

    #[test]
    fn reordered_children_is_expected_loss() {
        let r = report("<a><b>1</b><c>2</c></a>", "<a><c>2</c><b>1</b></a>");
        assert!(r.data_preserved());
        assert_eq!(r.count(|l| matches!(l, Loss::OrderChanged { .. })), 1);
    }

    #[test]
    fn dropped_element_is_damage() {
        let r = report("<a><b/></a>", "<a/>");
        assert!(!r.data_preserved());
        assert!(matches!(&r.losses[0], Loss::ElementChanged { .. }));
    }

    #[test]
    fn whitespace_normalization_is_expected_loss() {
        let r = report("<a>\n  <b>x</b>\n</a>", "<a><b>x</b></a>");
        assert!(r.data_preserved(), "{:?}", r.losses);
        assert!(r.count(|l| matches!(l, Loss::Whitespace { .. })) >= 1);
    }

    #[test]
    fn cdata_demotion_is_expected_loss() {
        let r = report("<a><![CDATA[raw]]></a>", "<a>raw</a>");
        assert!(r.data_preserved(), "{:?}", r.losses);
        assert_eq!(r.count(|l| matches!(l, Loss::CDataDemoted { .. })), 1);
    }

    #[test]
    fn mixed_interleaving_detected() {
        let r = report("<p>a<b/>c</p>", "<p>ac<b/></p>");
        assert!(r.count(|l| matches!(l, Loss::MixedInterleaving { .. })) == 1, "{:?}", r.losses);
        assert!(r.data_preserved(), "{:?}", r.losses);
    }

    #[test]
    fn renamed_element_is_damage_with_path() {
        let r = report("<a><b><c/></b></a>", "<a><b><d/></b></a>");
        assert!(!r.data_preserved());
        // The damage is reported below /a/b.
        assert!(r.losses.iter().any(|l| matches!(l, Loss::ElementChanged { path, .. }
            if path.starts_with("/a/b"))));
    }

    #[test]
    fn prolog_comment_loss_detected() {
        let r = report("<!--head--><a/>", "<a/>");
        assert_eq!(r.count(|l| matches!(l, Loss::Comment { .. })), 1);
    }
}

//! Document loading: XML document → bound INSERT operations.
//!
//! §4.1/§4.2: in Oracle 9 mode a whole document becomes **one** INSERT
//! statement whose nested constructor calls mirror the document tree
//! ("Using an object-relational approach requires a single INSERT query for
//! one document"). Table-rooted elements — the Oracle 8 workaround, §6.2
//! recursion targets, §4.4 ID targets — get their own INSERTs wired together
//! through the synthetic ID attributes the paper introduces "for the sole
//! purpose of simplifying the generation of INSERT operations".
//!
//! The loader builds SQL *ASTs* ([`LoadOp`]) as the single source of truth.
//! [`load_script`] prints them back to the paper-faithful SQL text
//! ("This script can be executed afterwards without any modification",
//! §4); [`plan_batches`] groups consecutive same-table ops into
//! [`InsertBatch`]es for the engine's bulk path — same rows, same order,
//! same database state, a fraction of the per-statement overhead.

use xmlord_dtd::ast::{AttType, Dtd};
use xmlord_ordb::sql::ast::{Expr, FromItem, SelectItem, SelectStmt, Stmt};
use xmlord_ordb::sql::printer::print_stmt;
use xmlord_ordb::{Ident, InsertBatch, Value};
use xmlord_xml::{Document, NodeId, NodeKind};

use crate::error::MappingError;
use crate::model::{ElementMapping, FieldKind, FieldSource, MappedSchema};

/// One bound operation of a document load, in execution order.
#[derive(Debug, Clone)]
pub enum LoadOp {
    /// `INSERT INTO table VALUES (values…)`. `ref_tables` lists the tables
    /// the row's REF subqueries read — the batcher splits on them so every
    /// subquery still sees its target row already applied.
    Insert { table: Ident, values: Vec<Expr>, ref_tables: Vec<Ident> },
    /// Post-insert IDREF wiring (`UPDATE … SET … = (SELECT REF(…) …)`),
    /// run after every row exists so forward references resolve.
    Update(Stmt),
}

impl LoadOp {
    /// The operation as paper-style SQL text.
    pub fn to_sql(&self) -> String {
        match self {
            LoadOp::Insert { table, values, .. } => print_stmt(&Stmt::Insert {
                table: table.clone(),
                columns: None,
                values: values.clone(),
            }),
            LoadOp::Update(stmt) => print_stmt(stmt),
        }
    }
}

/// One unit of a batched load plan ([`plan_batches`]).
#[derive(Debug, Clone)]
pub enum LoadUnit {
    /// Consecutive same-table INSERTs, executed through
    /// [`xmlord_ordb::Database::execute_batch`].
    Batch(InsertBatch),
    /// A statement executed individually (IDREF UPDATEs).
    Stmt(Stmt),
}

/// Generate the bound operations that store `doc` under `doc_id`.
///
/// Operations are ordered so that every REF subquery finds its target row:
/// ref-held children (recursion, ID targets) are inserted before their
/// parents; Oracle 8 inverted children after them.
pub fn load_ops(
    schema: &MappedSchema,
    dtd: &Dtd,
    doc: &Document,
    doc_id: &str,
) -> Result<Vec<LoadOp>, MappingError> {
    let root_node = doc
        .root_element()
        .ok_or_else(|| MappingError::Unsupported("document has no root element".into()))?;
    let root_name = doc.name(root_node).as_raw();
    if root_name != schema.root_element {
        return Err(MappingError::Unsupported(format!(
            "document root <{root_name}> does not match the mapped root <{}>",
            schema.root_element
        )));
    }
    let mut loader = Loader {
        schema,
        dtd,
        doc,
        doc_id,
        ops: Vec::new(),
        pending_updates: Vec::new(),
        ref_frames: Vec::new(),
        next_id: 0,
    };
    loader.emit_rooted(root_node, None)?;
    // IDREF wiring runs after every row exists, so forward references
    // (an IDREF pointing at an ID that appears later in the document)
    // resolve correctly.
    let mut ops = loader.ops;
    ops.extend(loader.pending_updates);
    Ok(ops)
}

/// Generate the INSERT statements that store `doc` under `doc_id` as SQL
/// text — [`load_ops`] printed one statement per operation.
pub fn load_script(
    schema: &MappedSchema,
    dtd: &Dtd,
    doc: &Document,
    doc_id: &str,
) -> Result<Vec<String>, MappingError> {
    Ok(load_ops(schema, dtd, doc, doc_id)?.iter().map(LoadOp::to_sql).collect())
}

/// Group a load's operations into batches of *consecutive* same-table
/// INSERTs. Keeping the global statement order (a batch never absorbs a
/// later row across an intervening other-table row) means the batched load
/// allocates OIDs in exactly the per-statement order — the resulting
/// database state is byte-identical to the text path. Two things close the
/// open batch early: a row whose subqueries reference the open batch's own
/// table (§6.2 recursion — the target row must be applied first), and an
/// UPDATE.
pub fn plan_batches(ops: Vec<LoadOp>) -> Vec<LoadUnit> {
    let mut units = Vec::new();
    let mut open: Option<InsertBatch> = None;
    for op in ops {
        match op {
            LoadOp::Insert { table, values, ref_tables } => {
                let continues_run = open.as_ref().is_some_and(|b| b.table == table)
                    && !ref_tables.contains(&table);
                if continues_run {
                    open.as_mut().expect("run continues ⇒ open batch").rows.push(values);
                } else {
                    if let Some(batch) = open.take() {
                        units.push(LoadUnit::Batch(batch));
                    }
                    open = Some(InsertBatch { table, columns: None, rows: vec![values] });
                }
            }
            LoadOp::Update(stmt) => {
                if let Some(batch) = open.take() {
                    units.push(LoadUnit::Batch(batch));
                }
                units.push(LoadUnit::Stmt(stmt));
            }
        }
    }
    if let Some(batch) = open.take() {
        units.push(LoadUnit::Batch(batch));
    }
    units
}

/// `NULL` as an expression.
fn null() -> Expr {
    Expr::Literal(Value::Null)
}

/// Constructor call `Type(args…)`.
fn constructor(type_name: &str, args: Vec<Expr>) -> Expr {
    Expr::Call { name: Ident::internal(type_name), args }
}

/// `(SELECT REF(x) FROM table x WHERE x.<path> = 'value')`.
fn ref_select(table: &Ident, path: &[&str], value: &str) -> Expr {
    let alias = Ident::internal("x");
    let mut parts = vec![alias.clone()];
    parts.extend(path.iter().map(|p| Ident::internal(p)));
    Expr::Subquery(Box::new(SelectStmt {
        distinct: false,
        items: vec![SelectItem { expr: Expr::RefOf(alias.clone()), alias: None }],
        star: false,
        from: vec![FromItem::Table { name: table.clone(), alias: Some(alias) }],
        where_clause: Some(Expr::eq(Expr::Path(parts), Expr::str_lit(value))),
        order_by: Vec::new(),
    }))
}

/// Identity of the row being built, for deferred IDREF updates.
#[derive(Clone)]
struct RowCtx {
    table: String,
    id_column: String,
    id: String,
}

struct Loader<'a> {
    schema: &'a MappedSchema,
    dtd: &'a Dtd,
    doc: &'a Document,
    doc_id: &'a str,
    ops: Vec<LoadOp>,
    /// Post-INSERT `UPDATE … SET <idref col> = (SELECT REF(…))` operations.
    pending_updates: Vec<LoadOp>,
    /// Referenced-table accumulators, one frame per in-flight row
    /// ([`LoadOp::Insert::ref_tables`]); nested because ref-held children
    /// are emitted while the parent row's values are still being built.
    ref_frames: Vec<Vec<Ident>>,
    next_id: u64,
}

impl<'a> Loader<'a> {
    fn mapping_of(&self, element: &str) -> Result<&'a ElementMapping, MappingError> {
        self.schema
            .mapping(element)
            .ok_or_else(|| MappingError::UndeclaredElement(element.to_string()))
    }

    /// Record that the current row reads `table` through a REF subquery.
    fn note_ref(&mut self, table: Ident) {
        if let Some(frame) = self.ref_frames.last_mut() {
            if !frame.contains(&table) {
                frame.push(table);
            }
        }
    }

    fn fresh_id(&mut self, node: NodeId) -> String {
        // The root row carries the document id itself; nested rows get
        // sequential ids below it.
        if Some(node) == self.doc.root_element() {
            return self.doc_id.to_string();
        }
        self.next_id += 1;
        format!("{}#{}", self.doc_id, self.next_id)
    }

    /// Emit the INSERT for a table-rooted element instance. Returns the
    /// synthetic id of the inserted row (empty when the mapping has none).
    fn emit_rooted(
        &mut self,
        node: NodeId,
        parent: Option<(&str, &str)>,
    ) -> Result<String, MappingError> {
        let element = self.doc.name(node).as_raw();
        let mapping = self.mapping_of(&element)?;
        let table = mapping
            .table
            .clone()
            .ok_or_else(|| MappingError::Unsupported(format!("<{element}> is not table-rooted")))?;
        let type_name = mapping.object_type.clone().ok_or_else(|| {
            MappingError::MalformedMapping(format!(
                "<{element}> is table-rooted ({table}) but has no object type"
            ))
        })?;
        let my_id = if mapping.synthetic_id.is_some() { self.fresh_id(node) } else { String::new() };
        let row_ctx = mapping.synthetic_id.as_ref().map(|id_column| RowCtx {
            table: table.clone(),
            id_column: id_column.clone(),
            id: my_id.clone(),
        });

        self.ref_frames.push(Vec::new());
        let mut args = Vec::with_capacity(mapping.fields.len());
        for field in mapping.fields.clone() {
            let arg = match &field.source {
                FieldSource::SyntheticId => Expr::str_lit(&my_id),
                FieldSource::ParentRef(parent_element) => match parent {
                    Some((p_element, p_id)) if p_element == parent_element => {
                        self.ref_subquery_by_id(parent_element, p_id)?
                    }
                    _ => null(),
                },
                _ => self.field_expr(node, &element, &field, row_ctx.as_ref())?,
            };
            args.push(arg);
        }
        let ref_tables = self.ref_frames.pop().expect("frame pushed above");
        self.ops.push(LoadOp::Insert {
            table: Ident::internal(&table),
            values: vec![constructor(&type_name, args)],
            ref_tables,
        });

        // Oracle 8 inverted children: their rows point back at us and are
        // inserted after us.
        let mapping = self.mapping_of(&element)?.clone();
        for child_node in self.doc.child_elements(node) {
            let child_name = self.doc.name(child_node).as_raw();
            let child_mapping = self.mapping_of(&child_name)?;
            let inverted = child_mapping
                .fields
                .iter()
                .any(|f| matches!(&f.source, FieldSource::ParentRef(p) if *p == element));
            // Only children we do NOT hold a field for are inverted.
            if inverted && mapping.field_for_child(&child_name).is_none() {
                self.emit_rooted(child_node, Some((&element, &my_id)))?;
            }
        }
        Ok(my_id)
    }

    /// Build the SQL expression for one field of `node`. `row` identifies
    /// the enclosing table row (when the element is table-rooted), which
    /// lets IDREF wiring defer to post-INSERT UPDATE statements so forward
    /// references resolve.
    fn field_expr(
        &mut self,
        node: NodeId,
        element: &str,
        field: &crate::model::FieldMapping,
        row: Option<&RowCtx>,
    ) -> Result<Expr, MappingError> {
        match &field.source {
            FieldSource::Text => Ok(Expr::str_lit(&direct_text(self.doc, node))),
            FieldSource::XmlAttribute(attr) => match self.doc.attribute(node, attr) {
                Some(value) => match (&field.kind, row) {
                    (FieldKind::Ref(_), Some(row)) => {
                        let value = value.to_string();
                        let subquery = self.idref_subquery(element, attr, &value)?;
                        self.pending_updates.push(LoadOp::Update(Stmt::Update {
                            table: Ident::internal(&row.table),
                            sets: vec![(vec![Ident::internal(&field.db_name)], subquery)],
                            where_clause: Some(Expr::eq(
                                Expr::Path(vec![Ident::internal(&row.id_column)]),
                                Expr::str_lit(&row.id),
                            )),
                        }));
                        Ok(null())
                    }
                    (FieldKind::Ref(_), None) => {
                        let value = value.to_string();
                        self.idref_subquery(element, attr, &value)
                    }
                    _ => Ok(Expr::str_lit(value)),
                },
                None => Ok(null()),
            },
            FieldSource::AttrList => {
                let mapping = self.mapping_of(element)?.clone();
                let attr_list = mapping.attr_list.as_ref().ok_or_else(|| {
                    MappingError::MalformedMapping(format!(
                        "<{element}> has an attrList field but no attribute-list mapping"
                    ))
                })?;
                let any_present = attr_list
                    .fields
                    .iter()
                    .any(|f| self.doc.attribute(node, &f.xml_attribute).is_some());
                if !any_present {
                    return Ok(null());
                }
                let mut args = Vec::new();
                for f in &attr_list.fields {
                    let arg = match self.doc.attribute(node, &f.xml_attribute) {
                        Some(value) if f.idref_target.is_some() => match row {
                            Some(row) => {
                                let value = value.to_string();
                                let subquery =
                                    self.idref_subquery(element, &f.xml_attribute, &value)?;
                                self.pending_updates.push(LoadOp::Update(Stmt::Update {
                                    table: Ident::internal(&row.table),
                                    sets: vec![(
                                        vec![
                                            Ident::internal(&field.db_name),
                                            Ident::internal(&f.db_name),
                                        ],
                                        subquery,
                                    )],
                                    where_clause: Some(Expr::eq(
                                        Expr::Path(vec![Ident::internal(&row.id_column)]),
                                        Expr::str_lit(&row.id),
                                    )),
                                }));
                                null()
                            }
                            None => {
                                let value = value.to_string();
                                self.idref_subquery(element, &f.xml_attribute, &value)?
                            }
                        },
                        Some(value) => Expr::str_lit(value),
                        None => null(),
                    };
                    args.push(arg);
                }
                Ok(constructor(&attr_list.type_name, args))
            }
            FieldSource::ChildElement(child_name) => {
                let children = self.doc.child_elements_named(node, child_name);
                self.child_field_expr(&children, field)
            }
            FieldSource::SyntheticId | FieldSource::ParentRef(_) => {
                unreachable!("handled by emit_rooted")
            }
        }
    }

    fn child_field_expr(
        &mut self,
        children: &[NodeId],
        field: &crate::model::FieldMapping,
    ) -> Result<Expr, MappingError> {
        match &field.kind {
            FieldKind::Scalar(_) => match children.first() {
                Some(child) => Ok(Expr::str_lit(&direct_text(self.doc, *child))),
                None => Ok(null()),
            },
            FieldKind::Object(_) => match children.first() {
                Some(child) => self.embedded_expr(*child),
                None => Ok(null()),
            },
            FieldKind::ScalarCollection(collection) => {
                let args: Vec<Expr> = children
                    .iter()
                    .map(|c| Expr::str_lit(&direct_text(self.doc, *c)))
                    .collect();
                Ok(constructor(collection, args))
            }
            FieldKind::ObjectCollection { collection, .. } => {
                let mut args = Vec::with_capacity(children.len());
                for child in children {
                    args.push(self.embedded_expr(*child)?);
                }
                Ok(constructor(collection, args))
            }
            FieldKind::Ref(_) => match children.first() {
                Some(child) => {
                    let child_id = self.emit_rooted(*child, None)?;
                    let child_element = self.doc.name(*child).as_raw();
                    self.ref_subquery_by_id(&child_element, &child_id)
                }
                None => Ok(null()),
            },
            FieldKind::RefCollection { collection, .. } => {
                let mut args = Vec::with_capacity(children.len());
                for child in children {
                    let child_id = self.emit_rooted(*child, None)?;
                    let child_element = self.doc.name(*child).as_raw();
                    args.push(self.ref_subquery_by_id(&child_element, &child_id)?);
                }
                Ok(constructor(collection, args))
            }
        }
    }

    /// Constructor expression for an embedded (non-table-rooted) element.
    fn embedded_expr(&mut self, node: NodeId) -> Result<Expr, MappingError> {
        let element = self.doc.name(node).as_raw();
        let mapping = self.mapping_of(&element)?.clone();
        let type_name = mapping.object_type.clone().ok_or_else(|| {
            MappingError::Unsupported(format!("<{element}> has no object type to construct"))
        })?;
        let mut args = Vec::with_capacity(mapping.fields.len());
        for field in &mapping.fields {
            args.push(self.field_expr(node, &element, field, None)?);
        }
        Ok(constructor(&type_name, args))
    }

    /// `(SELECT REF(x) FROM Tab x WHERE x.ID… = 'id')` for synthetic ids.
    fn ref_subquery_by_id(&mut self, element: &str, id: &str) -> Result<Expr, MappingError> {
        let (table, id_col) = {
            let mapping = self.mapping_of(element)?;
            let table = mapping.table.clone().ok_or_else(|| {
                MappingError::Unsupported(format!("<{element}> has no object table for REFs"))
            })?;
            let id_col = mapping.synthetic_id.clone().ok_or_else(|| {
                MappingError::Unsupported(format!("<{element}> has no synthetic id"))
            })?;
            (table, id_col)
        };
        let table = Ident::internal(&table);
        let expr = ref_select(&table, &[&id_col], id);
        self.note_ref(table);
        Ok(expr)
    }

    /// `(SELECT REF(x) FROM TabTarget x WHERE x.<id attr> = 'value')` for
    /// IDREF attributes (§4.4).
    fn idref_subquery(
        &mut self,
        element: &str,
        attribute: &str,
        value: &str,
    ) -> Result<Expr, MappingError> {
        // Find the target element of this IDREF from the mapping.
        let mapping = self.mapping_of(element)?;
        let target = mapping
            .attr_list
            .as_ref()
            .and_then(|al| {
                al.fields
                    .iter()
                    .find(|f| f.xml_attribute == attribute)
                    .and_then(|f| f.idref_target.clone())
            })
            .or_else(|| {
                mapping.field_for_attribute(attribute).and_then(|f| match &f.kind {
                    FieldKind::Ref(_) => {
                        // Single inlined attribute: the target is recorded in
                        // the schema via the REF type; resolve by scanning.
                        self.schema
                            .elements
                            .values()
                            .find(|m| m.object_type.as_deref() == ref_target_name(&f.kind))
                            .map(|m| m.element.clone())
                    }
                    _ => None,
                })
            })
            .ok_or_else(|| {
                MappingError::Unsupported(format!(
                    "attribute {element}/@{attribute} is not an IDREF mapping"
                ))
            })?;
        // The ID attribute of the target element (from the DTD).
        let id_attr = self
            .dtd
            .attributes_of(&target)
            .iter()
            .find(|a| a.att_type == AttType::Id)
            .map(|a| a.name.clone())
            .ok_or_else(|| {
                MappingError::Unsupported(format!("<{target}> has no ID attribute"))
            })?;
        let (table, path_parts) = {
            let target_mapping = self.mapping_of(&target)?;
            let table = target_mapping.table.clone().ok_or_else(|| {
                MappingError::Unsupported(format!("IDREF target <{target}> has no object table"))
            })?;
            // Path to the stored ID value: inlined or inside the attrList
            // object.
            let path_parts = if let Some(f) = target_mapping.field_for_attribute(&id_attr) {
                vec![f.db_name.clone()]
            } else if let Some(al) = &target_mapping.attr_list {
                let list_field = target_mapping
                    .fields
                    .iter()
                    .find(|f| f.source == FieldSource::AttrList)
                    .ok_or_else(|| {
                        MappingError::MalformedMapping(format!(
                            "<{target}> has an attribute-list mapping but no attrList field"
                        ))
                    })?;
                let inner = al
                    .fields
                    .iter()
                    .find(|f| f.xml_attribute == id_attr)
                    .ok_or_else(|| {
                        MappingError::MalformedMapping(format!(
                            "ID attribute '{id_attr}' of <{target}> is missing from its attribute-list mapping"
                        ))
                    })?;
                vec![list_field.db_name.clone(), inner.db_name.clone()]
            } else {
                return Err(MappingError::Unsupported(format!(
                    "cannot locate the stored ID attribute of <{target}>"
                )));
            };
            (table, path_parts)
        };
        let table = Ident::internal(&table);
        let parts: Vec<&str> = path_parts.iter().map(String::as_str).collect();
        let expr = ref_select(&table, &parts, value);
        self.note_ref(table);
        Ok(expr)
    }
}

fn ref_target_name(kind: &FieldKind) -> Option<&str> {
    match kind {
        FieldKind::Ref(t) => Some(t.as_str()),
        _ => None,
    }
}

/// Concatenated *direct* text of an element (not descending into child
/// elements — needed for mixed content).
pub fn direct_text(doc: &Document, node: NodeId) -> String {
    let mut out = String::new();
    for child in doc.children(node) {
        match doc.kind(*child) {
            NodeKind::Text(t) | NodeKind::CData(t) => out.push_str(t),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddlgen::create_script;
    use crate::model::MappingOptions;
    use crate::schemagen::{generate_schema, IdrefTargets};
    use xmlord_dtd::parse_dtd;
    use xmlord_ordb::{Database, DbMode, Value};

    const UNIVERSITY_DTD: &str = r#"
<!ELEMENT University (StudyCourse,Student*)>
<!ELEMENT Student (LName,FName,Course*)>
<!ATTLIST Student StudNr CDATA #REQUIRED>
<!ELEMENT Course (Name,Professor*,CreditPts?)>
<!ELEMENT Professor (PName,Subject+,Dept)>
<!ELEMENT LName (#PCDATA)> <!ELEMENT FName (#PCDATA)>
<!ELEMENT Name (#PCDATA)> <!ELEMENT PName (#PCDATA)>
<!ELEMENT Subject (#PCDATA)> <!ELEMENT Dept (#PCDATA)>
<!ELEMENT StudyCourse (#PCDATA)> <!ELEMENT CreditPts (#PCDATA)>
"#;

    const UNIVERSITY_XML: &str = r#"<University>
  <StudyCourse>Computer Science</StudyCourse>
  <Student StudNr="23374">
    <LName>Conrad</LName><FName>Matthias</FName>
    <Course>
      <Name>Database Systems II</Name>
      <Professor>
        <PName>Kudrass</PName>
        <Subject>Database Systems</Subject><Subject>Operat. Systems</Subject>
        <Dept>Computer Science</Dept>
      </Professor>
      <CreditPts>4</CreditPts>
    </Course>
    <Course>
      <Name>CAD Intro</Name>
      <Professor>
        <PName>Jaeger</PName>
        <Subject>CAD</Subject><Subject>CAE</Subject>
        <Dept>Computer Science</Dept>
      </Professor>
      <CreditPts>4</CreditPts>
    </Course>
  </Student>
  <Student StudNr="00011">
    <LName>Meier</LName><FName>Ralf</FName>
  </Student>
</University>"#;

    fn setup(mode: DbMode) -> (Database, Vec<String>) {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        let doc = xmlord_xml::parse(UNIVERSITY_XML).unwrap();
        let schema = generate_schema(
            &dtd,
            "University",
            mode,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let mut db = Database::new(mode);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        let statements = load_script(&schema, &dtd, &doc, "doc1").unwrap();
        for stmt in &statements {
            db.execute(stmt).unwrap_or_else(|e| panic!("{e}\nSTMT: {stmt}"));
        }
        (db, statements)
    }

    #[test]
    fn oracle9_load_is_a_single_insert() {
        let (mut db, statements) = setup(DbMode::Oracle9);
        // The paper's headline claim (§4.1): one INSERT for the document.
        assert_eq!(statements.len(), 1, "{statements:#?}");
        assert!(statements[0].starts_with("INSERT INTO TabUniversity VALUES (Type_University("));
        assert_eq!(db.row_count("TabUniversity"), 1);
        // §4.1's query, un-nested over the collections.
        let rows = db
            .query(
                "SELECT s.attrLName FROM TabUniversity u, TABLE(u.attrStudent) s, \
                 TABLE(s.attrCourse) c, TABLE(c.attrProfessor) p \
                 WHERE p.attrPName = 'Jaeger'",
            )
            .unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("Conrad")]]);
    }

    #[test]
    fn oracle8_load_fans_out_into_many_inserts() {
        let (mut db, statements) = setup(DbMode::Oracle8);
        // 1 university + 2 students + 2 courses + 2 professors.
        assert_eq!(statements.len(), 7, "{statements:#?}");
        assert_eq!(db.row_count("TabUniversity"), 1);
        assert_eq!(db.row_count("TabStudent"), 2);
        assert_eq!(db.row_count("TabCourse"), 2);
        assert_eq!(db.row_count("TabProfessor"), 2);
        // Children point back at their parents (§4.2 workaround): navigate
        // from a course back to its student.
        let rows = db
            .query(
                "SELECT c.attrRefStudent.attrLName FROM TabCourse c WHERE c.attrName = 'CAD Intro'",
            )
            .unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("Conrad")]]);
        // Scalar collections still work inline in Oracle 8.
        let rows = db
            .query(
                "SELECT s.COLUMN_VALUE FROM TabProfessor p, TABLE(p.attrSubject) s \
                 WHERE p.attrPName = 'Kudrass'",
            )
            .unwrap();
        assert_eq!(rows.rows.len(), 2);
    }

    #[test]
    fn doc_id_lands_in_the_root_row() {
        let (mut db, _) = setup(DbMode::Oracle9);
        let id = db
            .query_scalar("SELECT u.IDUniversity FROM TabUniversity u")
            .unwrap();
        assert_eq!(id, Value::str("doc1"));
    }

    #[test]
    fn empty_collections_use_empty_constructors_like_the_paper() {
        let (_, statements) = setup(DbMode::Oracle9);
        // Student Meier has no courses: the paper's example writes
        // `TypeVA_Course()`.
        assert!(statements[0].contains("TypeVA_Course()"), "{}", statements[0]);
    }

    #[test]
    fn optional_absent_elements_become_null() {
        let dtd_text = "<!ELEMENT r (a?,b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>";
        let dtd = parse_dtd(dtd_text).unwrap();
        let doc = xmlord_xml::parse("<r><b>x</b></r>").unwrap();
        let schema = generate_schema(
            &dtd,
            "r",
            DbMode::Oracle9,
            MappingOptions { with_doc_id: false, ..Default::default() },
            &IdrefTargets::new(),
        )
        .unwrap();
        let stmts = load_script(&schema, &dtd, &doc, "d").unwrap();
        assert_eq!(stmts.len(), 1);
        assert!(stmts[0].contains("(NULL, 'x')"), "{}", stmts[0]);
    }

    #[test]
    fn quotes_in_text_are_escaped() {
        let dtd_text = "<!ELEMENT r (#PCDATA)>";
        let dtd = parse_dtd(dtd_text).unwrap();
        let doc = xmlord_xml::parse("<r>O'Hara's</r>").unwrap();
        let schema = generate_schema(
            &dtd,
            "r",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let stmts = load_script(&schema, &dtd, &doc, "d").unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&crate::ddlgen::create_script(&schema).unwrap()).unwrap();
        db.execute(&stmts[0]).unwrap();
        let v = db.query_scalar("SELECT r.attrr FROM Tabr r").unwrap();
        assert_eq!(v, Value::str("O'Hara's"));
    }

    #[test]
    fn recursive_document_loads_with_refs() {
        let dtd_text = r#"
            <!ELEMENT Professor (PName,Dept)>
            <!ELEMENT Dept (DName,Professor*)>
            <!ELEMENT PName (#PCDATA)> <!ELEMENT DName (#PCDATA)>"#;
        let dtd = parse_dtd(dtd_text).unwrap();
        let doc = xmlord_xml::parse(
            "<Professor><PName>Kudrass</PName><Dept><DName>CS</DName>\
             <Professor><PName>Jaeger</PName><Dept><DName>CAD Lab</DName></Dept></Professor>\
             </Dept></Professor>",
        )
        .unwrap();
        let schema = generate_schema(
            &dtd,
            "Professor",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        let stmts = load_script(&schema, &dtd, &doc, "d1").unwrap();
        // Inner professor inserted before the outer one that references it.
        assert_eq!(stmts.len(), 2);
        for stmt in &stmts {
            db.execute(stmt).unwrap_or_else(|e| panic!("{e}\nSTMT: {stmt}"));
        }
        assert_eq!(db.row_count("TabProfessor"), 2);
        // Navigate: outer professor → dept → member professors (REFs).
        let rows = db
            .query(
                "SELECT r.COLUMN_VALUE.attrPName FROM TabProfessor p, TABLE(p.attrDept.attrProfessor) r \
                 WHERE p.attrPName = 'Kudrass'",
            )
            .unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("Jaeger")]]);
    }

    #[test]
    fn idref_attributes_load_as_refs() {
        let dtd_text = r#"
            <!ELEMENT db (person*)>
            <!ELEMENT person (#PCDATA)>
            <!ATTLIST person id ID #REQUIRED boss IDREF #IMPLIED>"#;
        let dtd = parse_dtd(dtd_text).unwrap();
        let doc = xmlord_xml::parse(
            r#"<db><person id="p1">Kudrass</person><person id="p2" boss="p1">Conrad</person></db>"#,
        )
        .unwrap();
        let mut targets = IdrefTargets::new();
        targets.insert(("person".into(), "boss".into()), "person".into());
        let schema = generate_schema(
            &dtd,
            "db",
            DbMode::Oracle9,
            MappingOptions { map_idrefs: true, ..Default::default() },
            &targets,
        )
        .unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        let stmts = load_script(&schema, &dtd, &doc, "d1").unwrap();
        for stmt in &stmts {
            db.execute(stmt).unwrap_or_else(|e| panic!("{e}\nSTMT: {stmt}"));
        }
        // Navigate the boss REF.
        let rows = db
            .query(
                "SELECT p.attrListperson.attrboss.attrperson FROM Tabperson p \
                 WHERE p.attrListperson.attrid = 'p2'",
            )
            .unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("Kudrass")]]);
    }

    #[test]
    fn mixed_content_stores_direct_text_only() {
        let dtd_text = "<!ELEMENT p (#PCDATA|em)*><!ELEMENT em (#PCDATA)>";
        let dtd = parse_dtd(dtd_text).unwrap();
        let doc = xmlord_xml::parse("<p>before <em>important</em> after</p>").unwrap();
        let schema = generate_schema(
            &dtd,
            "p",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let stmts = load_script(&schema, &dtd, &doc, "d").unwrap();
        // Own text excludes the <em> content…
        assert!(stmts[0].contains("'before  after'"), "{}", stmts[0]);
        // …which lands in the em collection instead.
        assert!(stmts[0].contains("'important'"), "{}", stmts[0]);
    }

    #[test]
    fn wrong_root_is_rejected() {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        let doc = xmlord_xml::parse("<Student StudNr='1'><LName>x</LName><FName>y</FName></Student>")
            .unwrap();
        let schema = generate_schema(
            &dtd,
            "University",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        assert!(load_script(&schema, &dtd, &doc, "d").is_err());
    }
}

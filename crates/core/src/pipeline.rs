//! The high-level façade: the paper's `XML2Oracle` utility as an API.
//!
//! Fig. 1's flow, end to end: parse the DTD (DTD parser), parse and
//! validate the document (XML parser + validity check), generate the
//! object-relational schema (Fig. 2 algorithm), execute the generated SQL
//! script, load documents (single nested INSERT on Oracle 9), maintain the
//! §5 meta-tables, and retrieve documents back out — with §6.1 entity
//! re-substitution.

use std::collections::BTreeMap;
use std::path::Path;

use xmlord_dtd::ast::Dtd;
use xmlord_dtd::{parse_dtd, validate};
use xmlord_ordb::{Database, DbMode, ExecStats, Ident, RecoveryPolicy, ResultMode};
use xmlord_xml::serializer::{serialize, SerializeOptions};
use xmlord_xml::{Document, QName};

use crate::ddlgen::create_script;
use crate::error::MappingError;
use crate::loader::{load_ops, plan_batches, LoadOp, LoadUnit};
use crate::maplint::MapLintReport;
use crate::metadata::{
    metadata_ddl, metadata_insert, read_metadata, read_schema_registry, schema_registry_insert,
    DocMetadata, SchemaRegistryRow,
};
use crate::model::{MappedSchema, MappingOptions};
use crate::retriever::{retrieve_snapshot, retrieve_with_stats, RetrievalStats};
use crate::schemagen::{generate_schema, IdrefTargets};

/// How generated load operations reach the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadStrategy {
    /// Group consecutive same-table INSERTs and run them through the
    /// engine's bulk API ([`Database::execute_batch`]): one catalog
    /// resolution, a block OID reservation and a single undo bracket per
    /// run. The default.
    #[default]
    Batched,
    /// Print every operation to SQL text and execute it statement by
    /// statement — the paper's "script executed without any modification"
    /// path, kept as the compatibility baseline the differential tests
    /// compare against.
    SqlText,
}

/// A document shredded and bound off the engine thread, ready to apply.
enum PreparedLoad {
    Units(Vec<LoadUnit>),
    Sql(Vec<String>),
}

/// One registered document type (DTD + generated schema).
#[derive(Debug, Clone)]
pub struct RegisteredSchema {
    pub name: String,
    pub dtd: Dtd,
    pub root: String,
    pub schema: MappedSchema,
    pub create_script: String,
}

/// The XML document management system.
#[derive(Debug)]
pub struct Xml2OrDb {
    db: Database,
    options: MappingOptions,
    /// Assign `S1`, `S2`, … schema ids automatically per registered DTD.
    auto_schema_ids: bool,
    schemas: BTreeMap<String, RegisteredSchema>,
    /// doc id → schema name.
    documents: BTreeMap<String, String>,
    /// Per-schema document counters (DocIDs are `<schema>-<n>`).
    doc_counters: BTreeMap<String, u64>,
    schema_counter: u64,
    meta_ready: bool,
    load_strategy: LoadStrategy,
    /// Shredding workers for [`Self::store_documents`].
    load_workers: usize,
}

impl Xml2OrDb {
    /// A system with default options on the given engine mode.
    pub fn new(mode: DbMode) -> Xml2OrDb {
        Xml2OrDb::with_options(mode, MappingOptions::default())
    }

    pub fn with_options(mode: DbMode, options: MappingOptions) -> Xml2OrDb {
        Xml2OrDb::from_database(Database::new(mode), options)
    }

    /// Open (or create) a durable document store in directory `dir`.
    ///
    /// The engine recovers schema and data from its snapshot + write-ahead
    /// log ([`Database::open`]); the mapping layer then re-derives every
    /// registered schema from the persistent registry (`TabSchemas`) — the
    /// Fig. 2 mapping is deterministic, so the rebuilt mappings agree with
    /// the recovered tables — and re-counts stored documents from the §5
    /// meta-table.
    pub fn open(dir: impl AsRef<Path>, mode: DbMode) -> Result<Xml2OrDb, MappingError> {
        Xml2OrDb::open_with_options(dir, mode, MappingOptions::default())
    }

    /// [`Self::open`] with explicit [`MappingOptions`]. The options must
    /// match the ones the store was created with — the registry records a
    /// schema's inputs (source text, root, SchemaID, IDREF targets), not
    /// the global option set.
    pub fn open_with_options(
        dir: impl AsRef<Path>,
        mode: DbMode,
        options: MappingOptions,
    ) -> Result<Xml2OrDb, MappingError> {
        let db = Database::open(dir, mode).map_err(MappingError::Db)?;
        let mut sys = Xml2OrDb::from_database(db, options);
        sys.rehydrate()?;
        Ok(sys)
    }

    fn from_database(db: Database, options: MappingOptions) -> Xml2OrDb {
        Xml2OrDb {
            db,
            options,
            auto_schema_ids: false,
            schemas: BTreeMap::new(),
            documents: BTreeMap::new(),
            doc_counters: BTreeMap::new(),
            schema_counter: 0,
            meta_ready: false,
            load_strategy: LoadStrategy::default(),
            load_workers: 1,
        }
    }

    /// Rebuild the in-memory registries from a reopened database.
    fn rehydrate(&mut self) -> Result<(), MappingError> {
        if self.db.catalog().get_table(&Ident::internal("TabSchemas")).is_none() {
            return Ok(()); // fresh store: nothing was ever registered
        }
        self.meta_ready = true;
        for row in read_schema_registry(&mut self.db)? {
            let schema_id = (!row.schema_id.is_empty()).then(|| row.schema_id.clone());
            if let Some(n) = row.schema_id.strip_prefix('S').and_then(|s| s.parse::<u64>().ok()) {
                self.schema_counter = self.schema_counter.max(n);
            }
            let targets: IdrefTargets = row
                .idref_targets
                .iter()
                .map(|(e, a, t)| ((e.clone(), a.clone()), t.clone()))
                .collect();
            let (dtd, schema, script) = match row.kind.as_str() {
                "xsd" => self.build_xsd_schema(&row.source, &row.root, schema_id)?,
                _ => self.build_dtd_schema(&row.source, &row.root, schema_id, &targets)?,
            };
            self.schemas.insert(
                row.name.clone(),
                RegisteredSchema {
                    name: row.name.clone(),
                    dtd,
                    root: row.root.clone(),
                    schema,
                    create_script: script,
                },
            );
        }
        self.schema_counter = self.schema_counter.max(self.schemas.len() as u64);
        if self.db.catalog().get_table(&Ident::internal("TabMetadata")).is_none() {
            return Ok(()); // meta-table dropped out-of-band: no documents to recount
        }
        let result = self
            .db
            .query("SELECT m.DocID FROM TabMetadata m")
            .map_err(MappingError::Db)?;
        for row in &result.rows {
            let Some(doc_id) = row[0].as_str() else { continue };
            // DocIDs are `<schema>-<n>` ([`Self::store_document`]).
            let Some((schema_name, n)) = doc_id.rsplit_once('-') else { continue };
            let Ok(n) = n.parse::<u64>() else { continue };
            if !self.schemas.contains_key(schema_name) {
                continue;
            }
            self.documents.insert(doc_id.to_string(), schema_name.to_string());
            let counter = self.doc_counters.entry(schema_name.to_string()).or_insert(0);
            *counter = (*counter).max(n);
        }
        Ok(())
    }

    /// Select how generated load operations reach the engine (default:
    /// [`LoadStrategy::Batched`]).
    pub fn set_load_strategy(&mut self, strategy: LoadStrategy) {
        self.load_strategy = strategy;
    }

    pub fn load_strategy(&self) -> LoadStrategy {
        self.load_strategy
    }

    /// Number of shredding workers [`Self::store_documents`] may use
    /// (clamped to at least 1; default 1 — no threads are spawned then).
    pub fn set_load_workers(&mut self, workers: usize) {
        self.load_workers = workers.max(1);
    }

    /// Enable §5 SchemaIDs (`S1`, `S2`, …) so DTDs with identical element
    /// names can coexist in one database.
    pub fn with_auto_schema_ids(mut self) -> Xml2OrDb {
        self.auto_schema_ids = true;
        self
    }

    pub fn mode(&self) -> DbMode {
        self.db.mode()
    }

    /// Direct access to the underlying database (for ad-hoc SQL).
    pub fn database(&mut self) -> &mut Database {
        &mut self.db
    }

    pub fn stats(&self) -> ExecStats {
        self.db.stats()
    }

    pub fn schema(&self, name: &str) -> Option<&RegisteredSchema> {
        self.schemas.get(name)
    }

    /// Run the mapping-level lints ([`crate::maplint::lint_schema`]) and the
    /// catalog-drift check ([`crate::maplint::check_catalog_drift`]) over a
    /// registered schema, against the live catalog. Drift Errors mean a
    /// later [`Self::store_document`] for this schema would fail at load
    /// time: someone altered the backing objects underneath the mapping.
    pub fn maplint(&self, schema_name: &str) -> Result<MapLintReport, MappingError> {
        let reg = self.schemas.get(schema_name).ok_or_else(|| {
            MappingError::InconsistentMapping(format!("schema '{schema_name}' is not registered"))
        })?;
        let mut report = crate::maplint::lint_schema(&reg.schema)?;
        let drift = crate::maplint::check_catalog_drift(&reg.schema, &self.db.catalog())?;
        report.diagnostics.extend(drift.diagnostics);
        Ok(report)
    }

    /// Parse a DTD, run the Fig. 2 mapping for `root`, and execute the
    /// generated DDL. Returns the registered schema.
    pub fn register_dtd(
        &mut self,
        name: &str,
        dtd_text: &str,
        root: &str,
    ) -> Result<&RegisteredSchema, MappingError> {
        self.register_dtd_with_idrefs(name, dtd_text, root, &IdrefTargets::new())
    }

    /// Like [`Self::register_dtd`], but derives §4.4 IDREF targets from a
    /// sample document first (the paper: "This kind of information cannot be
    /// captured from the DTD, rather from the XML document").
    pub fn register_dtd_with_sample(
        &mut self,
        name: &str,
        dtd_text: &str,
        root: &str,
        sample_xml: &str,
    ) -> Result<&RegisteredSchema, MappingError> {
        let dtd = parse_dtd(dtd_text).map_err(MappingError::Dtd)?;
        let doc = xmlord_xml::parse_with_catalog(sample_xml, dtd.entity_catalog())
            .map_err(MappingError::Xml)?;
        let report = validate(&doc, &dtd);
        if !report.is_valid() {
            return Err(MappingError::Invalid(report.errors));
        }
        let mut targets = IdrefTargets::new();
        for (node, attr, id) in &report.idrefs {
            if let Some(target_node) = report.ids.get(id) {
                targets.insert(
                    (doc.name(*node).as_raw(), attr.clone()),
                    doc.name(*target_node).as_raw(),
                );
            }
        }
        self.register_dtd_with_idrefs(name, dtd_text, root, &targets)
    }

    /// Register an **XML Schema** instead of a DTD — the paper's §7
    /// future-work item. The XSD subset is analyzed into the same structural
    /// model, and its simple types become real column types: `xs:integer` →
    /// `NUMBER`, `xs:date` → `DATE`, `maxLength` restrictions → bounded
    /// `VARCHAR(n)` — lifting the §7 drawback "simple elements and
    /// attributes can only be assigned the VARCHAR datatype".
    pub fn register_xsd(
        &mut self,
        name: &str,
        xsd_text: &str,
        root: &str,
    ) -> Result<&RegisteredSchema, MappingError> {
        if self.schemas.contains_key(name) {
            return Err(MappingError::Unsupported(format!(
                "schema '{name}' is already registered"
            )));
        }
        self.schema_counter += 1;
        let schema_id = self.auto_schema_id();
        let (dtd, schema, script) = self.build_xsd_schema(xsd_text, root, schema_id)?;
        self.install_schema(name, root, "xsd", xsd_text, dtd, schema, script, &IdrefTargets::new())
    }

    pub fn register_dtd_with_idrefs(
        &mut self,
        name: &str,
        dtd_text: &str,
        root: &str,
        idref_targets: &IdrefTargets,
    ) -> Result<&RegisteredSchema, MappingError> {
        if self.schemas.contains_key(name) {
            return Err(MappingError::Unsupported(format!(
                "schema '{name}' is already registered"
            )));
        }
        self.schema_counter += 1;
        let schema_id = self.auto_schema_id();
        let (dtd, schema, script) =
            self.build_dtd_schema(dtd_text, root, schema_id, idref_targets)?;
        self.install_schema(name, root, "dtd", dtd_text, dtd, schema, script, idref_targets)
    }

    fn auto_schema_id(&self) -> Option<String> {
        (self.auto_schema_ids && self.options.schema_id.is_none())
            .then(|| format!("S{}", self.schema_counter))
    }

    /// Derive a DTD schema's mapping — a pure function of the DTD text, the
    /// root, the SchemaID and the IDREF targets, so registration and
    /// [`Self::rehydrate`] share it and agree byte-for-byte.
    fn build_dtd_schema(
        &self,
        dtd_text: &str,
        root: &str,
        schema_id: Option<String>,
        idref_targets: &IdrefTargets,
    ) -> Result<(Dtd, MappedSchema, String), MappingError> {
        derive_dtd_schema(dtd_text, root, schema_id, idref_targets, self.db.mode(), &self.options)
    }

    /// XSD counterpart of [`Self::build_dtd_schema`].
    fn build_xsd_schema(
        &self,
        xsd_text: &str,
        root: &str,
        schema_id: Option<String>,
    ) -> Result<(Dtd, MappedSchema, String), MappingError> {
        derive_xsd_schema(xsd_text, root, schema_id, self.db.mode(), &self.options)
    }

    /// Execute a derived schema's DDL plus its `TabSchemas` registry row as
    /// one unit, then record it in the in-memory registry. A failure in
    /// either leaves no trace of the registration.
    #[allow(clippy::too_many_arguments)]
    fn install_schema(
        &mut self,
        name: &str,
        root: &str,
        kind: &str,
        source: &str,
        dtd: Dtd,
        schema: MappedSchema,
        script: String,
        idref_targets: &IdrefTargets,
    ) -> Result<&RegisteredSchema, MappingError> {
        self.ensure_meta_schema()?;
        let mark = self.db.txn_mark();
        let row = SchemaRegistryRow {
            name: name.to_string(),
            root: root.to_string(),
            kind: kind.to_string(),
            source: source.to_string(),
            schema_id: schema.options.schema_id.clone().unwrap_or_default(),
            idref_targets: idref_targets
                .iter()
                .map(|((e, a), t)| (e.clone(), a.clone(), t.clone()))
                .collect(),
        };
        let result = self
            .run_atomic(&script)
            .and_then(|()| {
                self.db
                    .execute(&schema_registry_insert(&row))
                    .map(|_| ())
                    .map_err(MappingError::Db)
            })
            // Registration is durable on its own: a crash after this point
            // must not lose a schema whose documents it later accepts.
            .and_then(|()| self.db.commit().map_err(MappingError::Db));
        if let Err(e) = result {
            self.db.rollback_to_mark(mark);
            return Err(e);
        }
        let registered = RegisteredSchema {
            name: name.to_string(),
            dtd,
            root: root.to_string(),
            schema,
            create_script: script,
        };
        self.schemas.insert(name.to_string(), registered);
        Ok(&self.schemas[name])
    }

    fn ensure_meta_schema(&mut self) -> Result<(), MappingError> {
        if !self.meta_ready {
            self.run_atomic(metadata_ddl())?;
            self.meta_ready = true;
        }
        Ok(())
    }

    /// Execute a generated script all-or-nothing: a failure anywhere rolls
    /// the whole script back, so a half-created schema never leaks into the
    /// database (the paper's CreateSchema step either fully succeeds or
    /// leaves no trace).
    fn run_atomic(&mut self, sql: &str) -> Result<(), MappingError> {
        // Generated DDL is executed for effect only — don't materialize
        // per-statement results.
        let outcome = self
            .db
            .execute_script_opts(sql, RecoveryPolicy::Atomic, ResultMode::Discard)
            .map_err(MappingError::Db)?;
        match outcome.errors.into_iter().next() {
            Some(e) => Err(MappingError::Db(e.error)),
            None => Ok(()),
        }
    }

    /// Store a document under the named schema: well-formedness check,
    /// validity check, attribute-default injection, INSERT generation and
    /// execution, meta-table maintenance. Returns the assigned DocID.
    pub fn store_document(
        &mut self,
        schema_name: &str,
        xml_text: &str,
    ) -> Result<String, MappingError> {
        self.store_document_named(schema_name, xml_text, "", "")
    }

    /// [`Self::store_document`] with explicit DocName/URL meta-data.
    pub fn store_document_named(
        &mut self,
        schema_name: &str,
        xml_text: &str,
        doc_name: &str,
        url: &str,
    ) -> Result<String, MappingError> {
        let registered = self
            .schemas
            .get(schema_name)
            .ok_or_else(|| {
                MappingError::Unsupported(format!("schema '{schema_name}' is not registered"))
            })?
            .clone();
        let span = self.db.trace_begin("shred", format!("{schema_name}: parse + validate"));
        let parsed = xmlord_xml::parse_with_catalog(xml_text, registered.dtd.entity_catalog())
            .map_err(MappingError::Xml);
        let checked = parsed.and_then(|mut doc| {
            let report = validate(&doc, &registered.dtd);
            if !report.is_valid() {
                return Err(MappingError::Invalid(report.errors));
            }
            apply_attribute_defaults(&mut doc, &registered.dtd);
            Ok(doc)
        });
        self.db.trace_end(span);
        let doc = checked?;

        let counter = self.doc_counters.entry(schema_name.to_string()).or_insert(0);
        *counter += 1;
        let doc_id = format!("{schema_name}-{counter}");
        let span = self.db.trace_begin("generate", format!("{doc_id}: INSERT script"));
        let generated = load_ops(&registered.schema, &registered.dtd, &doc, &doc_id)
            .map(|ops| prepare_load(ops, self.load_strategy));
        self.db.trace_end(span);
        let load = generated?;
        let meta = metadata_insert(
            &registered.schema,
            &registered.dtd,
            &doc,
            &doc_id,
            doc_name,
            url,
            "2002-03-25", // the workshop's date — deterministic by design
        );

        // The whole load — content rows plus the meta-table row — is one
        // transaction: a failure mid-script rolls everything back, so a
        // document is either fully stored or absent (never a torn load
        // with content rows but no XML_DOCUMENTS entry, or vice versa).
        let span = self.db.trace_begin("load", doc_id.clone());
        let mark = self.db.txn_mark();
        // The commit is part of the load: if the WAL append (fsync) fails,
        // nothing was acknowledged, so roll back with the rest.
        let result = apply_load(&mut self.db, &load, &meta)
            .and_then(|()| self.db.commit().map_err(MappingError::Db));
        if let Err(e) = result {
            self.db.rollback_to_mark(mark);
            self.db.trace_end(span);
            // The DocID is not consumed by a failed load.
            if let Some(c) = self.doc_counters.get_mut(schema_name) {
                *c -= 1;
            }
            return Err(e);
        }
        self.db.trace_end(span);
        self.documents.insert(doc_id.clone(), schema_name.to_string());
        Ok(doc_id)
    }

    /// Store many documents under one schema in a single transaction.
    ///
    /// Parsing, validation, shredding and binding run on up to
    /// [`Self::set_load_workers`] worker threads; a single writer applies
    /// each document's batches in submission order, so the resulting
    /// database state is identical to storing the documents one by one —
    /// regardless of the worker count. All-or-nothing: any failure rolls
    /// the whole bulk load back and no DocIDs are consumed.
    ///
    /// Returns the assigned DocIDs, in input order.
    pub fn store_documents(
        &mut self,
        schema_name: &str,
        docs: &[(&str, &str)],
    ) -> Result<Vec<String>, MappingError> {
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        let registered = self
            .schemas
            .get(schema_name)
            .cloned()
            .ok_or_else(|| {
                MappingError::Unsupported(format!("schema '{schema_name}' is not registered"))
            })?;
        let base = self.doc_counters.get(schema_name).copied().unwrap_or(0);
        let doc_ids: Vec<String> = (0..docs.len())
            .map(|i| format!("{schema_name}-{}", base + i as u64 + 1))
            .collect();
        let strategy = self.load_strategy;
        let workers = self.load_workers.min(docs.len());
        let span = self.db.trace_begin(
            "bulk",
            format!("{schema_name}: {} documents, {workers} workers", docs.len()),
        );
        let mark = self.db.txn_mark();
        let result = if workers <= 1 {
            let db = &mut self.db;
            docs.iter().zip(&doc_ids).try_for_each(|((name, xml), doc_id)| {
                let (load, meta) = shred_one(&registered, strategy, xml, doc_id, name)?;
                apply_load(db, &load, &meta)
            })
        } else {
            self.store_documents_parallel(&registered, strategy, docs, &doc_ids, workers)
        };
        let result = result.and_then(|()| self.db.commit().map_err(MappingError::Db));
        match result {
            Ok(()) => {
                self.db.trace_end(span);
                self.doc_counters
                    .insert(schema_name.to_string(), base + docs.len() as u64);
                for doc_id in &doc_ids {
                    self.documents.insert(doc_id.clone(), schema_name.to_string());
                }
                Ok(doc_ids)
            }
            Err(e) => {
                self.db.rollback_to_mark(mark);
                self.db.trace_end(span);
                Err(e)
            }
        }
    }

    fn store_documents_parallel(
        &mut self,
        registered: &RegisteredSchema,
        strategy: LoadStrategy,
        docs: &[(&str, &str)],
        doc_ids: &[String],
        workers: usize,
    ) -> Result<(), MappingError> {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        use std::sync::mpsc;

        let next = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel();
        let db = &mut self.db;
        std::thread::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                let (next, cancelled) = (&next, &cancelled);
                s.spawn(move || loop {
                    if cancelled.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= docs.len() {
                        break;
                    }
                    let (name, xml) = docs[i];
                    let out = shred_one(registered, strategy, xml, &doc_ids[i], name);
                    if tx.send((i, out)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // Single writer: workers finish in any order, but documents are
            // applied strictly in submission order, so the database state is
            // independent of scheduling.
            let mut pending = BTreeMap::new();
            let mut next_apply = 0usize;
            let result = (|| {
                while next_apply < docs.len() {
                    let (i, out) = rx.recv().expect("every document sends one result");
                    pending.insert(i, out);
                    while let Some(out) = pending.remove(&next_apply) {
                        let (load, meta) = out?;
                        apply_load(db, &load, &meta)?;
                        next_apply += 1;
                    }
                }
                Ok(())
            })();
            if result.is_err() {
                // Stop claiming new documents; in-flight ones drain into the
                // (unbounded) channel, which drops with `rx`.
                cancelled.store(true, Ordering::Relaxed);
            }
            result
        })
    }

    /// Reconstruct a stored document as a DOM.
    pub fn retrieve_dom(&mut self, doc_id: &str) -> Result<(Document, DocMetadata), MappingError> {
        let schema_name = self
            .documents
            .get(doc_id)
            .cloned()
            .ok_or_else(|| MappingError::NoSuchDocument(doc_id.to_string()))?;
        let registered = self
            .schemas
            .get(&schema_name)
            .ok_or_else(|| {
                MappingError::InconsistentMapping(format!(
                    "document '{doc_id}' references schema '{schema_name}' which is no longer registered"
                ))
            })?
            .clone();
        let span = self.db.trace_begin("retrieve", doc_id.to_string());
        let result = (|| {
            let meta = read_metadata(&mut self.db, doc_id)?;
            let (doc, stats) = retrieve_with_stats(&self.db, &registered.schema, &meta)?;
            let bulk = self.db.bulk_retrieval();
            self.db.record_retrieval(stats.table_scans, stats.index_probes, bulk);
            Ok((doc, meta))
        })();
        self.db.trace_end(span);
        result
    }

    /// Reconstruct a stored document as XML text, re-substituting the
    /// original entity references from the meta-data (§6.1).
    pub fn retrieve_document(&mut self, doc_id: &str) -> Result<String, MappingError> {
        let (doc, meta) = self.retrieve_dom(doc_id)?;
        Ok(serialize(&doc, &retrieval_serialize_options(&meta)))
    }

    /// Reconstruct a stored document as XML text, streaming the bytes into
    /// `out` instead of materializing a `String` ([`MappingError::Io`]
    /// surfaces writer failures).
    pub fn export_to_writer<W: std::io::Write>(
        &mut self,
        doc_id: &str,
        out: &mut W,
    ) -> Result<(), MappingError> {
        let (doc, meta) = self.retrieve_dom(doc_id)?;
        let opts = retrieval_serialize_options(&meta);
        xmlord_xml::serializer::serialize_to(&doc, &opts, out)?;
        Ok(())
    }

    /// Reconstruct many stored documents, fanning the work across
    /// [`xmlord_ordb::ReadSession`] snapshot readers — one per worker (see
    /// [`Self::set_load_workers`]). Results come back in request order and
    /// are byte-identical to serial [`Self::retrieve_document`] calls; the
    /// retrieval counters fold into this handle's [`ExecStats`] afterwards.
    pub fn retrieve_documents(&mut self, doc_ids: &[&str]) -> Result<Vec<String>, MappingError> {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        use std::sync::mpsc;

        if doc_ids.is_empty() {
            return Ok(Vec::new());
        }
        let workers = self.load_workers.min(doc_ids.len());
        if workers <= 1 {
            return doc_ids.iter().map(|id| self.retrieve_document(id)).collect();
        }
        // Resolve every document's schema up front: unknown ids fail before
        // any worker starts, exactly as the serial loop's first failure.
        let jobs: Vec<(&str, &RegisteredSchema)> = doc_ids
            .iter()
            .map(|&doc_id| {
                let schema_name = self
                    .documents
                    .get(doc_id)
                    .ok_or_else(|| MappingError::NoSuchDocument(doc_id.to_string()))?;
                let registered = self.schemas.get(schema_name).ok_or_else(|| {
                    MappingError::InconsistentMapping(format!(
                        "document '{doc_id}' references schema '{schema_name}' \
                         which is no longer registered"
                    ))
                })?;
                Ok((doc_id, registered))
            })
            .collect::<Result<_, MappingError>>()?;

        let span = self.db.trace_begin(
            "bulk-retrieve",
            format!("{} documents, {workers} workers", doc_ids.len()),
        );
        let next = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel();
        let db = &self.db;
        let result: Result<(Vec<String>, Vec<RetrievalStats>), MappingError> =
            std::thread::scope(|s| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let (next, cancelled, jobs) = (&next, &cancelled, &jobs);
                    s.spawn(move || {
                        // Each worker reads through its own MVCC snapshot
                        // reader; the sessions all pin the same committed
                        // state, so worker count cannot change the bytes.
                        let mut session = db.read_session();
                        loop {
                            if cancelled.load(Ordering::Relaxed) {
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= jobs.len() {
                                break;
                            }
                            let (doc_id, registered) = jobs[i];
                            let out = retrieve_snapshot(&mut session, &registered.schema, doc_id)
                                .map(|(doc, meta, stats)| {
                                    let opts = retrieval_serialize_options(&meta);
                                    (serialize(&doc, &opts), stats)
                                });
                            if tx.send((i, out)).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(tx);
                let mut pending = BTreeMap::new();
                let mut texts = Vec::with_capacity(jobs.len());
                let mut stats = Vec::with_capacity(jobs.len());
                let result = (|| {
                    while texts.len() < jobs.len() {
                        let (i, out) = rx.recv().expect("every document sends one result");
                        pending.insert(i, out);
                        while let Some(out) = pending.remove(&texts.len()) {
                            let (text, s) = out?;
                            texts.push(text);
                            stats.push(s);
                        }
                    }
                    Ok((texts, stats))
                })();
                if result.is_err() {
                    cancelled.store(true, Ordering::Relaxed);
                }
                result
            });
        self.db.trace_end(span);
        let (texts, all_stats) = result?;
        let bulk = self.db.bulk_retrieval();
        for s in all_stats {
            self.db.record_retrieval(s.table_scans, s.index_probes, bulk);
        }
        Ok(texts)
    }

    /// Reconstruct every stored document — `(doc_id, xml)` pairs in DocID
    /// order — through the parallel fan of [`Self::retrieve_documents`].
    pub fn retrieve_all(&mut self) -> Result<Vec<(String, String)>, MappingError> {
        let ids: Vec<String> = self.documents.keys().cloned().collect();
        let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let texts = self.retrieve_documents(&id_refs)?;
        Ok(ids.into_iter().zip(texts).collect())
    }

    /// Create the secondary indexes the bulk retriever probes for one
    /// registered schema: a doc-id index on the root table plus one index
    /// per ParentRef column (reusing [`crate::pathquery::index_script`]'s
    /// column choices). Columns that already carry an index are skipped;
    /// returns how many indexes were created.
    pub fn create_retrieval_indexes(&mut self, schema_name: &str) -> Result<usize, MappingError> {
        let registered = self.schemas.get(schema_name).cloned().ok_or_else(|| {
            MappingError::Unsupported(format!("schema '{schema_name}' is not registered"))
        })?;
        let schema = &registered.schema;
        let mut created = 0usize;
        let mut want: Vec<(String, String)> = Vec::new();
        if let Some(col) = &schema.doc_id_column {
            want.push((schema.root_table.clone(), col.clone()));
        }
        for mapping in schema.elements.values() {
            let Some(table) = &mapping.table else { continue };
            for field in &mapping.fields {
                if matches!(field.source, crate::model::FieldSource::ParentRef(_)) {
                    want.push((table.clone(), field.db_name.clone()));
                }
            }
        }
        for (n, (table, col)) in want.into_iter().enumerate() {
            let table_id = Ident::internal(&table);
            let col_id = Ident::internal(&col);
            let covered = self
                .db
                .catalog()
                .indexes_on(&table_id)
                .any(|ix| ix.columns.len() == 1 && ix.columns[0] == col_id);
            if covered {
                continue;
            }
            // Oracle's 30-character identifier limit; the counter keeps
            // truncated names unique per schema.
            let mut name = format!("IxRtr{n:02}{table}");
            name.truncate(30);
            self.db
                .execute(&format!("CREATE INDEX {name} ON {table} ({col})"))
                .map_err(MappingError::Db)?;
            created += 1;
        }
        Ok(created)
    }

    /// Create the secondary indexes the *load* path probes: one per
    /// synthetic-id column. The Oracle 8 inverted mapping wires each child
    /// row to its parent with a `(SELECT REF(p) … WHERE p.<id> = …)`
    /// subquery — without an index every such subquery scans the parent
    /// table, making bulk ingest quadratic in document size. IDREF
    /// attributes resolve through the same id columns in both modes.
    /// Columns that already carry an index are skipped; returns how many
    /// indexes were created.
    pub fn create_load_indexes(&mut self, schema_name: &str) -> Result<usize, MappingError> {
        let registered = self.schemas.get(schema_name).cloned().ok_or_else(|| {
            MappingError::Unsupported(format!("schema '{schema_name}' is not registered"))
        })?;
        let mut created = 0usize;
        let want: Vec<(String, String)> = registered
            .schema
            .elements
            .values()
            .filter_map(|m| Some((m.table.clone()?, m.synthetic_id.clone()?)))
            .collect();
        for (n, (table, col)) in want.into_iter().enumerate() {
            let table_id = Ident::internal(&table);
            let col_id = Ident::internal(&col);
            let covered = self
                .db
                .catalog()
                .indexes_on(&table_id)
                .any(|ix| ix.columns.len() == 1 && ix.columns[0] == col_id);
            if covered {
                continue;
            }
            let mut name = format!("IxLd{n:02}{table}");
            name.truncate(30);
            self.db
                .execute(&format!("CREATE INDEX {name} ON {table} ({col})"))
                .map_err(MappingError::Db)?;
            created += 1;
        }
        Ok(created)
    }

    /// Tear down the façade and hand back the engine — e.g. to move a
    /// bulk-loaded database into a wire server.
    pub fn into_database(self) -> Database {
        self.db
    }

    /// Run a path query (§4.1 dot notation) against a registered schema.
    pub fn query_path(
        &mut self,
        schema_name: &str,
        query: &crate::pathquery::PathQuery,
    ) -> Result<xmlord_ordb::QueryResult, MappingError> {
        let registered = self.schemas.get(schema_name).ok_or_else(|| {
            MappingError::Unsupported(format!("schema '{schema_name}' is not registered"))
        })?;
        let translated = crate::pathquery::translate(&registered.schema, query)?;
        Ok(self.db.query(&translated.sql)?)
    }

    /// Compare a stored document against its reconstruction (experiment E9).
    pub fn fidelity(&mut self, doc_id: &str, original_xml: &str) -> Result<crate::roundtrip::FidelityReport, MappingError> {
        let schema_name = self
            .documents
            .get(doc_id)
            .cloned()
            .ok_or_else(|| MappingError::NoSuchDocument(doc_id.to_string()))?;
        let registered = self
            .schemas
            .get(&schema_name)
            .ok_or_else(|| {
                MappingError::InconsistentMapping(format!(
                    "document '{doc_id}' references schema '{schema_name}' which is no longer registered"
                ))
            })?
            .clone();
        let original =
            xmlord_xml::parse_with_catalog(original_xml, registered.dtd.entity_catalog())
                .map_err(MappingError::Xml)?;
        let (restored, _) = self.retrieve_dom(doc_id)?;
        Ok(crate::roundtrip::compare(&original, &restored))
    }
}

/// How retrieved documents serialize: declaration restored from the
/// meta-table, entities re-substituted (§6.1), no added whitespace.
pub fn retrieval_serialize_options(meta: &DocMetadata) -> SerializeOptions {
    SerializeOptions {
        include_declaration: true,
        include_doctype: false,
        indent: None,
        entity_catalog: Some(meta.entity_catalog()),
    }
}

/// Derive a mapped schema from DTD source — the schema-building core of
/// [`Xml2OrDb::register_dtd`], callable without a pipeline instance (the
/// wire server rebuilds schemas from registry rows this way).
fn derive_dtd_schema(
    dtd_text: &str,
    root: &str,
    schema_id: Option<String>,
    idref_targets: &IdrefTargets,
    mode: DbMode,
    base_options: &MappingOptions,
) -> Result<(Dtd, MappedSchema, String), MappingError> {
    let dtd = parse_dtd(dtd_text).map_err(MappingError::Dtd)?;
    let mut options = base_options.clone();
    if options.schema_id.is_none() {
        options.schema_id = schema_id;
    }
    if !idref_targets.is_empty() {
        options.map_idrefs = true;
    }
    let schema = generate_schema(&dtd, root, mode, options, idref_targets)?;
    let script = create_script(&schema)?;
    Ok((dtd, schema, script))
}

/// XSD counterpart of [`derive_dtd_schema`].
fn derive_xsd_schema(
    xsd_text: &str,
    root: &str,
    schema_id: Option<String>,
    mode: DbMode,
    base_options: &MappingOptions,
) -> Result<(Dtd, MappedSchema, String), MappingError> {
    let xsd = xmlord_dtd::xsd::parse_xsd(xsd_text)
        .map_err(|e| MappingError::Unsupported(format!("XSD analysis failed: {e}")))?;
    if xsd.dtd.element(root).is_none() {
        return Err(MappingError::RootNotDeclared(root.to_string()));
    }
    let mut options = base_options.clone();
    if options.schema_id.is_none() {
        options.schema_id = schema_id;
    }
    // Convert the XSD scalar hints into mapping type hints.
    let to_scalar = |h: &xmlord_dtd::xsd::ScalarHint| match h {
        xmlord_dtd::xsd::ScalarHint::Varchar(n) => crate::model::ScalarType::Varchar(*n),
        xmlord_dtd::xsd::ScalarHint::Clob => crate::model::ScalarType::Clob,
        xmlord_dtd::xsd::ScalarHint::Number => crate::model::ScalarType::Number,
        xmlord_dtd::xsd::ScalarHint::Date => crate::model::ScalarType::Date,
    };
    for (element, hint) in &xsd.element_hints {
        options.type_hints.elements.insert(element.clone(), to_scalar(hint));
    }
    for (key, hint) in &xsd.attribute_hints {
        options.type_hints.attributes.insert(key.clone(), to_scalar(hint));
    }
    let schema = generate_schema(&xsd.dtd, root, mode, options, &IdrefTargets::new())?;
    let script = create_script(&schema)?;
    Ok((xsd.dtd, schema, script))
}

/// Rebuild the [`MappedSchema`] registered under `name` by reading its
/// `TabSchemas` row through an MVCC read session — how a wire-server
/// connection resolves a document's schema from its own pinned snapshot,
/// without touching the writer or holding a pipeline instance. `options`
/// must match the store's creation options (the registry records a
/// schema's inputs, not the global option set — the same caveat as
/// [`Xml2OrDb::open_with_options`]).
pub fn schema_via_session(
    session: &mut xmlord_ordb::ReadSession,
    name: &str,
    options: &MappingOptions,
) -> Result<MappedSchema, MappingError> {
    let mode = session.mode();
    let row = read_schema_registry(session)?
        .into_iter()
        .find(|r| r.name == name)
        .ok_or_else(|| {
            MappingError::InconsistentMapping(format!("schema '{name}' is not registered"))
        })?;
    let schema_id = (!row.schema_id.is_empty()).then(|| row.schema_id.clone());
    let targets: IdrefTargets = row
        .idref_targets
        .iter()
        .map(|(e, a, t)| ((e.clone(), a.clone()), t.clone()))
        .collect();
    let (_, schema, _) = match row.kind.as_str() {
        "xsd" => derive_xsd_schema(&row.source, &row.root, schema_id, mode, options)?,
        _ => derive_dtd_schema(&row.source, &row.root, schema_id, &targets, mode, options)?,
    };
    Ok(schema)
}

/// Bind generated load operations to the chosen delivery form.
fn prepare_load(ops: Vec<LoadOp>, strategy: LoadStrategy) -> PreparedLoad {
    match strategy {
        LoadStrategy::Batched => PreparedLoad::Units(plan_batches(ops)),
        LoadStrategy::SqlText => PreparedLoad::Sql(ops.iter().map(LoadOp::to_sql).collect()),
    }
}

/// Parse, validate, shred and bind one document — no database access, so
/// this runs off the engine thread.
fn shred_one(
    registered: &RegisteredSchema,
    strategy: LoadStrategy,
    xml_text: &str,
    doc_id: &str,
    doc_name: &str,
) -> Result<(PreparedLoad, String), MappingError> {
    let mut doc = xmlord_xml::parse_with_catalog(xml_text, registered.dtd.entity_catalog())
        .map_err(MappingError::Xml)?;
    let report = validate(&doc, &registered.dtd);
    if !report.is_valid() {
        return Err(MappingError::Invalid(report.errors));
    }
    apply_attribute_defaults(&mut doc, &registered.dtd);
    let ops = load_ops(&registered.schema, &registered.dtd, &doc, doc_id)?;
    let meta = metadata_insert(
        &registered.schema,
        &registered.dtd,
        &doc,
        doc_id,
        doc_name,
        "",
        "2002-03-25",
    );
    Ok((prepare_load(ops, strategy), meta))
}

/// Apply one document's content operations plus its meta-table row.
fn apply_load(db: &mut Database, load: &PreparedLoad, meta: &str) -> Result<(), MappingError> {
    match load {
        PreparedLoad::Units(units) => {
            for unit in units {
                match unit {
                    LoadUnit::Batch(batch) => {
                        db.execute_batch(batch).map_err(MappingError::Db)?;
                    }
                    LoadUnit::Stmt(stmt) => {
                        db.execute_stmt(stmt).map_err(MappingError::Db)?;
                    }
                }
            }
        }
        PreparedLoad::Sql(stmts) => {
            for sql in stmts {
                db.execute(sql).map_err(MappingError::Db)?;
            }
        }
    }
    db.execute(meta).map_err(MappingError::Db)?;
    Ok(())
}

/// Inject DTD attribute defaults (`#FIXED "v"`, `attr CDATA "v"`) into a
/// document, as a validating parser would.
pub fn apply_attribute_defaults(doc: &mut Document, dtd: &Dtd) {
    let Some(root) = doc.root_element() else { return };
    let nodes = doc.descendants(root);
    for node in nodes {
        let Some(el) = doc.element(node) else { continue };
        let name = el.name.as_raw();
        let defaults: Vec<(String, String)> = dtd
            .attributes_of(&name)
            .iter()
            .filter_map(|def| {
                def.default
                    .default_value()
                    .map(|v| (def.name.clone(), v.to_string()))
            })
            .collect();
        for (attr, value) in defaults {
            if doc.attribute(node, &attr).is_none() {
                doc.set_attribute(node, QName::local(&attr), &value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlord_ordb::Value;

    const UNIVERSITY_DTD: &str = r#"
<!ELEMENT University (StudyCourse,Student*)>
<!ELEMENT Student (LName,FName,Course*)>
<!ATTLIST Student StudNr CDATA #REQUIRED>
<!ELEMENT Course (Name,Professor*,CreditPts?)>
<!ELEMENT Professor (PName,Subject+,Dept)>
<!ENTITY cs "Computer Science">
<!ELEMENT LName (#PCDATA)> <!ELEMENT FName (#PCDATA)>
<!ELEMENT Name (#PCDATA)> <!ELEMENT PName (#PCDATA)>
<!ELEMENT Subject (#PCDATA)> <!ELEMENT Dept (#PCDATA)>
<!ELEMENT StudyCourse (#PCDATA)> <!ELEMENT CreditPts (#PCDATA)>
"#;

    const UNIVERSITY_XML: &str = "<University><StudyCourse>&cs;</StudyCourse>\
<Student StudNr=\"23374\"><LName>Conrad</LName><FName>Matthias</FName>\
<Course><Name>DBS II</Name><Professor><PName>Kudrass</PName>\
<Subject>DBS</Subject><Subject>OS</Subject><Dept>&cs;</Dept></Professor>\
<CreditPts>4</CreditPts></Course></Student></University>";

    #[test]
    fn full_pipeline_store_and_retrieve_with_entities() {
        let mut sys = Xml2OrDb::new(DbMode::Oracle9);
        sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
        let doc_id = sys.store_document("uni", UNIVERSITY_XML).unwrap();
        let restored = sys.retrieve_document(&doc_id).unwrap();
        // §6.1: the entity reference comes back.
        assert!(restored.contains("<StudyCourse>&cs;</StudyCourse>"), "{restored}");
        assert!(restored.contains("<Dept>&cs;</Dept>"), "{restored}");
        assert!(restored.contains("StudNr=\"23374\""));
    }

    #[test]
    fn fidelity_report_shows_data_preserved() {
        let mut sys = Xml2OrDb::new(DbMode::Oracle9);
        sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
        let doc_id = sys.store_document("uni", UNIVERSITY_XML).unwrap();
        let report = sys.fidelity(&doc_id, UNIVERSITY_XML).unwrap();
        assert!(report.is_exact(), "{:?}", report.losses);
    }

    #[test]
    fn invalid_documents_are_rejected() {
        let mut sys = Xml2OrDb::new(DbMode::Oracle9);
        sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
        // Missing required StudNr.
        let err = sys
            .store_document(
                "uni",
                "<University><StudyCourse>x</StudyCourse><Student><LName>a</LName><FName>b</FName></Student></University>",
            )
            .unwrap_err();
        assert!(matches!(err, MappingError::Invalid(_)));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        let mut sys = Xml2OrDb::new(DbMode::Oracle9);
        sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
        assert!(matches!(
            sys.store_document("uni", "<University><broken"),
            Err(MappingError::Xml(_))
        ));
    }

    #[test]
    fn multiple_documents_under_one_schema() {
        let mut sys = Xml2OrDb::new(DbMode::Oracle9);
        sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
        let a = sys.store_document("uni", UNIVERSITY_XML).unwrap();
        let b = sys
            .store_document(
                "uni",
                "<University><StudyCourse>Math</StudyCourse></University>",
            )
            .unwrap();
        assert_ne!(a, b);
        assert!(sys.retrieve_document(&b).unwrap().contains("Math"));
        assert!(sys.retrieve_document(&a).unwrap().contains("&cs;"));
    }

    #[test]
    fn auto_schema_ids_let_identical_element_names_coexist() {
        // §5: "SchemaIDs are necessary to deal with identical element names
        // from different DTDs."
        let mut sys = Xml2OrDb::new(DbMode::Oracle9).with_auto_schema_ids();
        sys.register_dtd("a", "<!ELEMENT Item (#PCDATA)>", "Item").unwrap();
        sys.register_dtd("b", "<!ELEMENT Item (Name)><!ELEMENT Name (#PCDATA)>", "Item")
            .unwrap();
        let d1 = sys.store_document("a", "<Item>plain</Item>").unwrap();
        let d2 = sys.store_document("b", "<Item><Name>structured</Name></Item>").unwrap();
        assert!(sys.retrieve_document(&d1).unwrap().contains("plain"));
        assert!(sys.retrieve_document(&d2).unwrap().contains("<Name>structured</Name>"));
    }

    #[test]
    fn without_schema_ids_identical_names_collide() {
        let mut sys = Xml2OrDb::new(DbMode::Oracle9);
        sys.register_dtd("a", "<!ELEMENT Item (#PCDATA)>", "Item").unwrap();
        let err = sys
            .register_dtd("b", "<!ELEMENT Item (Name)><!ELEMENT Name (#PCDATA)>", "Item")
            .unwrap_err();
        assert!(matches!(err, MappingError::Db(_)));
    }

    #[test]
    fn path_queries_run_through_the_facade() {
        let mut sys = Xml2OrDb::new(DbMode::Oracle9);
        sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
        sys.store_document("uni", UNIVERSITY_XML).unwrap();
        let q = crate::pathquery::PathQuery::parse("Student/LName")
            .with_predicate("Student/Course/Professor/PName", "Kudrass");
        let rows = sys.query_path("uni", &q).unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("Conrad")]]);
    }

    #[test]
    fn attribute_defaults_are_applied() {
        let dtd_text = r#"<!ELEMENT e EMPTY>
            <!ATTLIST e kind CDATA "standard" fixed CDATA #FIXED "42">"#;
        let dtd = parse_dtd(dtd_text).unwrap();
        let mut doc = xmlord_xml::parse("<e/>").unwrap();
        apply_attribute_defaults(&mut doc, &dtd);
        let root = doc.root_element().unwrap();
        assert_eq!(doc.attribute(root, "kind"), Some("standard"));
        assert_eq!(doc.attribute(root, "fixed"), Some("42"));
        // Existing values are not overwritten.
        let mut doc2 = xmlord_xml::parse("<e kind=\"special\"/>").unwrap();
        apply_attribute_defaults(&mut doc2, &dtd);
        assert_eq!(doc2.attribute(doc2.root_element().unwrap(), "kind"), Some("special"));
    }

    #[test]
    fn idref_sample_registration_end_to_end() {
        let dtd_text = r#"
            <!ELEMENT db (person*)>
            <!ELEMENT person (#PCDATA)>
            <!ATTLIST person id ID #REQUIRED boss IDREF #IMPLIED>"#;
        let xml = r#"<db><person id="p1">Kudrass</person><person id="p2" boss="p1">Conrad</person></db>"#;
        let mut sys = Xml2OrDb::new(DbMode::Oracle9);
        sys.register_dtd_with_sample("org", dtd_text, "db", xml).unwrap();
        let doc_id = sys.store_document("org", xml).unwrap();
        let restored = sys.retrieve_document(&doc_id).unwrap();
        assert!(restored.contains("boss=\"p1\""), "{restored}");
    }

    #[test]
    fn stats_expose_the_headline_numbers() {
        let mut sys = Xml2OrDb::new(DbMode::Oracle9);
        sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
        let before = sys.stats();
        sys.store_document("uni", UNIVERSITY_XML).unwrap();
        let delta = sys.stats().since(&before);
        // One document INSERT plus one metadata INSERT.
        assert_eq!(delta.inserts, 2);
    }

    #[test]
    fn failed_store_leaves_no_torn_state() {
        for mode in [DbMode::Oracle8, DbMode::Oracle9] {
            let mut sys = Xml2OrDb::new(mode);
            sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
            // Sabotage the meta-table so the *last* statement of the load
            // fails, after all the content INSERTs have succeeded.
            sys.database().execute("DROP TABLE TabMetadata").unwrap();
            sys.database().commit().unwrap();
            let before = sys.database().state_dump();

            let err = sys.store_document("uni", UNIVERSITY_XML).unwrap_err();
            assert!(matches!(err, MappingError::Db(_)), "{mode:?}: {err}");
            // Atomic load: the content rows rolled back with the failure.
            assert_eq!(
                sys.database().state_dump(),
                before,
                "{mode:?}: failed load left residue"
            );
            assert!(sys.retrieve_document("uni-1").is_err());

            // Restore the meta-table (its types survived the DROP): the
            // next store succeeds and reuses the DocID the failed load
            // gave back.
            let tab_ddl = metadata_ddl()
                .split_once("CREATE TABLE TabMetadata")
                .map(|(_, tail)| format!("CREATE TABLE TabMetadata{tail}"))
                .unwrap();
            sys.database().execute_script(&tab_ddl).unwrap();
            let doc_id = sys.store_document("uni", UNIVERSITY_XML).unwrap();
            assert_eq!(doc_id, "uni-1", "{mode:?}");
            assert!(sys.retrieve_document(&doc_id).unwrap().contains("Conrad"));
        }
    }

    #[test]
    fn unknown_doc_and_schema_errors() {
        let mut sys = Xml2OrDb::new(DbMode::Oracle9);
        assert!(matches!(
            sys.store_document("nope", "<a/>"),
            Err(MappingError::Unsupported(_))
        ));
        assert!(matches!(
            sys.retrieve_document("ghost"),
            Err(MappingError::NoSuchDocument(_))
        ));
    }

    #[test]
    fn traced_pipeline_emits_shred_generate_load_retrieve_spans() {
        let mut sys = Xml2OrDb::new(DbMode::Oracle9);
        let (handle, ring) = xmlord_ordb::TraceHandle::ring(4096);
        sys.database().set_trace_sink(Some(handle));
        sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
        let doc_id = sys.store_document("uni", UNIVERSITY_XML).unwrap();
        sys.retrieve_document(&doc_id).unwrap();
        let ring = ring.lock().unwrap();
        let phases: Vec<&str> = ring.events().map(|e| e.phase).collect();
        for phase in ["shred", "generate", "load", "retrieve"] {
            assert!(phases.contains(&phase), "missing {phase} in {phases:?}");
        }
        // The load span accounts for the content + metadata INSERTs.
        let load = ring.events().find(|e| e.phase == "load").unwrap();
        assert_eq!(load.detail, "uni-1");
        assert_eq!(load.delta.inserts, 2);
        // The retrieve span covers only reads: no undo-log records.
        let retrieve = ring.events().find(|e| e.phase == "retrieve").unwrap();
        assert_eq!(retrieve.delta.undo_records, 0);
    }

    #[test]
    fn batched_and_text_loads_produce_identical_state() {
        // The bulk path must be invisible in the data: same documents,
        // byte-identical state dump, whichever strategy delivered them.
        for mode in [DbMode::Oracle8, DbMode::Oracle9] {
            let build = |strategy: LoadStrategy| {
                let mut sys = Xml2OrDb::new(mode);
                sys.set_load_strategy(strategy);
                sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
                sys.store_document("uni", UNIVERSITY_XML).unwrap();
                sys.store_document(
                    "uni",
                    "<University><StudyCourse>Math</StudyCourse></University>",
                )
                .unwrap();
                sys.database().state_dump()
            };
            assert_eq!(
                build(LoadStrategy::Batched),
                build(LoadStrategy::SqlText),
                "{mode:?}: strategies diverged"
            );
        }
    }

    #[test]
    fn parallel_bulk_store_matches_sequential_storing() {
        let corpus: Vec<(String, String)> = (0..8)
            .map(|i| {
                (
                    format!("doc{i}"),
                    format!("<University><StudyCourse>C{i}</StudyCourse></University>"),
                )
            })
            .collect();
        let docs: Vec<(&str, &str)> =
            corpus.iter().map(|(n, x)| (n.as_str(), x.as_str())).collect();
        let baseline = {
            let mut sys = Xml2OrDb::new(DbMode::Oracle9);
            sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
            for (name, xml) in &docs {
                sys.store_document_named("uni", xml, name, "").unwrap();
            }
            sys.database().state_dump()
        };
        for workers in [1, 2, 4] {
            let mut sys = Xml2OrDb::new(DbMode::Oracle9);
            sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
            sys.set_load_workers(workers);
            let ids = sys.store_documents("uni", &docs).unwrap();
            assert_eq!(ids.first().map(String::as_str), Some("uni-1"));
            assert_eq!(ids.len(), docs.len());
            assert_eq!(
                sys.database().state_dump(),
                baseline,
                "workers={workers}: bulk store diverged from one-by-one"
            );
            assert!(sys.retrieve_document(&ids[3]).unwrap().contains("C3"));
        }
    }

    #[test]
    fn failed_bulk_store_rolls_everything_back() {
        for workers in [1, 2] {
            let mut sys = Xml2OrDb::new(DbMode::Oracle9);
            sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
            sys.set_load_workers(workers);
            let before = sys.database().state_dump();
            let err = sys
                .store_documents("uni", &[("good", UNIVERSITY_XML), ("bad", "<University><broken")])
                .unwrap_err();
            assert!(matches!(err, MappingError::Xml(_)), "workers={workers}: {err}");
            assert_eq!(
                sys.database().state_dump(),
                before,
                "workers={workers}: failed bulk store left residue"
            );
            // The failed bulk load consumed no DocIDs.
            assert_eq!(sys.store_document("uni", UNIVERSITY_XML).unwrap(), "uni-1");
        }
    }

    #[test]
    fn oracle8_pipeline_round_trips_too() {
        let mut sys = Xml2OrDb::new(DbMode::Oracle8);
        sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
        let doc_id = sys.store_document("uni", UNIVERSITY_XML).unwrap();
        let restored = sys.retrieve_document(&doc_id).unwrap();
        assert!(restored.contains("<LName>Conrad</LName>"));
        assert!(restored.contains("&cs;"));
    }

    fn temp_store_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "xmlord-pipeline-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn durable_store_survives_reopen() {
        let dir = temp_store_dir("reopen");
        let dumps = {
            let mut sys = Xml2OrDb::open(&dir, DbMode::Oracle9).unwrap().with_auto_schema_ids();
            sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
            let doc_id = sys.store_document("uni", UNIVERSITY_XML).unwrap();
            assert_eq!(doc_id, "uni-1");
            (sys.database().state_dump(), sys.retrieve_document(&doc_id).unwrap())
        };

        // A brand-new process image: everything must come back from disk.
        let mut sys = Xml2OrDb::open(&dir, DbMode::Oracle9).unwrap().with_auto_schema_ids();
        assert_eq!(sys.database().state_dump(), dumps.0, "recovered engine state differs");
        assert_eq!(sys.retrieve_document("uni-1").unwrap(), dumps.1);
        assert!(sys.schema("uni").is_some(), "schema registry not rehydrated");

        // DocID allocation continues where it left off, and the re-derived
        // mapping accepts new documents for the recovered schema.
        let doc_id = sys.store_document("uni", UNIVERSITY_XML).unwrap();
        assert_eq!(doc_id, "uni-2");

        // A second schema gets a fresh SchemaID, not a reused one.
        let mini_dtd = "<!ELEMENT Note (#PCDATA)>";
        sys.register_dtd("note", mini_dtd, "Note").unwrap();
        let id = sys.schema("note").unwrap().schema.options.schema_id.clone();
        assert_eq!(id.as_deref(), Some("S2"));

        // Third generation: both schemas and all documents survive again.
        drop(sys);
        let mut sys = Xml2OrDb::open(&dir, DbMode::Oracle9).unwrap();
        assert!(sys.retrieve_document("uni-2").unwrap().contains("Conrad"));
        assert!(sys.schema("note").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_failed_store_survives_reopen_clean() {
        // A failed (rolled-back) store must leave nothing on disk either.
        let dir = temp_store_dir("rollback");
        let before = {
            let mut sys = Xml2OrDb::open(&dir, DbMode::Oracle9).unwrap();
            sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
            sys.database().execute("DROP TABLE TabMetadata").unwrap();
            sys.database().commit().unwrap();
            sys.store_document("uni", UNIVERSITY_XML).unwrap_err();
            sys.database().state_dump()
        };
        let mut sys = Xml2OrDb::open(&dir, DbMode::Oracle9).unwrap();
        assert_eq!(sys.database().state_dump(), before, "rolled-back load leaked to disk");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn loaded_corpus(mode: DbMode) -> (Xml2OrDb, Vec<String>) {
        let mut sys = Xml2OrDb::new(mode);
        sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
        let corpus: Vec<(String, String)> = (0..6)
            .map(|i| {
                (
                    format!("doc{i}"),
                    format!(
                        "<University><StudyCourse>C{i}</StudyCourse>\
                         <Student StudNr=\"{i:05}\"><LName>L{i}</LName><FName>F{i}</FName>\
                         <Course><Name>N{i}</Name></Course></Student></University>"
                    ),
                )
            })
            .collect();
        let docs: Vec<(&str, &str)> =
            corpus.iter().map(|(n, x)| (n.as_str(), x.as_str())).collect();
        let ids = sys.store_documents("uni", &docs).unwrap();
        (sys, ids)
    }

    #[test]
    fn parallel_retrieval_matches_serial_byte_for_byte() {
        for mode in [DbMode::Oracle8, DbMode::Oracle9] {
            let (mut sys, ids) = loaded_corpus(mode);
            let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
            let serial: Vec<String> =
                id_refs.iter().map(|id| sys.retrieve_document(id).unwrap()).collect();
            for workers in [1, 2, 4] {
                sys.set_load_workers(workers);
                let parallel = sys.retrieve_documents(&id_refs).unwrap();
                assert_eq!(parallel, serial, "{mode:?} workers={workers}");
            }
            let all = sys.retrieve_all().unwrap();
            assert_eq!(all.len(), ids.len());
            for ((doc_id, text), id) in all.iter().zip(&ids) {
                assert_eq!(doc_id, id);
                let serial_text = sys.retrieve_document(id).unwrap();
                assert_eq!(*text, serial_text);
            }
        }
    }

    #[test]
    fn parallel_retrieval_reports_unknown_documents() {
        let (mut sys, ids) = loaded_corpus(DbMode::Oracle9);
        sys.set_load_workers(4);
        let err = sys.retrieve_documents(&[ids[0].as_str(), "ghost"]).unwrap_err();
        assert!(matches!(err, MappingError::NoSuchDocument(_)), "{err:?}");
    }

    #[test]
    fn streaming_export_matches_string_retrieval() {
        let (mut sys, ids) = loaded_corpus(DbMode::Oracle9);
        let text = sys.retrieve_document(&ids[2]).unwrap();
        let mut bytes = Vec::new();
        sys.export_to_writer(&ids[2], &mut bytes).unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), text);
    }

    /// Regression for the satellite: once the retrieval indexes exist, the
    /// root-row lookup (and Oracle 8's inverted-child lookups) go through
    /// index probes, visible in the engine's `index_scans` counter.
    #[test]
    fn retrieval_indexes_route_lookups_through_index_probes() {
        for mode in [DbMode::Oracle8, DbMode::Oracle9] {
            let (mut sys, ids) = loaded_corpus(mode);
            let created = sys.create_retrieval_indexes("uni").unwrap();
            assert!(created > 0, "{mode:?}: no retrieval indexes created");
            // Idempotent: a second call finds every column covered.
            assert_eq!(sys.create_retrieval_indexes("uni").unwrap(), 0);
            let before = sys.stats();
            let with_index = sys.retrieve_document(&ids[0]).unwrap();
            let delta = sys.stats().since(&before);
            assert!(delta.index_scans > 0, "{mode:?}: {delta:?}");
            assert!(delta.retrieve_index_probes > 0, "{mode:?}: {delta:?}");
            assert_eq!(delta.bulk_retrieves, 1, "{mode:?}: {delta:?}");

            // The naive valve reconstructs the same bytes without probing.
            sys.database().set_bulk_retrieval(false);
            let before = sys.stats();
            let naive = sys.retrieve_document(&ids[0]).unwrap();
            let delta = sys.stats().since(&before);
            assert_eq!(delta.retrieve_index_probes, 0, "{mode:?}: {delta:?}");
            assert_eq!(delta.bulk_retrieves, 0, "{mode:?}: {delta:?}");
            assert!(delta.retrieve_table_scans > 0, "{mode:?}: {delta:?}");
            assert_eq!(naive, with_index, "{mode:?}: valve changed the bytes");
        }
    }

    /// The load-index helper turns the Oracle 8 parent-wiring subqueries
    /// into index probes (the un-indexed path re-scans the parent table per
    /// child row) without changing what gets stored.
    #[test]
    fn load_indexes_route_parent_wiring_through_index_probes() {
        let build = |with_indexes: bool| {
            let mut sys = Xml2OrDb::new(DbMode::Oracle8);
            sys.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
            if with_indexes {
                let created = sys.create_load_indexes("uni").unwrap();
                assert!(created > 0, "no load indexes created");
                // Idempotent: a second call finds every column covered.
                assert_eq!(sys.create_load_indexes("uni").unwrap(), 0);
            }
            let before = sys.stats();
            let id = sys.store_document("uni", UNIVERSITY_XML).unwrap();
            let delta = sys.stats().since(&before);
            let text = sys.retrieve_document(&id).unwrap();
            (delta.index_scans, text)
        };
        let (probes, indexed_text) = build(true);
        assert!(probes > 0, "load ran without index probes: {probes}");
        let (no_probes, plain_text) = build(false);
        assert_eq!(no_probes, 0);
        assert_eq!(indexed_text, plain_text, "load indexes changed the stored bytes");
    }
}

//! The meta-data structures of §5 (and their §6.1 entity extension).
//!
//! "XML2Oracle maintains a meta-table during the transformation to capture
//! information about the source XML document. Each XML document to be stored
//! is assigned a unique DocID …" The meta-table records document name and
//! location, prolog information (XML version, character set, standalone),
//! the SchemaID, namespaces, and — per generated database attribute — a
//! `Type_DocData` entry telling whether it came from an XML *element* or an
//! XML *attribute* (`XML_Type`), under which name (`XML_Name`/`DB_Name`)
//! and with which database type (`DB_Type`).
//!
//! §6.1's proposal is implemented too: internal entity definitions are
//! stored (`Type_Entity`) so the retriever can re-substitute the original
//! entity references.

use xmlord_dtd::ast::{Dtd, EntityDecl};
use xmlord_ordb::{Database, DbError, QueryResult, ReadSession, Value};
use xmlord_xml::{Document, EntityCatalog};

use crate::error::MappingError;
use crate::model::{FieldSource, MappedSchema};

/// A source the metadata readers can query: the writer handle, or an MVCC
/// [`ReadSession`] (which answers from its pinned committed snapshot).
pub trait MetaSource {
    fn meta_query(&mut self, sql: &str) -> Result<QueryResult, DbError>;
}

impl MetaSource for Database {
    fn meta_query(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        self.query(sql)
    }
}

impl MetaSource for ReadSession {
    fn meta_query(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        self.query(sql)
    }
}

/// The fixed meta-schema DDL. Executed once per database.
///
/// The paper's §5 sketch names the date column `Date`; that is a reserved
/// word in SQL (the very trap §5 warns about for element names), so the
/// column is called `DocDate` here.
pub fn metadata_ddl() -> &'static str {
    "CREATE TYPE Type_DocData AS OBJECT (\n\
     \u{20}   XML_Type VARCHAR(30),\n\
     \u{20}   XML_Name VARCHAR(4000),\n\
     \u{20}   DB_Name VARCHAR(64),\n\
     \u{20}   DB_Type VARCHAR(4000),\n\
     \u{20}   NameSpace VARCHAR(4000)\n\
     );\n\
     CREATE TYPE TypeVA_DocData AS VARRAY(10000) OF Type_DocData;\n\
     CREATE TYPE Type_Entity AS OBJECT (\n\
     \u{20}   EntityName VARCHAR(4000),\n\
     \u{20}   Substitution VARCHAR(4000)\n\
     );\n\
     CREATE TYPE TypeVA_Entity AS VARRAY(10000) OF Type_Entity;\n\
     CREATE TABLE TabSchemas (\n\
     \u{20}   SchemaName VARCHAR(4000) PRIMARY KEY,\n\
     \u{20}   RootElement VARCHAR(4000),\n\
     \u{20}   SourceKind VARCHAR(10),\n\
     \u{20}   SourceText CLOB,\n\
     \u{20}   SchemaID VARCHAR(4000),\n\
     \u{20}   IdrefTargets CLOB\n\
     );\n\
     CREATE TABLE TabMetadata (\n\
     \u{20}   DocID VARCHAR(4000) PRIMARY KEY,\n\
     \u{20}   DocName VARCHAR(4000),\n\
     \u{20}   URL VARCHAR(4000),\n\
     \u{20}   SchemaID VARCHAR(4000),\n\
     \u{20}   NameSpace VARCHAR(4000),\n\
     \u{20}   XMLVersion VARCHAR(10),\n\
     \u{20}   CharacterSet VARCHAR(40),\n\
     \u{20}   Standalone CHAR(1),\n\
     \u{20}   DocData TypeVA_DocData,\n\
     \u{20}   Entities TypeVA_Entity,\n\
     \u{20}   DocDate DATE\n\
     );"
}

/// Everything the retriever needs to restore a document faithfully.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DocMetadata {
    pub doc_id: String,
    pub doc_name: String,
    pub url: String,
    pub schema_id: String,
    pub namespace: Option<String>,
    pub xml_version: Option<String>,
    pub character_set: Option<String>,
    pub standalone: Option<bool>,
    /// (xml_type, xml_name, db_name, db_type) provenance entries.
    pub doc_data: Vec<(String, String, String, String)>,
    /// Internal entity definitions (§6.1).
    pub entities: Vec<(String, String)>,
    pub date: String,
}

impl DocMetadata {
    /// Rebuild the entity catalog for §6.1 re-substitution.
    pub fn entity_catalog(&self) -> EntityCatalog {
        let mut cat = EntityCatalog::new();
        for (name, replacement) in &self.entities {
            cat.declare(name, replacement);
        }
        cat
    }
}

/// Build the provenance entries for a mapped schema: one `Type_DocData` row
/// per generated database attribute, telling elements and attributes apart
/// (the distinction the mapping itself loses, §5).
pub fn doc_data_entries(schema: &MappedSchema) -> Vec<(String, String, String, String)> {
    let varchar = schema.options.varchar_len;
    let mut out = Vec::new();
    for element in &schema.creation_order {
        let mapping = &schema.elements[element];
        if let Some(table) = &mapping.table {
            out.push(("element".to_string(), element.clone(), table.clone(), "TABLE".to_string()));
        }
        let owner = mapping
            .object_type
            .clone()
            .or_else(|| mapping.table.clone())
            .unwrap_or_else(|| element.clone());
        for field in &mapping.fields {
            let (xml_type, xml_name) = match &field.source {
                FieldSource::Text => ("element", element.clone()),
                FieldSource::ChildElement(c) => ("element", c.clone()),
                FieldSource::XmlAttribute(a) => ("attribute", a.clone()),
                FieldSource::AttrList => ("attribute-list", element.clone()),
                FieldSource::SyntheticId => ("synthetic", element.clone()),
                FieldSource::ParentRef(p) => ("synthetic", p.clone()),
            };
            out.push((
                xml_type.to_string(),
                xml_name,
                format!("{owner}.{}", field.db_name),
                field.kind.sql_type_text(varchar),
            ));
        }
        if let Some(attr_list) = &mapping.attr_list {
            for f in &attr_list.fields {
                out.push((
                    "attribute".to_string(),
                    f.xml_attribute.clone(),
                    format!("{}.{}", attr_list.type_name, f.db_name),
                    format!("VARCHAR({varchar})"),
                ));
            }
        }
    }
    out
}

/// Generate the INSERT for one document's metadata row.
pub fn metadata_insert(
    schema: &MappedSchema,
    dtd: &Dtd,
    doc: &Document,
    doc_id: &str,
    doc_name: &str,
    url: &str,
    date: &str,
) -> String {
    let q = |s: &str| format!("'{}'", s.replace('\'', "''"));
    let decl = doc.declaration.as_ref();
    let xml_version = decl.map(|d| d.version.clone()).unwrap_or_default();
    let charset = decl.and_then(|d| d.encoding.clone()).unwrap_or_default();
    let standalone = match decl.and_then(|d| d.standalone) {
        Some(true) => "'Y'".to_string(),
        Some(false) => "'N'".to_string(),
        None => "NULL".to_string(),
    };
    let namespace = doc
        .root_element()
        .and_then(|root| doc.attribute(root, "xmlns"))
        .map(&q)
        .unwrap_or_else(|| "NULL".to_string());

    let doc_data: Vec<String> = doc_data_entries(schema)
        .into_iter()
        .map(|(t, x, d, ty)| {
            format!("Type_DocData({}, {}, {}, {}, NULL)", q(&t), q(&x), q(&d), q(&ty))
        })
        .collect();
    let entities: Vec<String> = dtd
        .entities
        .iter()
        .filter_map(|e| match e {
            EntityDecl::InternalGeneral { name, replacement } => {
                Some(format!("Type_Entity({}, {})", q(name), q(replacement)))
            }
            _ => None,
        })
        .collect();

    format!(
        "INSERT INTO TabMetadata VALUES ({}, {}, {}, {}, {}, {}, {}, {}, \
         TypeVA_DocData({}), TypeVA_Entity({}), {})",
        q(doc_id),
        q(doc_name),
        q(url),
        q(schema.options.schema_id.as_deref().unwrap_or("")),
        namespace,
        q(&xml_version),
        q(&charset),
        standalone,
        doc_data.join(", "),
        entities.join(", "),
        q(date),
    )
}

/// Read a document's metadata back from the database.
pub fn read_metadata<S: MetaSource + ?Sized>(
    db: &mut S,
    doc_id: &str,
) -> Result<DocMetadata, MappingError> {
    let q = doc_id.replace('\'', "''");
    let result = db
        .meta_query(&format!("SELECT * FROM TabMetadata m WHERE m.DocID = '{q}'"))
        .map_err(map_meta_err)?;
    let row = result
        .rows
        .first()
        .ok_or_else(|| MappingError::NoSuchDocument(doc_id.to_string()))?;
    let get = |name: &str| -> Value {
        result
            .column_index(name)
            .map(|i| row[i].clone())
            .unwrap_or(Value::Null)
    };
    let text = |v: Value| v.as_str().unwrap_or("").to_string();
    let opt_text = |v: Value| match v {
        Value::Null => None,
        other => other.as_str().map(str::to_string),
    };
    let mut meta = DocMetadata {
        doc_id: text(get("DocID")),
        doc_name: text(get("DocName")),
        url: text(get("URL")),
        schema_id: text(get("SchemaID")),
        namespace: opt_text(get("NameSpace")),
        xml_version: opt_text(get("XMLVersion")).filter(|s| !s.is_empty()),
        character_set: opt_text(get("CharacterSet")).filter(|s| !s.is_empty()),
        standalone: match get("Standalone") {
            Value::Str(s) if s == "Y" => Some(true),
            Value::Str(s) if s == "N" => Some(false),
            _ => None,
        },
        doc_data: Vec::new(),
        entities: Vec::new(),
        date: text(get("DocDate")),
    };
    if let Value::Coll { elements, .. } = get("DocData") {
        for entry in elements {
            if let Value::Obj { attrs, .. } = entry {
                let s = |i: usize| -> String {
                    attrs.get(i).and_then(|v| v.as_str()).unwrap_or("").to_string()
                };
                meta.doc_data.push((s(0), s(1), s(2), s(3)));
            }
        }
    }
    if let Value::Coll { elements, .. } = get("Entities") {
        for entry in elements {
            if let Value::Obj { attrs, .. } = entry {
                let s = |i: usize| -> String {
                    attrs.get(i).and_then(|v| v.as_str()).unwrap_or("").to_string()
                };
                meta.entities.push((s(0), s(1)));
            }
        }
    }
    Ok(meta)
}

fn map_meta_err(e: DbError) -> MappingError {
    MappingError::Db(e)
}

// -- persistent schema registry (`TabSchemas`) ------------------------------

/// One row of the persistent schema registry: everything needed to
/// re-derive a registered schema deterministically when a durable database
/// is reopened (the mapping itself is a pure function of these inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaRegistryRow {
    pub name: String,
    pub root: String,
    /// `"dtd"` or `"xsd"`.
    pub kind: String,
    /// The DTD or XSD source text, verbatim.
    pub source: String,
    /// The §5 SchemaID assigned at registration (empty = none).
    pub schema_id: String,
    /// §4.4 IDREF targets: (element, attribute) → target element.
    pub idref_targets: Vec<(String, String, String)>,
}

/// Serialize IDREF targets for the registry. XML names cannot contain
/// spaces or `;`, so `elem attr target` triples joined by `;` are
/// unambiguous.
fn encode_idref_targets(targets: &[(String, String, String)]) -> String {
    targets
        .iter()
        .map(|(e, a, t)| format!("{e} {a} {t}"))
        .collect::<Vec<_>>()
        .join(";")
}

fn decode_idref_targets(text: &str) -> Vec<(String, String, String)> {
    text.split(';')
        .filter(|s| !s.is_empty())
        .filter_map(|triple| {
            let mut it = triple.split(' ');
            Some((it.next()?.to_string(), it.next()?.to_string(), it.next()?.to_string()))
        })
        .collect()
}

/// The INSERT statement registering one schema in `TabSchemas`.
pub fn schema_registry_insert(row: &SchemaRegistryRow) -> String {
    let q = |s: &str| format!("'{}'", s.replace('\'', "''"));
    format!(
        "INSERT INTO TabSchemas VALUES ({}, {}, {}, {}, {}, {})",
        q(&row.name),
        q(&row.root),
        q(&row.kind),
        q(&row.source),
        q(&row.schema_id),
        q(&encode_idref_targets(&row.idref_targets)),
    )
}

/// Read the full schema registry back, in registration-independent
/// (name-sorted) order.
pub fn read_schema_registry<S: MetaSource + ?Sized>(
    db: &mut S,
) -> Result<Vec<SchemaRegistryRow>, MappingError> {
    let result = db
        .meta_query(
            "SELECT s.SchemaName, s.RootElement, s.SourceKind, s.SourceText, \
             s.SchemaID, s.IdrefTargets FROM TabSchemas s ORDER BY s.SchemaName",
        )
        .map_err(map_meta_err)?;
    let text = |v: &Value| v.as_str().unwrap_or("").to_string();
    Ok(result
        .rows
        .iter()
        .map(|row| SchemaRegistryRow {
            name: text(&row[0]),
            root: text(&row[1]),
            kind: text(&row[2]),
            source: text(&row[3]),
            schema_id: text(&row[4]),
            idref_targets: decode_idref_targets(&text(&row[5])),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MappingOptions;
    use crate::schemagen::{generate_schema, IdrefTargets};
    use xmlord_dtd::parse_dtd;
    use xmlord_ordb::DbMode;

    const DTD: &str = r#"
<!ELEMENT University (StudyCourse,Student*)>
<!ELEMENT Student (LName,FName)>
<!ATTLIST Student StudNr CDATA #REQUIRED>
<!ENTITY cs "Computer Science">
<!ELEMENT LName (#PCDATA)> <!ELEMENT FName (#PCDATA)>
<!ELEMENT StudyCourse (#PCDATA)>
"#;

    fn fixture() -> (Database, MappedSchema, Dtd, Document) {
        let dtd = parse_dtd(DTD).unwrap();
        let doc = xmlord_xml::parse_with_catalog(
            "<?xml version=\"1.0\" encoding=\"UTF-8\" standalone=\"yes\"?>\
             <University xmlns=\"urn:uni\"><StudyCourse>&cs;</StudyCourse></University>",
            dtd.entity_catalog(),
        )
        .unwrap();
        let schema = generate_schema(
            &dtd,
            "University",
            DbMode::Oracle9,
            MappingOptions { schema_id: Some("S1".into()), ..Default::default() },
            &IdrefTargets::new(),
        )
        .unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(metadata_ddl()).unwrap();
        (db, schema, dtd, doc)
    }

    #[test]
    fn meta_ddl_executes() {
        let (db, _, _, _) = fixture();
        // TabSchemas (the PR 8 registry) + TabMetadata.
        assert_eq!(db.catalog().table_count(), 2);
        assert_eq!(db.catalog().type_count(), 4);
    }

    #[test]
    fn metadata_round_trips_through_the_database() {
        let (mut db, schema, dtd, doc) = fixture();
        let insert = metadata_insert(&schema, &dtd, &doc, "doc1", "uni.xml", "file:///uni.xml", "2002-03-25");
        db.execute(&insert).unwrap();
        let meta = read_metadata(&mut db, "doc1").unwrap();
        assert_eq!(meta.doc_id, "doc1");
        assert_eq!(meta.doc_name, "uni.xml");
        assert_eq!(meta.schema_id, "S1");
        assert_eq!(meta.namespace.as_deref(), Some("urn:uni"));
        assert_eq!(meta.xml_version.as_deref(), Some("1.0"));
        assert_eq!(meta.character_set.as_deref(), Some("UTF-8"));
        assert_eq!(meta.standalone, Some(true));
        assert_eq!(meta.date, "2002-03-25");
        // §6.1: the entity definition survives.
        assert_eq!(meta.entities, vec![("cs".to_string(), "Computer Science".to_string())]);
        assert_eq!(meta.entity_catalog().lookup("cs"), Some("Computer Science"));
        // Provenance entries distinguish elements from attributes.
        assert!(meta
            .doc_data
            .iter()
            .any(|(t, x, d, _)| t == "attribute" && x == "StudNr" && d.contains("attrStudNr")));
        assert!(meta
            .doc_data
            .iter()
            .any(|(t, x, _, _)| t == "element" && x == "LName"));
    }

    #[test]
    fn missing_document_reports_no_such_document() {
        let (mut db, _, _, _) = fixture();
        assert!(matches!(
            read_metadata(&mut db, "ghost"),
            Err(MappingError::NoSuchDocument(_))
        ));
    }

    #[test]
    fn doc_data_entries_cover_every_field() {
        let (_, schema, _, _) = fixture();
        let entries = doc_data_entries(&schema);
        let total_fields: usize =
            schema.elements.values().map(|m| m.fields.len()).sum();
        assert!(entries.len() >= total_fields);
        // DB_Type strings are real SQL types.
        assert!(entries.iter().any(|(_, _, _, ty)| ty == "VARCHAR(4000)"));
    }

    #[test]
    fn second_document_with_same_id_is_rejected() {
        let (mut db, schema, dtd, doc) = fixture();
        let insert = metadata_insert(&schema, &dtd, &doc, "doc1", "a.xml", "", "2002-01-01");
        db.execute(&insert).unwrap();
        let err = db.execute(&insert).unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
    }
}

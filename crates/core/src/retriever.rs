//! Document retrieval: database → XML document.
//!
//! Walks the stored object values guided by the [`MappedSchema`] (which
//! knows, per §5's meta-data, whether each database attribute came from an
//! element or an attribute) and rebuilds the DOM. The paper's known losses
//! are reproduced faithfully: comments, processing instructions and the
//! interleaving of mixed content do not come back (§7 "loss of document
//! information"), and where REFs are involved the original sibling order is
//! only preserved per relationship (§7 "usage of references does not
//! preserve the order of elements").

use xmlord_ordb::{Database, Oid, Value};
use xmlord_xml::{Document, NodeId, QName};

use crate::error::MappingError;
use crate::metadata::DocMetadata;
use crate::model::{ElementMapping, FieldKind, FieldSource, MappedSchema};
use xmlord_ordb::ident::Ident;

/// Reconstruct the document stored under `meta.doc_id`.
pub fn retrieve_document(
    db: &Database,
    schema: &MappedSchema,
    meta: &DocMetadata,
) -> Result<Document, MappingError> {
    let root_mapping = schema
        .mapping(&schema.root_element)
        .ok_or_else(|| MappingError::UndeclaredElement(schema.root_element.clone()))?;
    let table = Ident::internal(&schema.root_table);
    // One storage guard for the whole walk: the guard holds the shared
    // engine lock, and taking it once up front keeps the recursive
    // builders from re-locking per REF chase.
    let storage = db.storage();
    let data = storage
        .table(&table)
        .ok_or_else(|| MappingError::NoSuchDocument(meta.doc_id.clone()))?;

    // Locate the root row: by document id column when present, else the
    // single row of the table.
    let (row_values, row_oid) = match &schema.doc_id_column {
        Some(col) => {
            let idx = field_index(root_mapping, col).ok_or_else(|| {
                MappingError::Unsupported(format!("root mapping lacks id column {col}"))
            })?;
            data.rows
                .iter()
                .find(|r| r.values.get(idx).and_then(|v| v.as_str()) == Some(&meta.doc_id))
                .map(|r| (r.values.clone(), r.oid))
                .ok_or_else(|| MappingError::NoSuchDocument(meta.doc_id.clone()))?
        }
        None => data
            .rows
            .first()
            .map(|r| (r.values.clone(), r.oid))
            .ok_or_else(|| MappingError::NoSuchDocument(meta.doc_id.clone()))?,
    };

    let mut doc = Document::new();
    if meta.xml_version.is_some() || meta.character_set.is_some() || meta.standalone.is_some() {
        doc.declaration = Some(xmlord_xml::XmlDeclaration {
            version: meta.xml_version.clone().unwrap_or_else(|| "1.0".to_string()),
            encoding: meta.character_set.clone(),
            standalone: meta.standalone,
        });
    }
    let ctx = Retriever { storage: &storage, schema };
    let root_node =
        ctx.build_element(&mut doc, &schema.root_element, &row_values, row_oid)?;
    // Restore the root's default namespace from the meta-table (§5).
    if let Some(ns) = &meta.namespace {
        doc.set_attribute(root_node, QName::local("xmlns"), ns);
    }
    doc.set_root(root_node);
    Ok(doc)
}

struct Retriever<'a> {
    storage: &'a xmlord_ordb::storage::Storage,
    schema: &'a MappedSchema,
}

impl<'a> Retriever<'a> {
    fn mapping_of(&self, element: &str) -> Result<&'a ElementMapping, MappingError> {
        self.schema
            .mapping(element)
            .ok_or_else(|| MappingError::UndeclaredElement(element.to_string()))
    }

    /// Build the DOM subtree for one element instance from its attribute
    /// values (`values` parallels `mapping.fields`).
    fn build_element(
        &self,
        doc: &mut Document,
        element: &str,
        values: &[Value],
        oid: Option<Oid>,
    ) -> Result<NodeId, MappingError> {
        let mapping = self.mapping_of(element)?;
        let node = doc.create_element(QName::local(&crate::naming::sanitize(element)));
        for (field, value) in mapping.fields.iter().zip(values) {
            match &field.source {
                FieldSource::SyntheticId | FieldSource::ParentRef(_) => {}
                FieldSource::XmlAttribute(attr) => match (&field.kind, value) {
                    (_, Value::Null) => {}
                    (FieldKind::Ref(_), Value::Ref(target_oid)) => {
                        // An IDREF attribute: restore the target's ID value.
                        if let Some(id_value) = self.id_value_of(*target_oid)? {
                            doc.set_attribute(node, QName::local(attr), &id_value);
                        }
                    }
                    (_, other) => {
                        if let Some(text) = scalar_text(other) {
                            doc.set_attribute(node, QName::local(attr), &text);
                        }
                    }
                },
                FieldSource::AttrList => {
                    if let Value::Obj { attrs, .. } = value {
                        let Some(attr_list) = mapping.attr_list.as_ref() else {
                            return Err(MappingError::InconsistentMapping(format!(
                                "<{element}> row carries an attribute-list object but the \
                                 mapping declares no attribute list"
                            )));
                        };
                        for (f, v) in attr_list.fields.iter().zip(attrs) {
                            match v {
                                Value::Null => {}
                                Value::Ref(target_oid) => {
                                    if let Some(id_value) = self.id_value_of(*target_oid)? {
                                        doc.set_attribute(
                                            node,
                                            QName::local(&f.xml_attribute),
                                            &id_value,
                                        );
                                    }
                                }
                                other => {
                                    if let Some(text) = scalar_text(other) {
                                        doc.set_attribute(
                                            node,
                                            QName::local(&f.xml_attribute),
                                            &text,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
                FieldSource::Text => {
                    if let Some(text) = scalar_text(value) {
                        if !text.is_empty() {
                            let t = doc.create_text(&text);
                            doc.append_child(node, t);
                        }
                    }
                }
                FieldSource::ChildElement(child_name) => {
                    self.build_child_field(doc, node, child_name, field, value)?;
                }
            }
        }
        // Oracle 8 inverted children: collect rows of the child table whose
        // ParentRef points at this row, then restore content-model order.
        if let Some(my_oid) = oid {
            if self.attach_inverted_children(doc, node, element, my_oid)? {
                reorder_children(doc, node, &mapping.child_order);
            }
        }
        Ok(node)
    }

    fn build_child_field(
        &self,
        doc: &mut Document,
        parent: NodeId,
        child_name: &str,
        field: &crate::model::FieldMapping,
        value: &Value,
    ) -> Result<(), MappingError> {
        match (&field.kind, value) {
            (_, Value::Null) => Ok(()),
            (FieldKind::Scalar(_), v) => {
                let child = doc.create_element(QName::local(&crate::naming::sanitize(child_name)));
                if let Some(text) = scalar_text(v) {
                    if !text.is_empty() {
                        let t = doc.create_text(&text);
                        doc.append_child(child, t);
                    }
                }
                doc.append_child(parent, child);
                Ok(())
            }
            (FieldKind::Object(_), Value::Obj { attrs, .. }) => {
                let child = self.build_element(doc, child_name, attrs, None)?;
                doc.append_child(parent, child);
                Ok(())
            }
            (FieldKind::ScalarCollection(_), Value::Coll { elements, .. }) => {
                for element in elements {
                    let child =
                        doc.create_element(QName::local(&crate::naming::sanitize(child_name)));
                    if let Some(text) = scalar_text(element) {
                        if !text.is_empty() {
                            let t = doc.create_text(&text);
                            doc.append_child(child, t);
                        }
                    }
                    doc.append_child(parent, child);
                }
                Ok(())
            }
            (FieldKind::ObjectCollection { .. }, Value::Coll { elements, .. }) => {
                for element in elements {
                    if let Value::Obj { attrs, .. } = element {
                        let child = self.build_element(doc, child_name, attrs, None)?;
                        doc.append_child(parent, child);
                    }
                }
                Ok(())
            }
            (FieldKind::Ref(_), Value::Ref(oid)) => {
                let child = self.build_ref_child(doc, child_name, *oid)?;
                doc.append_child(parent, child);
                Ok(())
            }
            (FieldKind::RefCollection { .. }, Value::Coll { elements, .. }) => {
                for element in elements {
                    if let Value::Ref(oid) = element {
                        let child = self.build_ref_child(doc, child_name, *oid)?;
                        doc.append_child(parent, child);
                    }
                }
                Ok(())
            }
            (kind, other) => Err(MappingError::Unsupported(format!(
                "stored value {} does not match mapped kind {kind:?} for <{child_name}>",
                other.to_sql_literal()
            ))),
        }
    }

    fn build_ref_child(
        &self,
        doc: &mut Document,
        child_name: &str,
        oid: Oid,
    ) -> Result<NodeId, MappingError> {
        let (_, row) = self
            .storage
            .resolve_oid(oid)
            .ok_or(MappingError::Db(xmlord_ordb::DbError::DanglingRef))?;
        let values = row.values.clone();
        self.build_element(doc, child_name, &values, Some(oid))
    }

    /// Returns `true` if any inverted child was attached.
    fn attach_inverted_children(
        &self,
        doc: &mut Document,
        node: NodeId,
        element: &str,
        my_oid: Oid,
    ) -> Result<bool, MappingError> {
        let mut attached = false;
        // Find child element types whose mapping has a ParentRef to us and
        // that we hold no field for.
        let my_mapping = self.mapping_of(element)?;
        for child_mapping in self.schema.elements.values() {
            let Some(ref_idx) = child_mapping.fields.iter().position(
                |f| matches!(&f.source, FieldSource::ParentRef(p) if p == element),
            ) else {
                continue;
            };
            if my_mapping.field_for_child(&child_mapping.element).is_some() {
                continue;
            }
            let Some(child_table) = &child_mapping.table else { continue };
            let Some(data) = self.storage.table(&Ident::internal(child_table)) else {
                continue;
            };
            let rows: Vec<(Vec<Value>, Option<Oid>)> = data
                .rows
                .iter()
                .filter(|r| r.values.get(ref_idx) == Some(&Value::Ref(my_oid)))
                .map(|r| (r.values.clone(), r.oid))
                .collect();
            for (values, oid) in rows {
                let child = self.build_element(doc, &child_mapping.element, &values, oid)?;
                doc.append_child(node, child);
                attached = true;
            }
        }
        Ok(attached)
    }

    /// The document-level ID attribute value of a row object (for restoring
    /// IDREF attributes).
    fn id_value_of(&self, oid: Oid) -> Result<Option<String>, MappingError> {
        let Some((table, row)) = self.storage.resolve_oid(oid) else {
            return Ok(None);
        };
        // Which element does this table store?
        let mapping = self
            .schema
            .elements
            .values()
            .find(|m| m.table.as_deref().map(|t| Ident::internal(t) == *table).unwrap_or(false));
        let Some(mapping) = mapping else { return Ok(None) };
        // Prefer an inlined attribute field that is plain VARCHAR (the ID
        // itself); otherwise look inside the attrList object.
        if let Some(attr_list) = &mapping.attr_list {
            if let Some(list_idx) =
                mapping.fields.iter().position(|f| f.source == FieldSource::AttrList)
            {
                if let Some(Value::Obj { attrs, .. }) = row.values.get(list_idx) {
                    for (f, v) in attr_list.fields.iter().zip(attrs) {
                        if f.idref_target.is_none() {
                            if let Some(s) = v.as_str() {
                                return Ok(Some(s.to_string()));
                            }
                        }
                    }
                }
            }
        }
        for (idx, field) in mapping.fields.iter().enumerate() {
            if matches!(field.source, FieldSource::XmlAttribute(_))
                && matches!(field.kind, FieldKind::Scalar(_))
            {
                if let Some(s) = row.values.get(idx).and_then(|v| v.as_str()) {
                    return Ok(Some(s.to_string()));
                }
            }
        }
        Ok(None)
    }
}

/// Restore content-model order among an element's children: only element
/// children whose name appears in `child_order` are sorted (stably, by
/// their position in the content model), and they are written back into the
/// slots those same children occupied — text nodes and elements with
/// unknown names keep their exact document positions instead of being
/// clustered together.
fn reorder_children(doc: &mut Document, node: NodeId, child_order: &[String]) {
    let mut children: Vec<NodeId> = doc.children(node).to_vec();
    let order_of = |doc: &Document, c: NodeId| match doc.kind(c) {
        xmlord_xml::NodeKind::Element(el) => {
            child_order.iter().position(|n| *n == el.name.local)
        }
        _ => None,
    };
    let slots: Vec<usize> = (0..children.len())
        .filter(|&i| order_of(doc, children[i]).is_some())
        .collect();
    let mut ordered: Vec<NodeId> = slots.iter().map(|&i| children[i]).collect();
    // Stable sort: equal content-model positions keep document order.
    ordered.sort_by_key(|&c| order_of(doc, c));
    for (&slot, &child) in slots.iter().zip(&ordered) {
        children[slot] = child;
    }
    doc.replace_children(node, children);
}

/// Text rendering of a stored scalar value (typed columns render through
/// SQL Display: NUMBER 4 → "4", DATE → its ISO string).
fn scalar_text(v: &Value) -> Option<String> {
    match v {
        Value::Null => None,
        other => Some(other.to_string()),
    }
}

fn field_index(mapping: &ElementMapping, db_name: &str) -> Option<usize> {
    mapping.fields.iter().position(|f| f.db_name.eq_ignore_ascii_case(db_name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddlgen::create_script;
    use crate::loader::load_script;
    use crate::metadata::DocMetadata;
    use crate::model::MappingOptions;
    use crate::schemagen::{generate_schema, IdrefTargets};
    use xmlord_dtd::parse_dtd;
    use xmlord_ordb::DbMode;
    use xmlord_xml::serializer::{serialize, SerializeOptions};

    const UNIVERSITY_DTD: &str = r#"
<!ELEMENT University (StudyCourse,Student*)>
<!ELEMENT Student (LName,FName,Course*)>
<!ATTLIST Student StudNr CDATA #REQUIRED>
<!ELEMENT Course (Name,Professor*,CreditPts?)>
<!ELEMENT Professor (PName,Subject+,Dept)>
<!ELEMENT LName (#PCDATA)> <!ELEMENT FName (#PCDATA)>
<!ELEMENT Name (#PCDATA)> <!ELEMENT PName (#PCDATA)>
<!ELEMENT Subject (#PCDATA)> <!ELEMENT Dept (#PCDATA)>
<!ELEMENT StudyCourse (#PCDATA)> <!ELEMENT CreditPts (#PCDATA)>
"#;

    const UNIVERSITY_XML: &str = "<University><StudyCourse>CS</StudyCourse>\
<Student StudNr=\"23374\"><LName>Conrad</LName><FName>Matthias</FName>\
<Course><Name>DBS II</Name><Professor><PName>Kudrass</PName>\
<Subject>DBS</Subject><Subject>OS</Subject><Dept>CS</Dept></Professor>\
<CreditPts>4</CreditPts></Course></Student>\
<Student StudNr=\"00011\"><LName>Meier</LName><FName>Ralf</FName></Student></University>";

    fn round_trip(mode: DbMode) -> String {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        let doc = xmlord_xml::parse(UNIVERSITY_XML).unwrap();
        let schema = generate_schema(
            &dtd,
            "University",
            mode,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let mut db = Database::new(mode);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        for stmt in load_script(&schema, &dtd, &doc, "doc1").unwrap() {
            db.execute(&stmt).unwrap();
        }
        let meta = DocMetadata { doc_id: "doc1".into(), ..Default::default() };
        let restored = retrieve_document(&db, &schema, &meta).unwrap();
        serialize(&restored, &SerializeOptions::compact())
    }

    #[test]
    fn oracle9_round_trip_is_exact_for_data_centric_documents() {
        assert_eq!(round_trip(DbMode::Oracle9), UNIVERSITY_XML);
    }

    #[test]
    fn oracle8_round_trip_restores_the_same_document() {
        // The REF-based storage layout differs, but the reconstructed
        // document is identical for this document.
        assert_eq!(round_trip(DbMode::Oracle8), UNIVERSITY_XML);
    }

    #[test]
    fn recursion_round_trips() {
        let dtd_text = r#"
            <!ELEMENT Professor (PName,Dept)>
            <!ELEMENT Dept (DName,Professor*)>
            <!ELEMENT PName (#PCDATA)> <!ELEMENT DName (#PCDATA)>"#;
        let xml = "<Professor><PName>Kudrass</PName><Dept><DName>CS</DName>\
<Professor><PName>Jaeger</PName><Dept><DName>CAD</DName></Dept></Professor>\
</Dept></Professor>";
        let dtd = parse_dtd(dtd_text).unwrap();
        let doc = xmlord_xml::parse(xml).unwrap();
        let schema = generate_schema(
            &dtd,
            "Professor",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        for stmt in load_script(&schema, &dtd, &doc, "d1").unwrap() {
            db.execute(&stmt).unwrap();
        }
        let meta = DocMetadata { doc_id: "d1".into(), ..Default::default() };
        let restored = retrieve_document(&db, &schema, &meta).unwrap();
        assert_eq!(serialize(&restored, &SerializeOptions::compact()), xml);
    }

    #[test]
    fn multiple_documents_coexist_and_retrieve_separately() {
        let dtd_text = "<!ELEMENT r (#PCDATA)>";
        let dtd = parse_dtd(dtd_text).unwrap();
        let schema = generate_schema(
            &dtd,
            "r",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        for (i, text) in ["first", "second", "third"].iter().enumerate() {
            let doc = xmlord_xml::parse(&format!("<r>{text}</r>")).unwrap();
            for stmt in load_script(&schema, &dtd, &doc, &format!("doc{i}")).unwrap() {
                db.execute(&stmt).unwrap();
            }
        }
        let meta = DocMetadata { doc_id: "doc1".into(), ..Default::default() };
        let restored = retrieve_document(&db, &schema, &meta).unwrap();
        assert_eq!(
            serialize(&restored, &SerializeOptions::compact()),
            "<r>second</r>"
        );
    }

    #[test]
    fn missing_document_is_reported() {
        let dtd_text = "<!ELEMENT r (#PCDATA)>";
        let dtd = parse_dtd(dtd_text).unwrap();
        let schema = generate_schema(
            &dtd,
            "r",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        let meta = DocMetadata { doc_id: "ghost".into(), ..Default::default() };
        assert!(matches!(
            retrieve_document(&db, &schema, &meta),
            Err(MappingError::NoSuchDocument(_))
        ));
    }

    #[test]
    fn comments_and_pis_are_lost_as_the_paper_admits() {
        let dtd_text = "<!ELEMENT r (#PCDATA)>";
        let dtd = parse_dtd(dtd_text).unwrap();
        let doc = xmlord_xml::parse("<r>x<!--note--><?pi data?></r>").unwrap();
        let schema = generate_schema(
            &dtd,
            "r",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        for stmt in load_script(&schema, &dtd, &doc, "d").unwrap() {
            db.execute(&stmt).unwrap();
        }
        let meta = DocMetadata { doc_id: "d".into(), ..Default::default() };
        let restored = retrieve_document(&db, &schema, &meta).unwrap();
        let text = serialize(&restored, &SerializeOptions::compact());
        assert_eq!(text, "<r>x</r>"); // §7: comments and PIs are gone
    }

    /// Regression: a stored row carrying an attribute-list object while the
    /// mapping declares none must surface as a typed error, not a panic.
    #[test]
    fn attr_list_mismatch_is_a_typed_error_not_a_panic() {
        let dtd_text = r#"
            <!ELEMENT r EMPTY>
            <!ATTLIST r a CDATA #IMPLIED b CDATA #IMPLIED>"#;
        let dtd = parse_dtd(dtd_text).unwrap();
        let doc = xmlord_xml::parse(r#"<r a="1" b="2"/>"#).unwrap();
        let mut schema = generate_schema(
            &dtd,
            "r",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        assert!(schema.mapping("r").unwrap().attr_list.is_some());
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        for stmt in load_script(&schema, &dtd, &doc, "d").unwrap() {
            db.execute(&stmt).unwrap();
        }
        // The schema drifts after the rows were stored.
        schema.elements.get_mut("r").unwrap().attr_list = None;
        let meta = DocMetadata { doc_id: "d".into(), ..Default::default() };
        let err = retrieve_document(&db, &schema, &meta).unwrap_err();
        assert!(
            matches!(err, MappingError::InconsistentMapping(_)),
            "expected InconsistentMapping, got {err:?}"
        );
    }

    /// Regression: children whose element name is absent from the content
    /// model (and non-element children) must keep their document positions;
    /// the old implementation clustered them all at the front.
    #[test]
    fn reorder_preserves_slots_of_unknown_and_text_children() {
        let mut doc = Document::new();
        let root = doc.create_element(QName::local("r"));
        let tx = doc.create_text("x");
        let b = doc.create_element(QName::local("b"));
        let a = doc.create_element(QName::local("a"));
        let ty = doc.create_text("y");
        let c = doc.create_element(QName::local("c")); // not in the model
        for n in [tx, b, a, ty, c] {
            doc.append_child(root, n);
        }
        reorder_children(&mut doc, root, &["a".to_string(), "b".to_string()]);
        let rendered: Vec<String> = doc
            .children(root)
            .iter()
            .map(|&n| match doc.kind(n) {
                xmlord_xml::NodeKind::Element(el) => format!("<{}>", el.name.local),
                _ => "text".to_string(),
            })
            .collect();
        // a and b swap into each other's slots; x, y and <c> stay put.
        assert_eq!(rendered, vec!["text", "<a>", "<b>", "text", "<c>"]);
    }

    /// Oracle 8 stores repeated complex children inverted (child table with
    /// a parent REF) and restores order afterwards — mixed content around
    /// them must survive the reordering.
    #[test]
    fn oracle8_mixed_content_round_trips_around_inverted_children() {
        let dtd_text = r#"
            <!ELEMENT article (#PCDATA|section)*>
            <!ELEMENT section (para*)>
            <!ELEMENT para (#PCDATA)>"#;
        let xml = "<article>intro<section><para>a1</para></section>\
<section><para>b1</para><para>b2</para></section></article>";
        let dtd = parse_dtd(dtd_text).unwrap();
        let doc = xmlord_xml::parse(xml).unwrap();
        let schema = generate_schema(
            &dtd,
            "article",
            DbMode::Oracle8,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let mut db = Database::new(DbMode::Oracle8);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        for stmt in load_script(&schema, &dtd, &doc, "d").unwrap() {
            db.execute(&stmt).unwrap();
        }
        let meta = DocMetadata { doc_id: "d".into(), ..Default::default() };
        let restored = retrieve_document(&db, &schema, &meta).unwrap();
        let text = serialize(&restored, &SerializeOptions::compact());
        // The text keeps its leading position and the sections their
        // document order (interleaving within mixed content is the paper's
        // admitted loss, so the text is concatenated up front).
        assert!(text.starts_with("<article>intro<section>"), "{text}");
        let one = text.find("a1").unwrap();
        let b1 = text.find("b1").unwrap();
        let b2 = text.find("b2").unwrap();
        assert!(one < b1 && b1 < b2, "{text}");
    }

    #[test]
    fn idref_attribute_is_restored_from_the_target_id() {
        let dtd_text = r#"
            <!ELEMENT db (person*)>
            <!ELEMENT person (#PCDATA)>
            <!ATTLIST person id ID #REQUIRED boss IDREF #IMPLIED>"#;
        let xml = r#"<db><person id="p1">Kudrass</person><person boss="p1" id="p2">Conrad</person></db>"#;
        let dtd = parse_dtd(dtd_text).unwrap();
        let doc = xmlord_xml::parse(xml).unwrap();
        let mut targets = IdrefTargets::new();
        targets.insert(("person".into(), "boss".into()), "person".into());
        let schema = generate_schema(
            &dtd,
            "db",
            DbMode::Oracle9,
            MappingOptions { map_idrefs: true, ..Default::default() },
            &targets,
        )
        .unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        for stmt in load_script(&schema, &dtd, &doc, "d").unwrap() {
            db.execute(&stmt).unwrap();
        }
        let meta = DocMetadata { doc_id: "d".into(), ..Default::default() };
        let restored = retrieve_document(&db, &schema, &meta).unwrap();
        let text = serialize(&restored, &SerializeOptions::compact());
        assert!(text.contains(r#"boss="p1""#), "{text}");
        assert!(text.contains(">Kudrass</person>"), "{text}");
    }
}

//! Document retrieval: database → XML document.
//!
//! Walks the stored object values guided by the [`MappedSchema`] (which
//! knows, per §5's meta-data, whether each database attribute came from an
//! element or an attribute) and rebuilds the DOM. The paper's known losses
//! are reproduced faithfully: comments, processing instructions and the
//! interleaving of mixed content do not come back (§7 "loss of document
//! information"), and where REFs are involved the original sibling order is
//! only preserved per relationship (§7 "usage of references does not
//! preserve the order of elements").
//!
//! # Set-oriented reconstruction
//!
//! Two access strategies share one DOM assembly, switched by the
//! `bulk` flag ([`xmlord_ordb::Database::set_bulk_retrieval`]):
//!
//! - **Naive walker** (the differential baseline): the root row is found
//!   by a linear scan of the root table, and every Oracle 8 inverted
//!   relationship re-scans the whole child table per parent row —
//!   O(parents × child_rows).
//! - **Bulk path** (the default): the root row comes from a doc-id
//!   secondary-index probe when a fresh index exists; each inverted
//!   relationship either probes a fresh `SecondaryIndex` on its ParentRef
//!   column per parent, or makes *one* hash-build pass over the child
//!   table to assemble a parent-OID → child-slots multimap; and IDREF
//!   targets resolve through the OID directory with a per-table field
//!   plan and a per-OID memo instead of a mapping scan per attribute.
//!
//! Both strategies enumerate children in heap-slot order (index buckets
//! keep slots ascending by construction), so the reconstructed documents
//! are byte-identical — the property `retrieve_prop` pins.

use std::collections::HashMap;

use xmlord_ordb::storage::{key_hash, Storage, TableData};
use xmlord_ordb::{Database, Oid, Value};
use xmlord_xml::{Document, NodeId, QName};

use crate::error::MappingError;
use crate::metadata::DocMetadata;
use crate::model::{ElementMapping, FieldKind, FieldSource, MappedSchema};
use xmlord_ordb::ident::Ident;

/// Storage accesses one reconstruction performed — folded into
/// [`xmlord_ordb::ExecStats`] by the callers that hold a `&mut` handle
/// ([`xmlord_ordb::Database::record_retrieval`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetrievalStats {
    /// Full passes over a table heap (root-row scans, naive per-parent
    /// child scans, bulk hash-build passes).
    pub table_scans: u64,
    /// Secondary-index probes that replaced a scan.
    pub index_probes: u64,
}

/// Reconstruct the document stored under `meta.doc_id`, using the
/// database handle's bulk-retrieval setting.
pub fn retrieve_document(
    db: &Database,
    schema: &MappedSchema,
    meta: &DocMetadata,
) -> Result<Document, MappingError> {
    retrieve_with_stats(db, schema, meta).map(|(doc, _)| doc)
}

/// [`retrieve_document`] plus the access counts the reconstruction made.
pub fn retrieve_with_stats(
    db: &Database,
    schema: &MappedSchema,
    meta: &DocMetadata,
) -> Result<(Document, RetrievalStats), MappingError> {
    // One storage guard for the whole walk: the guard holds the shared
    // engine lock, and taking it once up front keeps the recursive
    // builders from re-locking per REF chase.
    let storage = db.storage();
    reconstruct(&storage, schema, meta, db.bulk_retrieval())
}

/// Reconstruct a document from a storage snapshot — the entry point shared
/// by the writer handle ([`retrieve_document`]) and MVCC read sessions
/// (which pass `ReadSession::snapshot()`'s storage).
pub fn reconstruct(
    storage: &Storage,
    schema: &MappedSchema,
    meta: &DocMetadata,
    bulk: bool,
) -> Result<(Document, RetrievalStats), MappingError> {
    let mut ctx = Retriever::new(storage, schema, bulk);
    let (row_values, row_oid) = ctx.find_root_row(meta)?;

    let mut doc = Document::new();
    if meta.xml_version.is_some() || meta.character_set.is_some() || meta.standalone.is_some() {
        doc.declaration = Some(xmlord_xml::XmlDeclaration {
            version: meta.xml_version.clone().unwrap_or_else(|| "1.0".to_string()),
            encoding: meta.character_set.clone(),
            standalone: meta.standalone,
        });
    }
    let root_element = schema.root_element.clone();
    let root_node = ctx.build_element(&mut doc, &root_element, row_values, row_oid)?;
    // Restore the root's default namespace from the meta-table (§5).
    if let Some(ns) = &meta.namespace {
        doc.set_attribute(root_node, QName::local("xmlns"), ns);
    }
    doc.set_root(root_node);
    let stats = ctx.stats;
    Ok((doc, stats))
}

/// Reconstruct a document through an MVCC read session: metadata via the
/// session's SQL surface, rows via its pinned committed snapshot. Returns
/// the access stats without recording them anywhere — callers that own a
/// stats sink fold them in.
pub fn retrieve_snapshot(
    session: &mut xmlord_ordb::ReadSession,
    schema: &MappedSchema,
    doc_id: &str,
) -> Result<(Document, DocMetadata, RetrievalStats), MappingError> {
    let meta = crate::metadata::read_metadata(session, doc_id)?;
    let bulk = session.bulk_retrieval();
    let (doc, stats) = {
        let (_, storage) = session.snapshot();
        reconstruct(storage, schema, &meta, bulk)?
    };
    Ok((doc, meta, stats))
}

/// [`retrieve_snapshot`] folding the access stats into the session's own
/// counters — what the wire server's per-connection reader uses.
pub fn retrieve_via_session(
    session: &mut xmlord_ordb::ReadSession,
    schema: &MappedSchema,
    doc_id: &str,
) -> Result<(Document, DocMetadata), MappingError> {
    let bulk = session.bulk_retrieval();
    let (doc, meta, stats) = retrieve_snapshot(session, schema, doc_id)?;
    session.record_retrieval(stats.table_scans, stats.index_probes, bulk);
    Ok((doc, meta))
}

struct Retriever<'a> {
    storage: &'a Storage,
    schema: &'a MappedSchema,
    bulk: bool,
    stats: RetrievalStats,
    /// Per parent element: the child mappings stored inverted under it
    /// (child table holds a ParentRef and the parent has no field for the
    /// child), with the ParentRef field position. Precomputed once per
    /// reconstruction instead of re-scanning `schema.elements` per node;
    /// kept in the schema's BTreeMap order so attachment order matches the
    /// old walker exactly.
    inverted: HashMap<&'a str, Vec<(&'a ElementMapping, usize)>>,
    /// Table → the element mapping it stores (for IDREF target resolution).
    table_elements: HashMap<Ident, &'a ElementMapping>,
    /// Raw element/child name → sanitized element QName, built on first
    /// use — one `sanitize` + parse per distinct name instead of per node.
    qnames: HashMap<&'a str, QName>,
    /// Bulk: per inverted child table, parent OID → child row slots in
    /// heap order (the single hash-build pass). Built lazily on the first
    /// parent that needs the relationship, when no fresh index serves it.
    child_maps: HashMap<Ident, HashMap<Oid, Vec<usize>>>,
    /// Bulk: memoized document-ID values per target row (IDREF batches
    /// resolve each target once, however many attributes point at it).
    id_memo: HashMap<Oid, Option<String>>,
}

impl<'a> Retriever<'a> {
    fn new(storage: &'a Storage, schema: &'a MappedSchema, bulk: bool) -> Retriever<'a> {
        let mut inverted: HashMap<&'a str, Vec<(&'a ElementMapping, usize)>> = HashMap::new();
        let mut table_elements = HashMap::new();
        for mapping in schema.elements.values() {
            if let Some(table) = &mapping.table {
                table_elements.insert(Ident::internal(table), mapping);
            }
            let Some(ref_idx) = mapping
                .fields
                .iter()
                .position(|f| matches!(&f.source, FieldSource::ParentRef(_)))
            else {
                continue;
            };
            let FieldSource::ParentRef(parent) = &mapping.fields[ref_idx].source else {
                unreachable!("position() matched a ParentRef");
            };
            // Skip relationships the parent holds a field for (those
            // children come back through the parent's own row).
            let parent_holds_field = schema
                .mapping(parent)
                .is_some_and(|m| m.field_for_child(&mapping.element).is_some());
            if !parent_holds_field {
                inverted.entry(parent.as_str()).or_default().push((mapping, ref_idx));
            }
        }
        Retriever {
            storage,
            schema,
            bulk,
            stats: RetrievalStats::default(),
            inverted,
            table_elements,
            qnames: HashMap::new(),
            child_maps: HashMap::new(),
            id_memo: HashMap::new(),
        }
    }

    /// Sanitized element QName for a raw XML name, cached per name.
    fn element_qname(&mut self, raw: &'a str) -> QName {
        self.qnames
            .entry(raw)
            .or_insert_with(|| QName::local(&crate::naming::sanitize(raw)))
            .clone()
    }

    fn mapping_of(&self, element: &str) -> Result<&'a ElementMapping, MappingError> {
        self.schema
            .mapping(element)
            .ok_or_else(|| MappingError::UndeclaredElement(element.to_string()))
    }

    /// Locate the root row: by document id column when present (index
    /// probe on the bulk path, linear scan otherwise), else the single row
    /// of the table.
    fn find_root_row(
        &mut self,
        meta: &DocMetadata,
    ) -> Result<(&'a [Value], Option<Oid>), MappingError> {
        let root_mapping = self
            .schema
            .mapping(&self.schema.root_element)
            .ok_or_else(|| MappingError::UndeclaredElement(self.schema.root_element.clone()))?;
        let table = Ident::internal(&self.schema.root_table);
        let data = self
            .storage
            .table(&table)
            .ok_or_else(|| MappingError::NoSuchDocument(meta.doc_id.clone()))?;
        let row = match &self.schema.doc_id_column {
            Some(col) => {
                let idx = field_index(root_mapping, col).ok_or_else(|| {
                    MappingError::Unsupported(format!("root mapping lacks id column {col}"))
                })?;
                let indexed = self
                    .bulk
                    .then(|| self.storage.find_fresh_index(&table, &[idx]))
                    .flatten();
                match indexed {
                    Some(index) => {
                        // Hash prefilter: candidates still verify the
                        // predicate (the buckets keep slots ascending, so
                        // the first verified candidate is the scan's).
                        self.stats.index_probes += 1;
                        let key = Value::str(&meta.doc_id);
                        let slots = key_hash(&[&key])
                            .and_then(|h| self.storage.index_probe(index, h))
                            .unwrap_or(&[]);
                        slots
                            .iter()
                            .map(|&slot| &data.rows[slot])
                            .find(|r| {
                                r.values.get(idx).and_then(|v| v.as_str())
                                    == Some(meta.doc_id.as_str())
                            })
                    }
                    None => {
                        self.stats.table_scans += 1;
                        data.rows.iter().find(|r| {
                            r.values.get(idx).and_then(|v| v.as_str())
                                == Some(meta.doc_id.as_str())
                        })
                    }
                }
            }
            None => {
                self.stats.table_scans += 1;
                data.rows.first()
            }
        };
        row.map(|r| (r.values.as_slice(), r.oid))
            .ok_or_else(|| MappingError::NoSuchDocument(meta.doc_id.clone()))
    }

    /// Build the DOM subtree for one element instance from its attribute
    /// values (`values` parallels `mapping.fields`).
    fn build_element(
        &mut self,
        doc: &mut Document,
        element: &'a str,
        values: &[Value],
        oid: Option<Oid>,
    ) -> Result<NodeId, MappingError> {
        let mapping = self.mapping_of(element)?;
        let node = doc.create_element(self.element_qname(element));
        for (field, value) in mapping.fields.iter().zip(values) {
            match &field.source {
                FieldSource::SyntheticId | FieldSource::ParentRef(_) => {}
                FieldSource::XmlAttribute(attr) => match (&field.kind, value) {
                    (_, Value::Null) => {}
                    (FieldKind::Ref(_), Value::Ref(target_oid)) => {
                        // An IDREF attribute: restore the target's ID value.
                        if let Some(id_value) = self.id_value_of(*target_oid)? {
                            doc.set_attribute(node, QName::local(attr), &id_value);
                        }
                    }
                    (_, other) => {
                        if let Some(text) = scalar_text(other) {
                            doc.set_attribute(node, QName::local(attr), &text);
                        }
                    }
                },
                FieldSource::AttrList => {
                    if let Value::Obj { attrs, .. } = value {
                        let Some(attr_list) = mapping.attr_list.as_ref() else {
                            return Err(MappingError::InconsistentMapping(format!(
                                "<{element}> row carries an attribute-list object but the \
                                 mapping declares no attribute list"
                            )));
                        };
                        for (f, v) in attr_list.fields.iter().zip(attrs) {
                            match v {
                                Value::Null => {}
                                Value::Ref(target_oid) => {
                                    if let Some(id_value) = self.id_value_of(*target_oid)? {
                                        doc.set_attribute(
                                            node,
                                            QName::local(&f.xml_attribute),
                                            &id_value,
                                        );
                                    }
                                }
                                other => {
                                    if let Some(text) = scalar_text(other) {
                                        doc.set_attribute(
                                            node,
                                            QName::local(&f.xml_attribute),
                                            &text,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
                FieldSource::Text => {
                    if let Some(text) = scalar_text(value) {
                        if !text.is_empty() {
                            let t = doc.create_text(&text);
                            doc.append_child(node, t);
                        }
                    }
                }
                FieldSource::ChildElement(child_name) => {
                    self.build_child_field(doc, node, child_name, field, value)?;
                }
            }
        }
        // Oracle 8 inverted children: collect rows of the child table whose
        // ParentRef points at this row, then restore content-model order.
        if let Some(my_oid) = oid {
            if self.attach_inverted_children(doc, node, element, my_oid)? {
                let mapping = self.mapping_of(element)?;
                reorder_children(doc, node, &mapping.child_order);
            }
        }
        Ok(node)
    }

    fn build_child_field(
        &mut self,
        doc: &mut Document,
        parent: NodeId,
        child_name: &'a str,
        field: &crate::model::FieldMapping,
        value: &Value,
    ) -> Result<(), MappingError> {
        match (&field.kind, value) {
            (_, Value::Null) => Ok(()),
            (FieldKind::Scalar(_), v) => {
                let child = doc.create_element(self.element_qname(child_name));
                if let Some(text) = scalar_text(v) {
                    if !text.is_empty() {
                        let t = doc.create_text(&text);
                        doc.append_child(child, t);
                    }
                }
                doc.append_child(parent, child);
                Ok(())
            }
            (FieldKind::Object(_), Value::Obj { attrs, .. }) => {
                let child = self.build_element(doc, child_name, attrs, None)?;
                doc.append_child(parent, child);
                Ok(())
            }
            (FieldKind::ScalarCollection(_), Value::Coll { elements, .. }) => {
                for element in elements {
                    let child = doc.create_element(self.element_qname(child_name));
                    if let Some(text) = scalar_text(element) {
                        if !text.is_empty() {
                            let t = doc.create_text(&text);
                            doc.append_child(child, t);
                        }
                    }
                    doc.append_child(parent, child);
                }
                Ok(())
            }
            (FieldKind::ObjectCollection { .. }, Value::Coll { elements, .. }) => {
                for element in elements {
                    if let Value::Obj { attrs, .. } = element {
                        let child = self.build_element(doc, child_name, attrs, None)?;
                        doc.append_child(parent, child);
                    }
                }
                Ok(())
            }
            (FieldKind::Ref(_), Value::Ref(oid)) => {
                let child = self.build_ref_child(doc, child_name, *oid)?;
                doc.append_child(parent, child);
                Ok(())
            }
            (FieldKind::RefCollection { .. }, Value::Coll { elements, .. }) => {
                for element in elements {
                    if let Value::Ref(oid) = element {
                        let child = self.build_ref_child(doc, child_name, *oid)?;
                        doc.append_child(parent, child);
                    }
                }
                Ok(())
            }
            (kind, other) => Err(MappingError::Unsupported(format!(
                "stored value {} does not match mapped kind {kind:?} for <{child_name}>",
                other.to_sql_literal()
            ))),
        }
    }

    fn build_ref_child(
        &mut self,
        doc: &mut Document,
        child_name: &'a str,
        oid: Oid,
    ) -> Result<NodeId, MappingError> {
        let (_, row) = self
            .storage
            .resolve_oid(oid)
            .ok_or(MappingError::Db(xmlord_ordb::DbError::DanglingRef))?;
        // The row borrow comes from the storage snapshot (`'a`), not from
        // `self`, so the values pass straight down without a clone.
        let values: &'a [Value] = &row.values;
        self.build_element(doc, child_name, values, Some(oid))
    }

    /// Child row slots of `my_oid` in one inverted relationship, in heap
    /// order. Bulk: a fresh ParentRef index answers with a probe; otherwise
    /// one hash-build pass over the child table serves every parent.
    /// Naive: a fresh scan per parent — the quadratic baseline.
    fn inverted_child_slots(
        &mut self,
        table: Ident,
        data: &'a TableData,
        ref_idx: usize,
        my_oid: Oid,
    ) -> Vec<usize> {
        if !self.bulk {
            self.stats.table_scans += 1;
            return data
                .rows
                .iter()
                .enumerate()
                .filter(|(_, r)| r.values.get(ref_idx) == Some(&Value::Ref(my_oid)))
                .map(|(slot, _)| slot)
                .collect();
        }
        if let Some(index) = self.storage.find_fresh_index(&table, &[ref_idx]) {
            self.stats.index_probes += 1;
            let key = Value::Ref(my_oid);
            let slots = key_hash(&[&key])
                .and_then(|h| self.storage.index_probe(index, h))
                .unwrap_or(&[]);
            // Hash prefilter: re-verify each candidate slot.
            return slots
                .iter()
                .copied()
                .filter(|&slot| data.rows[slot].values.get(ref_idx) == Some(&key))
                .collect();
        }
        if !self.child_maps.contains_key(&table) {
            self.stats.table_scans += 1;
            let mut map: HashMap<Oid, Vec<usize>> = HashMap::new();
            for (slot, row) in data.rows.iter().enumerate() {
                if let Some(Value::Ref(parent)) = row.values.get(ref_idx) {
                    // Slots arrive ascending, so plain pushes keep each
                    // bucket in heap order — same enumeration as a scan.
                    map.entry(*parent).or_default().push(slot);
                }
            }
            self.child_maps.insert(table.clone(), map);
        }
        self.child_maps[&table].get(&my_oid).cloned().unwrap_or_default()
    }

    /// Returns `true` if any inverted child was attached.
    fn attach_inverted_children(
        &mut self,
        doc: &mut Document,
        node: NodeId,
        element: &str,
        my_oid: Oid,
    ) -> Result<bool, MappingError> {
        let relationships: Vec<(&'a ElementMapping, usize)> =
            match self.inverted.get(element) {
                Some(v) => v.clone(),
                None => return Ok(false),
            };
        let mut attached = false;
        for (child_mapping, ref_idx) in relationships {
            let Some(child_table) = &child_mapping.table else { continue };
            let table = Ident::internal(child_table);
            let Some(data) = self.storage.table(&table) else { continue };
            for slot in self.inverted_child_slots(table, data, ref_idx, my_oid) {
                let row = &data.rows[slot];
                let values: &'a [Value] = &row.values;
                let child =
                    self.build_element(doc, &child_mapping.element, values, row.oid)?;
                doc.append_child(node, child);
                attached = true;
            }
        }
        Ok(attached)
    }

    /// The document-level ID attribute value of a row object (for restoring
    /// IDREF attributes). Resolves through the OID directory and the
    /// precomputed table → mapping plan; the bulk path memoizes per target
    /// so shared IDREF targets resolve once.
    fn id_value_of(&mut self, oid: Oid) -> Result<Option<String>, MappingError> {
        if self.bulk {
            if let Some(cached) = self.id_memo.get(&oid) {
                return Ok(cached.clone());
            }
        }
        let resolved = self.resolve_id_value(oid);
        if self.bulk {
            self.id_memo.insert(oid, resolved.clone());
        }
        Ok(resolved)
    }

    fn resolve_id_value(&self, oid: Oid) -> Option<String> {
        let (table, row) = self.storage.resolve_oid(oid)?;
        // Which element does this table store?
        let mapping = *self.table_elements.get(table)?;
        // Prefer an inlined attribute field that is plain VARCHAR (the ID
        // itself); otherwise look inside the attrList object.
        if let Some(attr_list) = &mapping.attr_list {
            if let Some(list_idx) =
                mapping.fields.iter().position(|f| f.source == FieldSource::AttrList)
            {
                if let Some(Value::Obj { attrs, .. }) = row.values.get(list_idx) {
                    for (f, v) in attr_list.fields.iter().zip(attrs) {
                        if f.idref_target.is_none() {
                            if let Some(s) = v.as_str() {
                                return Some(s.to_string());
                            }
                        }
                    }
                }
            }
        }
        for (idx, field) in mapping.fields.iter().enumerate() {
            if matches!(field.source, FieldSource::XmlAttribute(_))
                && matches!(field.kind, FieldKind::Scalar(_))
            {
                if let Some(s) = row.values.get(idx).and_then(|v| v.as_str()) {
                    return Some(s.to_string());
                }
            }
        }
        None
    }
}

/// Restore content-model order among an element's children: only element
/// children whose name appears in `child_order` are sorted (stably, by
/// their position in the content model), and they are written back into the
/// slots those same children occupied — text nodes and elements with
/// unknown names keep their exact document positions instead of being
/// clustered together.
pub(crate) fn reorder_children(doc: &mut Document, node: NodeId, child_order: &[String]) {
    let mut children: Vec<NodeId> = doc.children(node).to_vec();
    let order_of = |doc: &Document, c: NodeId| match doc.kind(c) {
        xmlord_xml::NodeKind::Element(el) => {
            child_order.iter().position(|n| *n == el.name.local)
        }
        _ => None,
    };
    let slots: Vec<usize> = (0..children.len())
        .filter(|&i| order_of(doc, children[i]).is_some())
        .collect();
    let mut ordered: Vec<NodeId> = slots.iter().map(|&i| children[i]).collect();
    // Stable sort: equal content-model positions keep document order.
    ordered.sort_by_key(|&c| order_of(doc, c));
    for (&slot, &child) in slots.iter().zip(&ordered) {
        children[slot] = child;
    }
    doc.replace_children(node, children);
}

/// Text rendering of a stored scalar value (typed columns render through
/// SQL Display: NUMBER 4 → "4", DATE → its ISO string).
fn scalar_text(v: &Value) -> Option<String> {
    match v {
        Value::Null => None,
        other => Some(other.to_string()),
    }
}

fn field_index(mapping: &ElementMapping, db_name: &str) -> Option<usize> {
    mapping.fields.iter().position(|f| f.db_name.eq_ignore_ascii_case(db_name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddlgen::create_script;
    use crate::loader::load_script;
    use crate::metadata::DocMetadata;
    use crate::model::MappingOptions;
    use crate::schemagen::{generate_schema, IdrefTargets};
    use xmlord_dtd::parse_dtd;
    use xmlord_ordb::DbMode;
    use xmlord_xml::serializer::{serialize, SerializeOptions};

    const UNIVERSITY_DTD: &str = r#"
<!ELEMENT University (StudyCourse,Student*)>
<!ELEMENT Student (LName,FName,Course*)>
<!ATTLIST Student StudNr CDATA #REQUIRED>
<!ELEMENT Course (Name,Professor*,CreditPts?)>
<!ELEMENT Professor (PName,Subject+,Dept)>
<!ELEMENT LName (#PCDATA)> <!ELEMENT FName (#PCDATA)>
<!ELEMENT Name (#PCDATA)> <!ELEMENT PName (#PCDATA)>
<!ELEMENT Subject (#PCDATA)> <!ELEMENT Dept (#PCDATA)>
<!ELEMENT StudyCourse (#PCDATA)> <!ELEMENT CreditPts (#PCDATA)>
"#;

    const UNIVERSITY_XML: &str = "<University><StudyCourse>CS</StudyCourse>\
<Student StudNr=\"23374\"><LName>Conrad</LName><FName>Matthias</FName>\
<Course><Name>DBS II</Name><Professor><PName>Kudrass</PName>\
<Subject>DBS</Subject><Subject>OS</Subject><Dept>CS</Dept></Professor>\
<CreditPts>4</CreditPts></Course></Student>\
<Student StudNr=\"00011\"><LName>Meier</LName><FName>Ralf</FName></Student></University>";

    fn loaded_university(mode: DbMode) -> (Database, MappedSchema) {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        let doc = xmlord_xml::parse(UNIVERSITY_XML).unwrap();
        let schema = generate_schema(
            &dtd,
            "University",
            mode,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let mut db = Database::new(mode);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        for stmt in load_script(&schema, &dtd, &doc, "doc1").unwrap() {
            db.execute(&stmt).unwrap();
        }
        (db, schema)
    }

    fn round_trip(mode: DbMode) -> String {
        let (db, schema) = loaded_university(mode);
        let meta = DocMetadata { doc_id: "doc1".into(), ..Default::default() };
        let restored = retrieve_document(&db, &schema, &meta).unwrap();
        serialize(&restored, &SerializeOptions::compact())
    }

    #[test]
    fn oracle9_round_trip_is_exact_for_data_centric_documents() {
        assert_eq!(round_trip(DbMode::Oracle9), UNIVERSITY_XML);
    }

    #[test]
    fn oracle8_round_trip_restores_the_same_document() {
        // The REF-based storage layout differs, but the reconstructed
        // document is identical for this document.
        assert_eq!(round_trip(DbMode::Oracle8), UNIVERSITY_XML);
    }

    #[test]
    fn bulk_and_naive_walkers_reconstruct_identical_documents() {
        for mode in [DbMode::Oracle8, DbMode::Oracle9] {
            let (mut db, schema) = loaded_university(mode);
            let meta = DocMetadata { doc_id: "doc1".into(), ..Default::default() };
            let bulk = retrieve_document(&db, &schema, &meta).unwrap();
            db.set_bulk_retrieval(false);
            let naive = retrieve_document(&db, &schema, &meta).unwrap();
            assert_eq!(
                serialize(&bulk, &SerializeOptions::compact()),
                serialize(&naive, &SerializeOptions::compact()),
                "{mode:?}: bulk and naive reconstruction diverged"
            );
        }
    }

    #[test]
    fn bulk_walker_scans_each_inverted_table_once() {
        // Oracle 8 stores Student/Course/Professor inverted. The naive
        // walker re-scans per parent; the bulk walker hash-builds once per
        // (relationship, table) and the root scan is the only other pass.
        let (mut db, schema) = loaded_university(DbMode::Oracle8);
        let meta = DocMetadata { doc_id: "doc1".into(), ..Default::default() };
        let (_, bulk) = retrieve_with_stats(&db, &schema, &meta).unwrap();
        db.set_bulk_retrieval(false);
        let (_, naive) = retrieve_with_stats(&db, &schema, &meta).unwrap();
        assert!(
            bulk.table_scans < naive.table_scans,
            "bulk {bulk:?} vs naive {naive:?}"
        );
    }

    #[test]
    fn root_lookup_uses_a_doc_id_index_when_present() {
        let (mut db, schema) = loaded_university(DbMode::Oracle9);
        let col = schema.doc_id_column.clone().unwrap();
        db.execute(&format!("CREATE INDEX IdxDocId ON {} ({col})", schema.root_table))
            .unwrap();
        let meta = DocMetadata { doc_id: "doc1".into(), ..Default::default() };
        let (doc, stats) = retrieve_with_stats(&db, &schema, &meta).unwrap();
        assert!(stats.index_probes > 0, "{stats:?}");
        assert_eq!(serialize(&doc, &SerializeOptions::compact()), UNIVERSITY_XML);

        // The naive valve still scans — and reconstructs the same bytes.
        db.set_bulk_retrieval(false);
        let (naive, stats) = retrieve_with_stats(&db, &schema, &meta).unwrap();
        assert_eq!(stats.index_probes, 0, "{stats:?}");
        assert_eq!(serialize(&naive, &SerializeOptions::compact()), UNIVERSITY_XML);
    }

    #[test]
    fn inverted_children_use_a_parent_ref_index_when_present() {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        let doc = xmlord_xml::parse(UNIVERSITY_XML).unwrap();
        let schema = generate_schema(
            &dtd,
            "University",
            DbMode::Oracle8,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let mut db = Database::new(DbMode::Oracle8);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        for stmt in load_script(&schema, &dtd, &doc, "doc1").unwrap() {
            db.execute(&stmt).unwrap();
        }
        // Index every ParentRef column that exists in the mapping.
        let mut n = 0;
        for mapping in schema.elements.values() {
            let (Some(table), Some(idx)) = (
                &mapping.table,
                mapping
                    .fields
                    .iter()
                    .position(|f| matches!(f.source, FieldSource::ParentRef(_))),
            ) else {
                continue;
            };
            let col = &mapping.fields[idx].db_name;
            n += 1;
            db.execute(&format!("CREATE INDEX IdxPR{n} ON {table} ({col})")).unwrap();
        }
        assert!(n > 0, "Oracle 8 mapping should have inverted relationships");
        let meta = DocMetadata { doc_id: "doc1".into(), ..Default::default() };
        let (restored, stats) = retrieve_with_stats(&db, &schema, &meta).unwrap();
        assert!(stats.index_probes > 0, "{stats:?}");
        assert_eq!(serialize(&restored, &SerializeOptions::compact()), UNIVERSITY_XML);
    }

    #[test]
    fn recursion_round_trips() {
        let dtd_text = r#"
            <!ELEMENT Professor (PName,Dept)>
            <!ELEMENT Dept (DName,Professor*)>
            <!ELEMENT PName (#PCDATA)> <!ELEMENT DName (#PCDATA)>"#;
        let xml = "<Professor><PName>Kudrass</PName><Dept><DName>CS</DName>\
<Professor><PName>Jaeger</PName><Dept><DName>CAD</DName></Dept></Professor>\
</Dept></Professor>";
        let dtd = parse_dtd(dtd_text).unwrap();
        let doc = xmlord_xml::parse(xml).unwrap();
        let schema = generate_schema(
            &dtd,
            "Professor",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        for stmt in load_script(&schema, &dtd, &doc, "d1").unwrap() {
            db.execute(&stmt).unwrap();
        }
        let meta = DocMetadata { doc_id: "d1".into(), ..Default::default() };
        let restored = retrieve_document(&db, &schema, &meta).unwrap();
        assert_eq!(serialize(&restored, &SerializeOptions::compact()), xml);
    }

    #[test]
    fn multiple_documents_coexist_and_retrieve_separately() {
        let dtd_text = "<!ELEMENT r (#PCDATA)>";
        let dtd = parse_dtd(dtd_text).unwrap();
        let schema = generate_schema(
            &dtd,
            "r",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        for (i, text) in ["first", "second", "third"].iter().enumerate() {
            let doc = xmlord_xml::parse(&format!("<r>{text}</r>")).unwrap();
            for stmt in load_script(&schema, &dtd, &doc, &format!("doc{i}")).unwrap() {
                db.execute(&stmt).unwrap();
            }
        }
        let meta = DocMetadata { doc_id: "doc1".into(), ..Default::default() };
        let restored = retrieve_document(&db, &schema, &meta).unwrap();
        assert_eq!(
            serialize(&restored, &SerializeOptions::compact()),
            "<r>second</r>"
        );
    }

    #[test]
    fn missing_document_is_reported() {
        let dtd_text = "<!ELEMENT r (#PCDATA)>";
        let dtd = parse_dtd(dtd_text).unwrap();
        let schema = generate_schema(
            &dtd,
            "r",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        let meta = DocMetadata { doc_id: "ghost".into(), ..Default::default() };
        assert!(matches!(
            retrieve_document(&db, &schema, &meta),
            Err(MappingError::NoSuchDocument(_))
        ));
    }

    #[test]
    fn comments_and_pis_are_lost_as_the_paper_admits() {
        let dtd_text = "<!ELEMENT r (#PCDATA)>";
        let dtd = parse_dtd(dtd_text).unwrap();
        let doc = xmlord_xml::parse("<r>x<!--note--><?pi data?></r>").unwrap();
        let schema = generate_schema(
            &dtd,
            "r",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        for stmt in load_script(&schema, &dtd, &doc, "d").unwrap() {
            db.execute(&stmt).unwrap();
        }
        let meta = DocMetadata { doc_id: "d".into(), ..Default::default() };
        let restored = retrieve_document(&db, &schema, &meta).unwrap();
        let text = serialize(&restored, &SerializeOptions::compact());
        assert_eq!(text, "<r>x</r>"); // §7: comments and PIs are gone
    }

    /// Regression: a stored row carrying an attribute-list object while the
    /// mapping declares none must surface as a typed error, not a panic.
    #[test]
    fn attr_list_mismatch_is_a_typed_error_not_a_panic() {
        let dtd_text = r#"
            <!ELEMENT r EMPTY>
            <!ATTLIST r a CDATA #IMPLIED b CDATA #IMPLIED>"#;
        let dtd = parse_dtd(dtd_text).unwrap();
        let doc = xmlord_xml::parse(r#"<r a="1" b="2"/>"#).unwrap();
        let mut schema = generate_schema(
            &dtd,
            "r",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        assert!(schema.mapping("r").unwrap().attr_list.is_some());
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        for stmt in load_script(&schema, &dtd, &doc, "d").unwrap() {
            db.execute(&stmt).unwrap();
        }
        // The schema drifts after the rows were stored.
        schema.elements.get_mut("r").unwrap().attr_list = None;
        let meta = DocMetadata { doc_id: "d".into(), ..Default::default() };
        let err = retrieve_document(&db, &schema, &meta).unwrap_err();
        assert!(
            matches!(err, MappingError::InconsistentMapping(_)),
            "expected InconsistentMapping, got {err:?}"
        );
    }

    /// Regression: children whose element name is absent from the content
    /// model (and non-element children) must keep their document positions;
    /// the old implementation clustered them all at the front.
    #[test]
    fn reorder_preserves_slots_of_unknown_and_text_children() {
        let mut doc = Document::new();
        let root = doc.create_element(QName::local("r"));
        let tx = doc.create_text("x");
        let b = doc.create_element(QName::local("b"));
        let a = doc.create_element(QName::local("a"));
        let ty = doc.create_text("y");
        let c = doc.create_element(QName::local("c")); // not in the model
        for n in [tx, b, a, ty, c] {
            doc.append_child(root, n);
        }
        reorder_children(&mut doc, root, &["a".to_string(), "b".to_string()]);
        let rendered: Vec<String> = doc
            .children(root)
            .iter()
            .map(|&n| match doc.kind(n) {
                xmlord_xml::NodeKind::Element(el) => format!("<{}>", el.name.local),
                _ => "text".to_string(),
            })
            .collect();
        // a and b swap into each other's slots; x, y and <c> stay put.
        assert_eq!(rendered, vec!["text", "<a>", "<b>", "text", "<c>"]);
    }

    /// Oracle 8 stores repeated complex children inverted (child table with
    /// a parent REF) and restores order afterwards — mixed content around
    /// them must survive the reordering.
    #[test]
    fn oracle8_mixed_content_round_trips_around_inverted_children() {
        let dtd_text = r#"
            <!ELEMENT article (#PCDATA|section)*>
            <!ELEMENT section (para*)>
            <!ELEMENT para (#PCDATA)>"#;
        let xml = "<article>intro<section><para>a1</para></section>\
<section><para>b1</para><para>b2</para></section></article>";
        let dtd = parse_dtd(dtd_text).unwrap();
        let doc = xmlord_xml::parse(xml).unwrap();
        let schema = generate_schema(
            &dtd,
            "article",
            DbMode::Oracle8,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let mut db = Database::new(DbMode::Oracle8);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        for stmt in load_script(&schema, &dtd, &doc, "d").unwrap() {
            db.execute(&stmt).unwrap();
        }
        let meta = DocMetadata { doc_id: "d".into(), ..Default::default() };
        let restored = retrieve_document(&db, &schema, &meta).unwrap();
        let text = serialize(&restored, &SerializeOptions::compact());
        // The text keeps its leading position and the sections their
        // document order (interleaving within mixed content is the paper's
        // admitted loss, so the text is concatenated up front).
        assert!(text.starts_with("<article>intro<section>"), "{text}");
        let one = text.find("a1").unwrap();
        let b1 = text.find("b1").unwrap();
        let b2 = text.find("b2").unwrap();
        assert!(one < b1 && b1 < b2, "{text}");
    }

    #[test]
    fn idref_attribute_is_restored_from_the_target_id() {
        let dtd_text = r#"
            <!ELEMENT db (person*)>
            <!ELEMENT person (#PCDATA)>
            <!ATTLIST person id ID #REQUIRED boss IDREF #IMPLIED>"#;
        let xml = r#"<db><person id="p1">Kudrass</person><person boss="p1" id="p2">Conrad</person></db>"#;
        let dtd = parse_dtd(dtd_text).unwrap();
        let doc = xmlord_xml::parse(xml).unwrap();
        let mut targets = IdrefTargets::new();
        targets.insert(("person".into(), "boss".into()), "person".into());
        let schema = generate_schema(
            &dtd,
            "db",
            DbMode::Oracle9,
            MappingOptions { map_idrefs: true, ..Default::default() },
            &targets,
        )
        .unwrap();
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&create_script(&schema).unwrap()).unwrap();
        for stmt in load_script(&schema, &dtd, &doc, "d").unwrap() {
            db.execute(&stmt).unwrap();
        }
        let meta = DocMetadata { doc_id: "d".into(), ..Default::default() };
        let restored = retrieve_document(&db, &schema, &meta).unwrap();
        let text = serialize(&restored, &SerializeOptions::compact());
        assert!(text.contains(r#"boss="p1""#), "{text}");
        assert!(text.contains(">Kudrass</person>"), "{text}");
    }
}

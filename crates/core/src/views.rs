//! Object views over a shredded relational schema (§6.3).
//!
//! "Let's assume a relational schema has been generated from the DTD as it
//! has been described in known mapping algorithms \[2\]. … We begin by
//! creating user-defined types from the given DTD according to the
//! methodology described in section 4. Next, we create an object view …
//! to superimpose the correct logical structure on top of a join of …
//! physical tables." Set-valued simple elements are folded in with
//! `CAST(MULTISET(…))`, exactly as the paper's closing example shows.
//!
//! The module therefore contains three pieces:
//! 1. [`relational_schema`] — the referenced "known mapping algorithm": a
//!    key-based relational shredding (one table per complex element, with
//!    `ID…` primary keys and an `IDParent` foreign key, §6.3's
//!    `tabUniversity/tabStudent/…` layout — named `Rel…` here so it can
//!    coexist with the object-relational tables),
//! 2. [`relational_load_script`] — the multi-INSERT loader for it (also the
//!    measured baseline for experiment E6's statement counts),
//! 3. [`object_view_script`] — the `CREATE VIEW OView_… AS SELECT Type_…(…)`
//!    statement with nested constructors and `CAST(MULTISET(…))`.

use std::collections::{BTreeMap, HashMap};

use xmlord_ordb::ident::Ident;
use xmlord_ordb::storage::{key_hash, Storage, TableData};
use xmlord_ordb::Value;
use xmlord_xml::{Document, NodeId, QName};

use crate::error::MappingError;
use crate::model::{FieldKind, FieldSource, MappedSchema};

/// Where a relational column's value comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelColumnSource {
    /// The element's own text.
    Text,
    /// An XML attribute.
    Attribute(String),
    /// A single-valued simple child element.
    SimpleChild(String),
}

/// One table of the relational shredding.
#[derive(Debug, Clone)]
pub struct RelTable {
    pub element: String,
    pub name: String,
    /// `ID<Element>` primary key column.
    pub id_column: String,
    /// `IDParent` foreign key (None for the root's table).
    pub parent_column: Option<String>,
    pub columns: Vec<(String, RelColumnSource)>,
    /// True when this table only materializes a set-valued simple child.
    pub is_leaf_list: bool,
}

/// The key-based relational schema of §6.3.
#[derive(Debug, Clone)]
pub struct RelationalSchema {
    pub root: String,
    /// Tables in parent-before-child order.
    pub tables: Vec<RelTable>,
}

impl RelationalSchema {
    pub fn table_for(&self, element: &str) -> Option<&RelTable> {
        self.tables.iter().find(|t| t.element == element && !t.is_leaf_list)
    }

    pub fn leaf_list_for(&self, element: &str) -> Option<&RelTable> {
        self.tables.iter().find(|t| t.element == element && t.is_leaf_list)
    }
}

/// Derive the relational shredding from the same [`MappedSchema`] the
/// object view's types come from (ensuring field order matches the
/// constructors).
pub fn relational_schema(schema: &MappedSchema) -> RelationalSchema {
    let mut tables = Vec::new();
    // Parent-first order: reverse of the bottom-up creation order.
    for element in schema.creation_order.iter().rev() {
        let mapping = &schema.elements[element];
        if mapping.object_type.is_none() {
            continue;
        }
        let mut columns = Vec::new();
        for field in &mapping.fields {
            match (&field.source, &field.kind) {
                (FieldSource::Text, _) => columns.push((field.db_name.clone(), RelColumnSource::Text)),
                (FieldSource::XmlAttribute(a), _) => {
                    columns.push((field.db_name.clone(), RelColumnSource::Attribute(a.clone())))
                }
                (FieldSource::AttrList, _) => {
                    // Infallible by construction: schemagen only emits an
                    // AttrList field alongside the attr_list mapping, and
                    // maplint's MAP020 checks the invariant statically for
                    // hand-built schemas.
                    let Some(attr_list) = mapping.attr_list.as_ref() else { continue };
                    for f in &attr_list.fields {
                        columns.push((
                            f.db_name.clone(),
                            RelColumnSource::Attribute(f.xml_attribute.clone()),
                        ));
                    }
                }
                (FieldSource::ChildElement(c), FieldKind::Scalar(_)) => {
                    columns.push((field.db_name.clone(), RelColumnSource::SimpleChild(c.clone())))
                }
                _ => {} // complex / set-valued children live in their own tables
            }
        }
        tables.push(RelTable {
            element: element.clone(),
            name: format!("Rel{}", crate::naming::sanitize(element)),
            id_column: format!("ID{}", crate::naming::sanitize(element)),
            parent_column: if element == &schema.root_element {
                None
            } else {
                Some("IDParent".to_string())
            },
            columns,
            is_leaf_list: false,
        });
        // Set-valued simple children get list tables.
        for field in &mapping.fields {
            if let (FieldSource::ChildElement(c), FieldKind::ScalarCollection(_)) =
                (&field.source, &field.kind)
            {
                if !tables.iter().any(|t: &RelTable| t.element == *c && t.is_leaf_list) {
                    tables.push(RelTable {
                        element: c.clone(),
                        name: format!("Rel{}", crate::naming::sanitize(c)),
                        id_column: format!("ID{}", crate::naming::sanitize(c)),
                        parent_column: Some("IDParent".to_string()),
                        columns: vec![(
                            format!("attr{}", crate::naming::sanitize(c)),
                            RelColumnSource::Text,
                        )],
                        is_leaf_list: true,
                    });
                }
            }
        }
    }
    RelationalSchema { root: schema.root_element.clone(), tables }
}

/// DDL for the relational schema.
pub fn relational_ddl(rel: &RelationalSchema, varchar_len: u32) -> String {
    let mut out = String::new();
    for table in &rel.tables {
        let mut cols = vec![format!("    {} NUMBER PRIMARY KEY", table.id_column)];
        if let Some(parent) = &table.parent_column {
            cols.push(format!("    {parent} NUMBER"));
        }
        for (name, _) in &table.columns {
            cols.push(format!("    {name} VARCHAR({varchar_len})"));
        }
        out.push_str(&format!("CREATE TABLE {} (\n{}\n);\n", table.name, cols.join(",\n")));
    }
    out
}

/// Shred a document into INSERT statements for the relational schema.
/// Returns the statements — their *count* is the E6 metric the paper's §1
/// criticizes ("a large number of relational insert operations").
pub fn relational_load_script(
    schema: &MappedSchema,
    rel: &RelationalSchema,
    doc: &Document,
) -> Result<Vec<String>, MappingError> {
    let root = doc
        .root_element()
        .ok_or_else(|| MappingError::Unsupported("document has no root".into()))?;
    let mut out = Vec::new();
    let mut next_id = 0u64;
    shred(schema, rel, doc, root, None, &mut next_id, &mut out)?;
    Ok(out)
}

fn shred(
    schema: &MappedSchema,
    rel: &RelationalSchema,
    doc: &Document,
    node: NodeId,
    parent_id: Option<u64>,
    next_id: &mut u64,
    out: &mut Vec<String>,
) -> Result<(), MappingError> {
    let element = doc.name(node).as_raw();
    let mapping = schema
        .mapping(&element)
        .ok_or_else(|| MappingError::UndeclaredElement(element.clone()))?;
    let q = |s: &str| format!("'{}'", s.replace('\'', "''"));

    if mapping.object_type.is_some() {
        let table = rel.table_for(&element).ok_or_else(|| {
            MappingError::Unsupported(format!("no relational table for <{element}>"))
        })?;
        *next_id += 1;
        let my_id = *next_id;
        let mut values = vec![my_id.to_string()];
        if table.parent_column.is_some() {
            values.push(parent_id.map(|p| p.to_string()).unwrap_or_else(|| "NULL".into()));
        }
        for (_, source) in &table.columns {
            let value = match source {
                RelColumnSource::Text => Some(crate::loader::direct_text(doc, node)),
                RelColumnSource::Attribute(a) => doc.attribute(node, a).map(str::to_string),
                RelColumnSource::SimpleChild(c) => doc
                    .first_child_named(node, c)
                    .map(|child| crate::loader::direct_text(doc, child)),
            };
            values.push(value.map(|v| q(&v)).unwrap_or_else(|| "NULL".into()));
        }
        out.push(format!("INSERT INTO {} VALUES ({})", table.name, values.join(", ")));
        // Recurse into complex and set-valued children.
        for child in doc.child_elements(node) {
            let child_name = doc.name(child).as_raw();
            let child_mapping = schema
                .mapping(&child_name)
                .ok_or_else(|| MappingError::UndeclaredElement(child_name.clone()))?;
            let field = mapping.field_for_child(&child_name);
            let as_column =
                matches!(field.map(|f| &f.kind), Some(FieldKind::Scalar(_)))
                    && child_mapping.object_type.is_none();
            if as_column {
                continue; // already inlined
            }
            if child_mapping.object_type.is_some() {
                shred(schema, rel, doc, child, Some(my_id), next_id, out)?;
            } else {
                // Set-valued simple child → leaf list table.
                let list = rel.leaf_list_for(&child_name).ok_or_else(|| {
                    MappingError::Unsupported(format!("no list table for <{child_name}>"))
                })?;
                *next_id += 1;
                out.push(format!(
                    "INSERT INTO {} VALUES ({}, {}, {})",
                    list.name,
                    *next_id,
                    my_id,
                    q(&crate::loader::direct_text(doc, child)),
                ));
            }
        }
        Ok(())
    } else {
        Err(MappingError::Unsupported(format!(
            "<{element}> cannot be shredded as a row (simple element)"
        )))
    }
}

/// Generate the §6.3 `CREATE VIEW OView_… AS SELECT Type_…(…) AS <Root>
/// FROM …` statement over the relational schema.
pub fn object_view_script(
    schema: &MappedSchema,
    rel: &RelationalSchema,
) -> Result<String, MappingError> {
    let mut gen = ViewGen { schema, rel, next_alias: 0 };
    let root_table = rel.table_for(&schema.root_element).ok_or_else(|| {
        MappingError::Unsupported("no relational table for the root".into())
    })?;
    let alias = gen.fresh();
    let expr = gen.constructor(&schema.root_element, &alias)?;
    let view_name = format!("OView_{}", crate::naming::sanitize(&schema.root_element));
    Ok(format!(
        "CREATE VIEW {view_name} AS SELECT {expr} AS {} FROM {} {alias}",
        crate::naming::sanitize(&schema.root_element),
        root_table.name,
    ))
}

struct ViewGen<'a> {
    schema: &'a MappedSchema,
    rel: &'a RelationalSchema,
    next_alias: u32,
}

impl<'a> ViewGen<'a> {
    fn fresh(&mut self) -> String {
        self.next_alias += 1;
        format!("v{}", self.next_alias)
    }

    /// `Type_X(arg, …)` with nested constructors and MULTISETs, evaluated
    /// relative to `alias` (a row of the element's relational table).
    fn constructor(&mut self, element: &str, alias: &str) -> Result<String, MappingError> {
        let mapping = self
            .schema
            .mapping(element)
            .ok_or_else(|| MappingError::UndeclaredElement(element.to_string()))?;
        let type_name = mapping
            .object_type
            .clone()
            .ok_or_else(|| MappingError::Unsupported(format!("<{element}> has no object type")))?;
        let table = self.rel.table_for(element).ok_or_else(|| {
            MappingError::Unsupported(format!("no relational table for <{element}>"))
        })?;
        let mut args = Vec::new();
        for field in &mapping.fields {
            match (&field.source, &field.kind) {
                (FieldSource::SyntheticId, _) => args.push(format!("{alias}.{}", table.id_column)),
                (FieldSource::Text, _) | (FieldSource::XmlAttribute(_), _) => {
                    args.push(format!("{alias}.{}", field.db_name))
                }
                (FieldSource::AttrList, FieldKind::Object(attr_list_type)) => {
                    let attr_list = mapping.attr_list.as_ref().ok_or_else(|| {
                        MappingError::MalformedMapping(format!(
                            "<{}> has an attrList field but no attribute-list mapping",
                            mapping.element
                        ))
                    })?;
                    let inner: Vec<String> = attr_list
                        .fields
                        .iter()
                        .map(|f| format!("{alias}.{}", f.db_name))
                        .collect();
                    args.push(format!("{attr_list_type}({})", inner.join(", ")));
                }
                (FieldSource::ChildElement(_), FieldKind::Scalar(_)) => {
                    args.push(format!("{alias}.{}", field.db_name))
                }
                (FieldSource::ChildElement(c), FieldKind::ScalarCollection(collection)) => {
                    // §6.3's closing example: CAST(MULTISET(SELECT …)).
                    let list = self.rel.leaf_list_for(c).ok_or_else(|| {
                        MappingError::Unsupported(format!("no list table for <{c}>"))
                    })?;
                    let inner_alias = self.fresh();
                    let text_col = &list.columns[0].0;
                    args.push(format!(
                        "CAST(MULTISET(SELECT {inner_alias}.{text_col} FROM {} {inner_alias} \
                         WHERE {alias}.{} = {inner_alias}.IDParent) AS {collection})",
                        list.name, table.id_column,
                    ));
                }
                (FieldSource::ChildElement(c), FieldKind::Object(_)) => {
                    // Single-valued complex child: correlated scalar subquery
                    // building the nested object.
                    let inner_alias = self.fresh();
                    let child_table = self.rel.table_for(c).ok_or_else(|| {
                        MappingError::Unsupported(format!("no relational table for <{c}>"))
                    })?;
                    let inner_expr = self.constructor(c, &inner_alias)?;
                    args.push(format!(
                        "(SELECT {inner_expr} FROM {} {inner_alias} \
                         WHERE {inner_alias}.IDParent = {alias}.{})",
                        child_table.name, table.id_column,
                    ));
                }
                (
                    FieldSource::ChildElement(c),
                    FieldKind::ObjectCollection { collection, .. },
                ) => {
                    let inner_alias = self.fresh();
                    let child_table = self.rel.table_for(c).ok_or_else(|| {
                        MappingError::Unsupported(format!("no relational table for <{c}>"))
                    })?;
                    let inner_expr = self.constructor(c, &inner_alias)?;
                    args.push(format!(
                        "CAST(MULTISET(SELECT {inner_expr} FROM {} {inner_alias} \
                         WHERE {inner_alias}.IDParent = {alias}.{}) AS {collection})",
                        child_table.name, table.id_column,
                    ));
                }
                (FieldSource::ChildElement(c), _) => {
                    return Err(MappingError::Unsupported(format!(
                        "object views do not support REF-mapped child <{c}> (recursive schemas)"
                    )))
                }
                (FieldSource::ParentRef(_), _) => {
                    return Err(MappingError::Unsupported(
                        "object views require an Oracle 9 style mapping".into(),
                    ))
                }
                (FieldSource::AttrList, _) => unreachable!("attrList fields are Object-kinded"),
            }
        }
        Ok(format!("{type_name}({})", args.join(", ")))
    }
}

// ------------------------------------------------------- reconstruction --

/// Rebuild the document stored by [`relational_load_script`]. Like the
/// object-relational retriever and the `xmlord-shred` reconstructors, one
/// shared assembly sits on two access paths: naive (`bulk = false`) rescans
/// each child table per parent row, bulk probes a fresh `IDParent` index or
/// builds one hash multimap per table. The loader assigns row IDs in a
/// pre-order walk, so ascending ID within one parent is document order;
/// content-model order across different child names is restored with the
/// retriever's reorder pass.
pub fn reconstruct_relational(
    schema: &MappedSchema,
    rel: &RelationalSchema,
    storage: &Storage,
    bulk: bool,
) -> Result<Document, MappingError> {
    let root_table = rel.table_for(&schema.root_element).ok_or_else(|| {
        MappingError::Unsupported("no relational table for the root".into())
    })?;
    let mut ctx = RelRetriever { schema, rel, storage, bulk, readers: BTreeMap::new() };
    let root_row: &[Value] = {
        let reader = ctx.reader(root_table)?;
        let row = reader
            .data
            .rows
            .first()
            .ok_or_else(|| MappingError::NoSuchDocument(schema.root_element.clone()))?;
        &row.values
    };
    let mut doc = Document::new();
    let node = ctx.build(&mut doc, &schema.root_element, root_row)?;
    doc.set_root(node);
    Ok(doc)
}

/// Rows of one `Rel*` table addressed by their `IDParent` column.
struct RelReader<'a> {
    storage: &'a Storage,
    table: Ident,
    data: &'a TableData,
    bulk: bool,
    map: Option<HashMap<u64, Vec<usize>>>,
}

const REL_ID: usize = 0;
const REL_PARENT: usize = 1;

fn rel_id(v: &Value) -> Option<u64> {
    v.as_num().map(|n| n as u64)
}

impl<'a> RelReader<'a> {
    fn open(storage: &'a Storage, name: &str, bulk: bool) -> Result<RelReader<'a>, MappingError> {
        let table = Ident::internal(name);
        let data = storage.table(&table).ok_or_else(|| {
            MappingError::InconsistentMapping(format!("relational table {name} is missing"))
        })?;
        Ok(RelReader { storage, table, data, bulk, map: None })
    }

    /// Row slots with `IDParent = parent`, in heap order (= ascending ID,
    /// the loader's pre-order).
    fn child_slots(&mut self, parent: u64) -> Vec<usize> {
        if !self.bulk {
            return self
                .data
                .rows
                .iter()
                .enumerate()
                .filter(|(_, r)| r.values.get(REL_PARENT).and_then(rel_id) == Some(parent))
                .map(|(slot, _)| slot)
                .collect();
        }
        if let Some(index) = self.storage.find_fresh_index(&self.table, &[REL_PARENT]) {
            let key = Value::Num(parent as f64);
            let slots = key_hash(&[&key])
                .and_then(|h| self.storage.index_probe(index, h))
                .unwrap_or(&[]);
            // Hash prefilter: re-verify each candidate slot.
            return slots
                .iter()
                .copied()
                .filter(|&slot| {
                    self.data.rows[slot].values.get(REL_PARENT).and_then(rel_id) == Some(parent)
                })
                .collect();
        }
        let data = self.data;
        let map = self.map.get_or_insert_with(|| {
            let mut map: HashMap<u64, Vec<usize>> = HashMap::new();
            for (slot, row) in data.rows.iter().enumerate() {
                if let Some(p) = row.values.get(REL_PARENT).and_then(rel_id) {
                    map.entry(p).or_default().push(slot);
                }
            }
            map
        });
        map.get(&parent).cloned().unwrap_or_default()
    }
}

struct RelRetriever<'a> {
    schema: &'a MappedSchema,
    rel: &'a RelationalSchema,
    storage: &'a Storage,
    bulk: bool,
    readers: BTreeMap<String, RelReader<'a>>,
}

impl<'a> RelRetriever<'a> {
    fn reader(&mut self, table: &RelTable) -> Result<&mut RelReader<'a>, MappingError> {
        if !self.readers.contains_key(&table.name) {
            let reader = RelReader::open(self.storage, &table.name, self.bulk)?;
            self.readers.insert(table.name.clone(), reader);
        }
        Ok(self.readers.get_mut(&table.name).expect("just inserted"))
    }

    /// Rebuild one table row as an element subtree: inlined columns first
    /// (text, attributes, scalar children in field order), then complex and
    /// list children from their own tables, then the reorder pass.
    fn build(
        &mut self,
        doc: &mut Document,
        element: &str,
        row: &'a [Value],
    ) -> Result<NodeId, MappingError> {
        let mapping = self
            .schema
            .mapping(element)
            .ok_or_else(|| MappingError::UndeclaredElement(element.to_string()))?;
        let table = self.rel.table_for(element).ok_or_else(|| {
            MappingError::Unsupported(format!("no relational table for <{element}>"))
        })?;
        let my_id = row.get(REL_ID).and_then(rel_id).ok_or_else(|| {
            MappingError::InconsistentMapping(format!("{} row without an ID", table.name))
        })?;
        let node = doc.create_element(QName::local(&crate::naming::sanitize(element)));
        let base = 1 + usize::from(table.parent_column.is_some());
        for (i, (_, source)) in table.columns.iter().enumerate() {
            let value = row.get(base + i).and_then(|v| v.as_str());
            match (source, value) {
                (_, None) => {}
                (RelColumnSource::Text, Some(text)) => {
                    if !text.is_empty() {
                        let t = doc.create_text(text);
                        doc.append_child(node, t);
                    }
                }
                (RelColumnSource::Attribute(a), Some(v)) => {
                    doc.set_attribute(node, QName::local(a), v);
                }
                (RelColumnSource::SimpleChild(c), Some(text)) => {
                    let child =
                        doc.create_element(QName::local(&crate::naming::sanitize(c)));
                    if !text.is_empty() {
                        let t = doc.create_text(text);
                        doc.append_child(child, t);
                    }
                    doc.append_child(node, child);
                }
            }
        }
        // Complex and set-valued children live in their own tables.
        for field in &mapping.fields {
            let FieldSource::ChildElement(child_name) = &field.source else { continue };
            match &field.kind {
                FieldKind::Scalar(_) => {} // inlined column, handled above
                FieldKind::ScalarCollection(_) => {
                    let list = self.rel.leaf_list_for(child_name).ok_or_else(|| {
                        MappingError::Unsupported(format!("no list table for <{child_name}>"))
                    })?;
                    let list = list.clone();
                    let (slots, data) = {
                        let reader = self.reader(&list)?;
                        (reader.child_slots(my_id), reader.data)
                    };
                    for slot in slots {
                        let text =
                            data.rows[slot].values.get(REL_PARENT + 1).and_then(|v| v.as_str());
                        let child = doc.create_element(QName::local(
                            &crate::naming::sanitize(child_name),
                        ));
                        if let Some(text) = text {
                            if !text.is_empty() {
                                let t = doc.create_text(text);
                                doc.append_child(child, t);
                            }
                        }
                        doc.append_child(node, child);
                    }
                }
                _ => {
                    // Object, ObjectCollection, Ref, RefCollection: the
                    // loader shreds them all as rows keyed by IDParent.
                    let child_table = self.rel.table_for(child_name).ok_or_else(|| {
                        MappingError::Unsupported(format!(
                            "no relational table for <{child_name}>"
                        ))
                    })?;
                    let child_table = child_table.clone();
                    let (slots, data) = {
                        let reader = self.reader(&child_table)?;
                        (reader.child_slots(my_id), reader.data)
                    };
                    let child_name = child_name.clone();
                    for slot in slots {
                        let values: &'a [Value] = &data.rows[slot].values;
                        let child = self.build(doc, &child_name, values)?;
                        doc.append_child(node, child);
                    }
                }
            }
        }
        crate::retriever::reorder_children(doc, node, &mapping.child_order);
        Ok(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddlgen::types_script;
    use crate::model::MappingOptions;
    use crate::schemagen::{generate_schema, IdrefTargets};
    use xmlord_dtd::parse_dtd;
    use xmlord_ordb::{Database, DbMode, Value};

    const UNIVERSITY_DTD: &str = r#"
<!ELEMENT University (StudyCourse,Student*)>
<!ELEMENT Student (LName,FName,Course*)>
<!ATTLIST Student StudNr CDATA #REQUIRED>
<!ELEMENT Course (Name,Professor*,CreditPts?)>
<!ELEMENT Professor (PName,Subject+,Dept)>
<!ELEMENT LName (#PCDATA)> <!ELEMENT FName (#PCDATA)>
<!ELEMENT Name (#PCDATA)> <!ELEMENT PName (#PCDATA)>
<!ELEMENT Subject (#PCDATA)> <!ELEMENT Dept (#PCDATA)>
<!ELEMENT StudyCourse (#PCDATA)> <!ELEMENT CreditPts (#PCDATA)>
"#;

    const XML: &str = "<University><StudyCourse>CS</StudyCourse>\
<Student StudNr=\"1\"><LName>Conrad</LName><FName>M</FName>\
<Course><Name>DBS</Name><Professor><PName>Kudrass</PName>\
<Subject>DBS</Subject><Subject>OS</Subject><Dept>CS</Dept></Professor>\
<CreditPts>4</CreditPts></Course></Student>\
<Student StudNr=\"2\"><LName>Meier</LName><FName>R</FName></Student></University>";

    fn fixture() -> (Database, MappedSchema, RelationalSchema, Vec<String>) {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        let doc = xmlord_xml::parse(XML).unwrap();
        let schema = generate_schema(
            &dtd,
            "University",
            DbMode::Oracle9,
            MappingOptions { with_doc_id: false, ..Default::default() },
            &IdrefTargets::new(),
        )
        .unwrap();
        let rel = relational_schema(&schema);
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&types_script(&schema).unwrap()).unwrap();
        db.execute_script(&relational_ddl(&rel, 4000)).unwrap();
        let inserts = relational_load_script(&schema, &rel, &doc).unwrap();
        for stmt in &inserts {
            db.execute(stmt).unwrap_or_else(|e| panic!("{e}\nSTMT: {stmt}"));
        }
        (db, schema, rel, inserts)
    }

    #[test]
    fn relational_shredding_produces_many_inserts() {
        let (db, _, rel, inserts) = fixture();
        // 1 university + 2 students + 1 course + 1 professor + 2 subjects.
        assert_eq!(inserts.len(), 7, "{inserts:#?}");
        assert!(rel.tables.len() >= 5);
        assert_eq!(db.storage().total_rows(), 7);
    }

    #[test]
    fn relational_tables_hold_the_shredded_data() {
        let (mut db, _, _, _) = fixture();
        assert_eq!(db.row_count("RelStudent"), 2);
        assert_eq!(db.row_count("RelSubject"), 2);
        let rows = db
            .query("SELECT s.attrLName FROM RelStudent s WHERE s.attrStudNr = '1'")
            .unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("Conrad")]]);
    }

    #[test]
    fn object_view_superimposes_the_logical_structure() {
        let (mut db, schema, rel, _) = fixture();
        let view_sql = object_view_script(&schema, &rel).unwrap();
        assert!(view_sql.starts_with("CREATE VIEW OView_University AS SELECT Type_University("));
        assert!(view_sql.contains("CAST(MULTISET(SELECT"), "{view_sql}");
        db.execute(&view_sql).unwrap_or_else(|e| panic!("{e}\n{view_sql}"));
        // Navigate the view column with dot notation, like §6.3 promises.
        let rows = db
            .query("SELECT v.University.attrStudyCourse FROM OView_University v")
            .unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("CS")]]);
        // Collections inside the view work too.
        let rows = db
            .query(
                "SELECT s.attrLName FROM OView_University v, TABLE(v.University.attrStudent) s \
                 WHERE s.attrStudNr = '1'",
            )
            .unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("Conrad")]]);
        // Deep navigation through two MULTISET levels.
        let rows = db
            .query(
                "SELECT p.attrPName FROM OView_University v, TABLE(v.University.attrStudent) s, \
                 TABLE(s.attrCourse) c, TABLE(c.attrProfessor) p",
            )
            .unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("Kudrass")]]);
    }

    #[test]
    fn view_subjects_multiset_collects_per_professor() {
        let (mut db, schema, rel, _) = fixture();
        db.execute(&object_view_script(&schema, &rel).unwrap()).unwrap();
        let rows = db
            .query(
                "SELECT x.COLUMN_VALUE FROM OView_University v, TABLE(v.University.attrStudent) s, \
                 TABLE(s.attrCourse) c, TABLE(c.attrProfessor) p, TABLE(p.attrSubject) x",
            )
            .unwrap();
        assert_eq!(rows.rows.len(), 2);
    }

    #[test]
    fn relational_reconstruction_round_trips_both_paths() {
        use xmlord_xml::serializer::{serialize, SerializeOptions};
        let (db, schema, rel, _) = fixture();
        let canonical =
            serialize(&xmlord_xml::parse(XML).unwrap(), &SerializeOptions::compact());
        let storage = db.storage();
        for bulk in [false, true] {
            let restored = reconstruct_relational(&schema, &rel, &storage, bulk).unwrap();
            assert_eq!(
                serialize(&restored, &SerializeOptions::compact()),
                canonical,
                "bulk={bulk}"
            );
        }
    }

    #[test]
    fn relational_reconstruction_uses_parent_indexes_when_present() {
        use xmlord_xml::serializer::{serialize, SerializeOptions};
        let (mut db, schema, rel, _) = fixture();
        for (n, table) in rel.tables.iter().enumerate() {
            if table.parent_column.is_some() {
                db.execute(&format!(
                    "CREATE INDEX IxRel{n:02} ON {} (IDParent)",
                    table.name
                ))
                .unwrap();
            }
        }
        let canonical =
            serialize(&xmlord_xml::parse(XML).unwrap(), &SerializeOptions::compact());
        let storage = db.storage();
        let restored = reconstruct_relational(&schema, &rel, &storage, true).unwrap();
        assert_eq!(serialize(&restored, &SerializeOptions::compact()), canonical);
    }

    #[test]
    fn recursive_schemas_are_rejected_for_views() {
        let dtd = parse_dtd(
            r#"<!ELEMENT Professor (PName,Dept)>
               <!ELEMENT Dept (DName,Professor*)>
               <!ELEMENT PName (#PCDATA)> <!ELEMENT DName (#PCDATA)>"#,
        )
        .unwrap();
        let schema = generate_schema(
            &dtd,
            "Professor",
            DbMode::Oracle9,
            MappingOptions { with_doc_id: false, ..Default::default() },
            &IdrefTargets::new(),
        )
        .unwrap();
        let rel = relational_schema(&schema);
        assert!(matches!(
            object_view_script(&schema, &rel),
            Err(MappingError::Unsupported(_))
        ));
    }
}

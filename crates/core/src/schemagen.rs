//! The schema-generation algorithm of the paper's Fig. 2.
//!
//! Input: the parsed DTD (the "DTD DOM tree" precondition of §3) plus the
//! target mode. Output: a [`MappedSchema`] covering every case of the
//! decision tree:
//!
//! * **simple elements** (§4.1) → `VARCHAR(4000)` attributes of the parent's
//!   object type;
//! * **complex elements** (§4.1) → one object type per element type,
//!   aggregated into the parent ("the aggregation of SQL object types
//!   enables an XML document of any nesting depth to be mapped");
//! * **iteration** `*`/`+` (§4.2) → named collection types; under
//!   [`DbMode::Oracle8`] set-valued *complex* subelements instead become
//!   object tables with a REF attribute pointing at the parent plus a
//!   synthetic unique ID;
//! * **optionality** `?`/`*`/`#IMPLIED` (§4.3) → nullable columns; mandatory
//!   content → NOT NULL where Oracle allows it (object tables only — the
//!   rest lands in [`MappedSchema::unenforced_not_null`]);
//! * **attributes** (§4.4) → inlined `attr…` columns (single attribute) or
//!   a `TypeAttrL_…` object (attribute lists), `#REQUIRED` → NOT NULL,
//!   ID/IDREF → object tables + REF columns when document knowledge is
//!   available;
//! * **recursion** (§6.2) → cycle-breaking REF / nested-table-of-REF fields
//!   with forward type declarations.

use std::collections::{BTreeMap, BTreeSet};

use xmlord_dtd::ast::{ContentParticle, ContentSpec, Dtd};
use xmlord_dtd::graph::ElementGraph;
use xmlord_ordb::DbMode;

use crate::error::MappingError;
use crate::model::{
    AttrFieldMapping, AttrListMapping, CollectionStyle, ElementMapping, FieldKind, FieldMapping,
    FieldSource, MappedSchema, MappingOptions, ScalarType, TableRootReason, TextStorage,
    UnenforcedNotNull,
};
use crate::naming::{NameGenerator, NameKind};

/// Map of `(referencing element, attribute name)` → target element name,
/// used to type IDREF attributes (§4.4: "This kind of information cannot be
/// captured from the DTD, rather from the XML document").
pub type IdrefTargets = BTreeMap<(String, String), String>;

/// Aggregated occurrence of a child name within one content model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChildCardinality {
    pub set_valued: bool,
    pub optional: bool,
}

/// Generate the object-relational schema for `dtd` rooted at `root`.
pub fn generate_schema(
    dtd: &Dtd,
    root: &str,
    mode: DbMode,
    options: MappingOptions,
    idref_targets: &IdrefTargets,
) -> Result<MappedSchema, MappingError> {
    if dtd.element(root).is_none() {
        return Err(MappingError::RootNotDeclared(root.to_string()));
    }
    let graph = ElementGraph::build(dtd);

    // Reachable elements (we only map what the document type can contain).
    let reachable = reachable_from(&graph, root);
    for element in &reachable {
        if dtd.element(element).is_none() {
            return Err(MappingError::UndeclaredElement(element.clone()));
        }
    }

    // Per-(parent,child) cardinalities.
    let mut cardinalities: BTreeMap<(String, String), ChildCardinality> = BTreeMap::new();
    for parent in &reachable {
        let decl = dtd.element(parent).unwrap();
        for (child, card) in child_cardinalities(&decl.content) {
            cardinalities.insert((parent.clone(), child), card);
        }
    }

    // Decide which elements are table-rooted and why.
    let back_edges: BTreeSet<(String, String)> = graph
        .back_edges_from(Some(root))
        .into_iter()
        .filter(|(p, c)| reachable.contains(p) && reachable.contains(c))
        .collect();
    let mut table_rooted: BTreeMap<String, TableRootReason> = BTreeMap::new();
    table_rooted.insert(root.to_string(), TableRootReason::Root);
    for (_, target) in &back_edges {
        table_rooted.entry(target.clone()).or_insert(TableRootReason::Recursion);
    }
    // Oracle 8: set-valued complex children become tables; their parents
    // must be tables too (REF targets). Children are classified first so a
    // table that is both gets the more specific reason.
    let mut oracle8_inverted: BTreeSet<(String, String)> = BTreeSet::new();
    if mode == DbMode::Oracle8 {
        for ((parent, child), card) in &cardinalities {
            if card.set_valued && element_has_object_type(dtd, child, &table_rooted) {
                oracle8_inverted.insert((parent.clone(), child.clone()));
                table_rooted
                    .entry(child.clone())
                    .or_insert(TableRootReason::Oracle8SetValuedComplex);
            }
        }
        for (parent, _) in &oracle8_inverted {
            table_rooted
                .entry(parent.clone())
                .or_insert(TableRootReason::Oracle8RefTarget);
        }
    }
    // ID targets (when enabled and known).
    if options.map_idrefs {
        for target in idref_targets.values() {
            if reachable.contains(target) {
                table_rooted.entry(target.clone()).or_insert(TableRootReason::IdTarget);
            }
        }
    }

    // Creation order: children before parents, restricted to reachable.
    let creation_order: Vec<String> = graph
        .bottom_up_order_from(Some(root))
        .into_iter()
        .filter(|e| reachable.contains(e))
        .collect();
    let forward_declared: Vec<String> = {
        let targets: BTreeSet<&String> = back_edges.iter().map(|(_, c)| c).collect();
        creation_order.iter().filter(|e| targets.contains(e)).cloned().collect()
    };

    // Pass 1: allocate all global names (types, collections, tables) so
    // parents can reference children even when uniquification renamed them.
    let mut names = match &options.schema_id {
        Some(id) => NameGenerator::with_schema_id(id),
        None => NameGenerator::new(),
    };
    let mut assigned: BTreeMap<String, AssignedNames> = BTreeMap::new();
    for element in &creation_order {
        let needs_type = element_has_object_type(dtd, element, &table_rooted);
        let attrs = dtd.attributes_of(element);
        let attr_list_type = if attrs.len() > 1 {
            Some(names.global(NameKind::AttrListType, element))
        } else {
            None
        };
        let object_type =
            if needs_type { Some(names.global(NameKind::ObjectType, element)) } else { None };
        let used_set_valued = cardinalities.iter().any(|((p, c), card)| {
            c == element
                && card.set_valued
                && !oracle8_inverted.contains(&(p.clone(), c.clone()))
        });
        let rooted_here = table_rooted.contains_key(element);
        let collection_type = if used_set_valued && !rooted_here {
            Some(match options.collection_style {
                CollectionStyle::Varray => names.global(NameKind::VarrayType, element),
                CollectionStyle::NestedTable => {
                    names.global(NameKind::ObjectType, &format!("Tab{element}"))
                }
            })
        } else {
            None
        };
        let ref_collection_type = if used_set_valued && rooted_here {
            Some(names.global(NameKind::Table, &format!("Ref{element}")))
        } else {
            None
        };
        let table = if rooted_here {
            Some(names.global(NameKind::Table, element))
        } else {
            None
        };
        assigned.insert(
            element.clone(),
            AssignedNames { object_type, attr_list_type, collection_type, ref_collection_type, table },
        );
    }

    // Pass 2: build the field lists.
    let mut elements: BTreeMap<String, ElementMapping> = BTreeMap::new();
    let mut unenforced: Vec<UnenforcedNotNull> = Vec::new();
    for element in &creation_order {
        let mapping = build_element_mapping(
            dtd,
            element,
            root,
            mode,
            &options,
            idref_targets,
            &cardinalities,
            &table_rooted,
            &oracle8_inverted,
            &assigned,
            &names,
        )?;
        elements.insert(element.clone(), mapping);
    }

    // §4.3 drawback bookkeeping: mandatory fields of *embedded* object types
    // cannot carry NOT NULL.
    for mapping in elements.values() {
        if mapping.table_rooted.is_none() {
            if let Some(type_name) = &mapping.object_type {
                for field in &mapping.fields {
                    if !field.optional && !field.set_valued {
                        unenforced.push(UnenforcedNotNull {
                            type_name: type_name.clone(),
                            field: field.db_name.clone(),
                            reason: "mandatory content inside an embedded object type \
                                     (constraints can only be defined on tables, §4.3)"
                                .to_string(),
                        });
                    }
                }
            }
        }
        for field in &mapping.fields {
            if field.set_valued && !field.optional {
                unenforced.push(UnenforcedNotNull {
                    type_name: mapping
                        .object_type
                        .clone()
                        .unwrap_or_else(|| mapping.element.clone()),
                    field: field.db_name.clone(),
                    reason: "'+' content maps to a collection; \"set-valued attributes \
                             cannot be defined as NOT NULL altogether\" (§4.3)"
                        .to_string(),
                });
            }
        }
    }

    let root_mapping = elements.get(root).expect("root was mapped");
    let root_table = root_mapping.table.clone().expect("root is table-rooted");
    let doc_id_column = root_mapping.synthetic_id.clone();

    Ok(MappedSchema {
        mode,
        options,
        root_element: root.to_string(),
        elements,
        creation_order,
        forward_declared,
        root_table,
        doc_id_column,
        unenforced_not_null: unenforced,
    })
}

/// Does this element get its own object type? (Complex content, mixed
/// content, any XML attributes, or forced by table-rooting.)
fn element_has_object_type(
    dtd: &Dtd,
    element: &str,
    table_rooted: &BTreeMap<String, TableRootReason>,
) -> bool {
    if table_rooted.contains_key(element) {
        return true;
    }
    let Some(decl) = dtd.element(element) else { return false };
    decl.content.is_complex() || !dtd.attributes_of(element).is_empty()
}

fn reachable_from(graph: &ElementGraph, root: &str) -> BTreeSet<String> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut stack = vec![root.to_string()];
    while let Some(cur) = stack.pop() {
        if seen.insert(cur.clone()) {
            for child in graph.children_of(&cur) {
                stack.push(child.clone());
            }
        }
    }
    seen
}

/// Merge every mention of each child name in a content model into one
/// aggregated cardinality: a name mentioned twice (or under `*`/`+`) is
/// set-valued; a name is optional only if *every* way the model can be
/// satisfied may omit… conservatively: if all its mentions are optional.
pub fn child_cardinalities(content: &ContentSpec) -> Vec<(String, ChildCardinality)> {
    let mut mentions: Vec<(String, ChildCardinality)> = Vec::new();
    match content {
        ContentSpec::Children(cp) => collect_mentions(cp, false, false, &mut mentions),
        ContentSpec::Mixed(names) => {
            for name in names {
                mentions
                    .push((name.clone(), ChildCardinality { set_valued: true, optional: true }));
            }
        }
        _ => {}
    }
    let mut merged: Vec<(String, ChildCardinality)> = Vec::new();
    for (name, card) in mentions {
        match merged.iter_mut().find(|(n, _)| *n == name) {
            Some((_, existing)) => {
                // Second mention ⇒ can occur more than once.
                existing.set_valued = true;
                existing.optional = existing.optional && card.optional;
            }
            None => merged.push((name, card)),
        }
    }
    merged
}

fn collect_mentions(
    cp: &ContentParticle,
    outer_set: bool,
    outer_opt: bool,
    out: &mut Vec<(String, ChildCardinality)>,
) {
    match cp {
        ContentParticle::Name(name, occ) => out.push((
            name.clone(),
            ChildCardinality {
                set_valued: outer_set || occ.is_set_valued(),
                optional: outer_opt || occ.is_optional(),
            },
        )),
        ContentParticle::Seq(children, occ) => {
            let set = outer_set || occ.is_set_valued();
            let opt = outer_opt || occ.is_optional();
            for child in children {
                collect_mentions(child, set, opt, out);
            }
        }
        ContentParticle::Choice(children, occ) => {
            let set = outer_set || occ.is_set_valued();
            // Members of a choice are individually optional.
            for child in children {
                collect_mentions(child, set, true, out);
            }
        }
    }
}

/// Scalar type of an element's text: XML Schema hint, else the configured
/// default. In Oracle 8 mode CLOB never lands inside a collection ("the
/// element type must not be … a large object type", §2.2), so collection
/// elements fall back to VARCHAR there.
fn scalar_for_element(options: &MappingOptions, element: &str) -> ScalarType {
    if let Some(hint) = options.type_hints.elements.get(element) {
        return hint.clone();
    }
    match options.text_storage {
        TextStorage::Varchar => ScalarType::Varchar(options.varchar_len),
        TextStorage::Clob => ScalarType::Clob,
    }
}

fn collection_scalar_for_element(
    options: &MappingOptions,
    mode: xmlord_ordb::DbMode,
    element: &str,
) -> ScalarType {
    let scalar = scalar_for_element(options, element);
    if scalar == ScalarType::Clob && !mode.allows_nested_collections() {
        ScalarType::Varchar(options.varchar_len)
    } else {
        scalar
    }
}

fn scalar_for_attribute(options: &MappingOptions, element: &str, attribute: &str) -> ScalarType {
    options
        .type_hints
        .attributes
        .get(&(element.to_string(), attribute.to_string()))
        .cloned()
        .unwrap_or(ScalarType::Varchar(options.varchar_len))
}

#[derive(Debug, Clone, Default)]
struct AssignedNames {
    object_type: Option<String>,
    attr_list_type: Option<String>,
    collection_type: Option<String>,
    ref_collection_type: Option<String>,
    table: Option<String>,
}

#[allow(clippy::too_many_arguments)]
fn build_element_mapping(
    dtd: &Dtd,
    element: &str,
    root: &str,
    mode: xmlord_ordb::DbMode,
    options: &MappingOptions,
    idref_targets: &IdrefTargets,
    cardinalities: &BTreeMap<(String, String), ChildCardinality>,
    table_rooted: &BTreeMap<String, TableRootReason>,
    oracle8_inverted: &BTreeSet<(String, String)>,
    assigned: &BTreeMap<String, AssignedNames>,
    names: &NameGenerator,
) -> Result<ElementMapping, MappingError> {
    let decl = dtd.element(element).expect("caller checked declaration");
    let attrs = dtd.attributes_of(element);
    let simple = decl.content.is_simple();
    let mixed = decl.content.is_mixed_with_elements();
    let rooted = table_rooted.get(element).copied();
    let own = &assigned[element];

    let mut scope: BTreeSet<String> = BTreeSet::new();
    let mut fields: Vec<FieldMapping> = Vec::new();

    // -- XML attributes (§4.4): inline a single attribute, build a
    //    TypeAttrL_ object for lists.
    let mut attr_list = None;
    if attrs.len() == 1 {
        let def = &attrs[0];
        let db_name = names.scoped(NameKind::AttrFromAttribute, &def.name, &mut scope);
        let idref_target = resolve_idref_target(options, idref_targets, element, &def.name);
        let kind = match &idref_target {
            Some(target) => FieldKind::Ref(type_name_of(assigned, target)),
            None => FieldKind::Scalar(scalar_for_attribute(options, element, &def.name)),
        };
        fields.push(FieldMapping {
            db_name,
            source: FieldSource::XmlAttribute(def.name.clone()),
            kind,
            set_valued: false,
            optional: !def.default.is_required(),
        });
    } else if attrs.len() > 1 {
        let type_name = own.attr_list_type.clone().expect("allocated in pass 1");
        let mut list_scope: BTreeSet<String> = BTreeSet::new();
        let mut list_fields = Vec::new();
        for def in attrs {
            let db_name = names.scoped(NameKind::AttrFromAttribute, &def.name, &mut list_scope);
            list_fields.push(AttrFieldMapping {
                db_name,
                xml_attribute: def.name.clone(),
                required: def.default.is_required(),
                scalar_type: scalar_for_attribute(options, element, &def.name),
                idref_target: resolve_idref_target(options, idref_targets, element, &def.name),
            });
        }
        let field_name = names.scoped(NameKind::AttrList, element, &mut scope);
        fields.push(FieldMapping {
            db_name: field_name,
            source: FieldSource::AttrList,
            kind: FieldKind::Object(type_name.clone()),
            set_valued: false,
            optional: attrs.iter().all(|a| !a.default.is_required()),
        });
        attr_list = Some(AttrListMapping { type_name, fields: list_fields });
    }

    // -- Own text (simple-with-attributes, mixed content, ANY).
    let stores_own_text = (simple && own.object_type.is_some())
        || mixed
        || matches!(decl.content, ContentSpec::Any);
    if stores_own_text {
        let db_name = names.scoped(NameKind::AttrFromElement, element, &mut scope);
        fields.push(FieldMapping {
            db_name,
            source: FieldSource::Text,
            kind: FieldKind::Scalar(scalar_for_element(options, element)),
            set_valued: false,
            optional: true, // text content may be empty
        });
    }

    // -- Children (complex elements, §4.1/§4.2).
    for child in decl.content.child_names() {
        // Oracle 8 inversion: the child's table points back at us; we hold
        // no field (§4.2: the REF attribute "appears … in the object type
        // definition that represents the subelement").
        if oracle8_inverted.contains(&(element.to_string(), child.clone())) {
            continue;
        }
        let card = cardinalities
            .get(&(element.to_string(), child.clone()))
            .copied()
            .unwrap_or(ChildCardinality { set_valued: false, optional: false });
        let db_name = names.scoped(NameKind::AttrFromElement, &child, &mut scope);
        let child_assigned = &assigned[&child];
        let child_rooted = table_rooted.contains_key(&child);
        let kind = if child_rooted {
            let target = child_assigned.object_type.clone().expect("rooted ⇒ typed");
            if card.set_valued {
                FieldKind::RefCollection {
                    collection: child_assigned
                        .ref_collection_type
                        .clone()
                        .expect("allocated in pass 1"),
                    target_type: target,
                }
            } else {
                FieldKind::Ref(target)
            }
        } else if let Some(child_type) = child_assigned.object_type.clone() {
            if card.set_valued {
                FieldKind::ObjectCollection {
                    collection: child_assigned
                        .collection_type
                        .clone()
                        .expect("allocated in pass 1"),
                    element_type: child_type,
                }
            } else {
                FieldKind::Object(child_type)
            }
        } else if card.set_valued {
            FieldKind::ScalarCollection(
                child_assigned.collection_type.clone().expect("allocated in pass 1"),
            )
        } else {
            FieldKind::Scalar(scalar_for_element(options, &child))
        };
        fields.push(FieldMapping {
            db_name,
            source: FieldSource::ChildElement(child.clone()),
            kind,
            set_valued: card.set_valued,
            optional: card.optional,
        });
    }

    // -- Oracle 8 inverted relationships where *this* element is the child:
    //    one nullable REF per parent.
    let mut parent_refs: Vec<&String> = oracle8_inverted
        .iter()
        .filter(|(_, c)| c == element)
        .map(|(p, _)| p)
        .collect();
    parent_refs.sort();
    parent_refs.dedup();
    for parent in parent_refs {
        let db_name =
            names.scoped(NameKind::AttrFromElement, &format!("Ref{parent}"), &mut scope);
        fields.push(FieldMapping {
            db_name,
            source: FieldSource::ParentRef(parent.clone()),
            kind: FieldKind::Ref(type_name_of(assigned, parent)),
            set_valued: false,
            optional: true,
        });
    }

    // -- Synthetic unique id (§4.2) for table-rooted elements (the root only
    //    when multi-document storage is on).
    let mut synthetic_id = None;
    if rooted.is_some() && (element != root || options.with_doc_id) {
        let db_name = names.scoped(NameKind::IdAttr, element, &mut scope);
        fields.push(FieldMapping {
            db_name: db_name.clone(),
            source: FieldSource::SyntheticId,
            kind: FieldKind::Scalar(ScalarType::Varchar(options.varchar_len)),
            set_valued: false,
            optional: true,
        });
        synthetic_id = Some(db_name);
    }

    // An object type must have at least one attribute (e.g. an EMPTY
    // element with no XML attributes that was forced table-rooted): fall
    // back to a text field.
    if own.object_type.is_some() && fields.is_empty() {
        let db_name = names.scoped(NameKind::AttrFromElement, element, &mut scope);
        fields.push(FieldMapping {
            db_name,
            source: FieldSource::Text,
            kind: FieldKind::Scalar(scalar_for_element(options, element)),
            set_valued: false,
            optional: true,
        });
    }

    Ok(ElementMapping {
        element: element.to_string(),
        simple,
        mixed,
        object_type: own.object_type.clone(),
        collection_type: own.collection_type.clone(),
        ref_collection_type: own.ref_collection_type.clone(),
        table: own.table.clone(),
        table_rooted: rooted,
        synthetic_id,
        scalar_type: collection_scalar_for_element(options, mode, element),
        attr_list,
        child_order: decl.content.child_names(),
        fields,
    })
}

fn type_name_of(assigned: &BTreeMap<String, AssignedNames>, element: &str) -> String {
    assigned
        .get(element)
        .and_then(|a| a.object_type.clone())
        .unwrap_or_else(|| format!("Type_{element}"))
}

fn resolve_idref_target(
    options: &MappingOptions,
    idref_targets: &IdrefTargets,
    element: &str,
    attribute: &str,
) -> Option<String> {
    if !options.map_idrefs {
        return None;
    }
    idref_targets.get(&(element.to_string(), attribute.to_string())).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlord_dtd::parse_dtd;

    pub const UNIVERSITY_DTD: &str = r#"
<!ELEMENT University (StudyCourse,Student*)>
<!ELEMENT Student (LName,FName,Course*)>
<!ATTLIST Student StudNr CDATA #REQUIRED>
<!ELEMENT Course (Name,Professor*,CreditPts?)>
<!ELEMENT Professor (PName,Subject+,Dept)>
<!ELEMENT LName (#PCDATA)> <!ELEMENT FName (#PCDATA)>
<!ELEMENT Name (#PCDATA)> <!ELEMENT PName (#PCDATA)>
<!ELEMENT Subject (#PCDATA)> <!ELEMENT Dept (#PCDATA)>
<!ELEMENT StudyCourse (#PCDATA)> <!ELEMENT CreditPts (#PCDATA)>
"#;

    fn uni_schema(mode: DbMode) -> MappedSchema {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        let options = MappingOptions { with_doc_id: false, ..Default::default() };
        generate_schema(&dtd, "University", mode, options, &IdrefTargets::new()).unwrap()
    }

    #[test]
    fn oracle9_university_matches_the_paper_section_4_2() {
        let schema = uni_schema(DbMode::Oracle9);
        // Only the root is a table.
        assert_eq!(schema.generated_table_count(), 1);
        assert_eq!(schema.root_table, "TabUniversity");

        let student = schema.mapping("Student").unwrap();
        assert_eq!(student.object_type.as_deref(), Some("Type_Student"));
        assert_eq!(student.collection_type.as_deref(), Some("TypeVA_Student"));
        // Fields: attrStudNr (inlined single attribute), attrLName,
        // attrFName, attrCourse — exactly the paper's Type_Student.
        let names: Vec<&str> = student.fields.iter().map(|f| f.db_name.as_str()).collect();
        assert_eq!(names, vec!["attrStudNr", "attrLName", "attrFName", "attrCourse"]);
        assert!(!student.fields[0].optional); // #REQUIRED
        assert!(matches!(
            student.field_for_child("Course").unwrap().kind,
            FieldKind::ObjectCollection { ref collection, ref element_type }
                if collection == "TypeVA_Course" && element_type == "Type_Course"
        ));

        let professor = schema.mapping("Professor").unwrap();
        // Subject+ → scalar collection TypeVA_Subject.
        assert!(matches!(
            professor.field_for_child("Subject").unwrap().kind,
            FieldKind::ScalarCollection(ref c) if c == "TypeVA_Subject"
        ));
        let subject_field = professor.field_for_child("Subject").unwrap();
        assert!(subject_field.set_valued && !subject_field.optional); // '+'
        // Dept is simple without attributes → plain VARCHAR field.
        assert!(matches!(
            professor.field_for_child("Dept").unwrap().kind,
            FieldKind::Scalar(_)
        ));

        let course = schema.mapping("Course").unwrap();
        let credit = course.field_for_child("CreditPts").unwrap();
        assert!(credit.optional && !credit.set_valued); // '?'

        // Simple elements without attributes get no object type at all.
        assert!(schema.mapping("LName").unwrap().object_type.is_none());
        assert!(schema.mapping("Subject").unwrap().object_type.is_none());
        // But Subject has a collection wrapper (used set-valued).
        assert_eq!(
            schema.mapping("Subject").unwrap().collection_type.as_deref(),
            Some("TypeVA_Subject")
        );
    }

    #[test]
    fn oracle8_inverts_set_valued_complex_children() {
        let schema = uni_schema(DbMode::Oracle8);
        // Student, Course, Professor are set-valued & complex → tables; their
        // parents too (University is the root anyway).
        let student = schema.mapping("Student").unwrap();
        assert_eq!(
            student.table_rooted,
            Some(TableRootReason::Oracle8SetValuedComplex)
        );
        assert!(student.table.is_some());
        assert!(student.synthetic_id.is_some());
        // Student rows point back at the university.
        assert!(student
            .fields
            .iter()
            .any(|f| matches!(&f.source, FieldSource::ParentRef(p) if p == "University")));
        // The university holds no attrStudent field.
        let uni = schema.mapping("University").unwrap();
        assert!(uni.field_for_child("Student").is_none());
        // Set-valued *simple* children still use collections in Oracle 8.
        let professor = schema.mapping("Professor").unwrap();
        assert!(matches!(
            professor.field_for_child("Subject").unwrap().kind,
            FieldKind::ScalarCollection(_)
        ));
        // Many tables instead of one.
        assert!(schema.generated_table_count() >= 4);
    }

    #[test]
    fn recursion_gets_refs_and_forward_declarations() {
        let dtd = parse_dtd(
            r#"<!ELEMENT Professor (PName,Dept)>
               <!ELEMENT Dept (DName,Professor*)>
               <!ELEMENT PName (#PCDATA)> <!ELEMENT DName (#PCDATA)>"#,
        )
        .unwrap();
        let schema = generate_schema(
            &dtd,
            "Professor",
            DbMode::Oracle9,
            MappingOptions { with_doc_id: false, ..Default::default() },
            &IdrefTargets::new(),
        )
        .unwrap();
        assert_eq!(schema.forward_declared, vec!["Professor".to_string()]);
        let professor = schema.mapping("Professor").unwrap();
        assert!(professor.table.is_some()); // root AND recursion target
        let dept = schema.mapping("Dept").unwrap();
        // Dept holds a nested table of REFs to professors (§6.2).
        assert!(matches!(
            dept.field_for_child("Professor").unwrap().kind,
            FieldKind::RefCollection { ref collection, ref target_type }
                if collection == "TabRefProfessor" && target_type == "Type_Professor"
        ));
        // Dept itself stays embedded in Type_Professor.
        assert!(matches!(
            professor.field_for_child("Dept").unwrap().kind,
            FieldKind::Object(ref t) if t == "Type_Dept"
        ));
    }

    #[test]
    fn attribute_lists_become_typeattrl_objects() {
        // §4.4's example: element B with attributes C and D.
        let dtd = parse_dtd(
            r#"<!ELEMENT A (B)>
               <!ELEMENT B (#PCDATA)>
               <!ATTLIST B C CDATA #IMPLIED D CDATA #IMPLIED>"#,
        )
        .unwrap();
        let schema = generate_schema(
            &dtd,
            "A",
            DbMode::Oracle9,
            MappingOptions { with_doc_id: false, ..Default::default() },
            &IdrefTargets::new(),
        )
        .unwrap();
        let b = schema.mapping("B").unwrap();
        assert_eq!(b.object_type.as_deref(), Some("Type_B"));
        let attr_list = b.attr_list.as_ref().unwrap();
        assert_eq!(attr_list.type_name, "TypeAttrL_B");
        assert_eq!(attr_list.fields.len(), 2);
        assert_eq!(attr_list.fields[0].db_name, "attrC");
        // Type_B: attrB (the text) preceded by attrListB.
        let names: Vec<&str> = b.fields.iter().map(|f| f.db_name.as_str()).collect();
        assert_eq!(names, vec!["attrListB", "attrB"]);
        assert!(b.text_field().is_some());
    }

    #[test]
    fn mixed_content_keeps_a_text_field() {
        let dtd = parse_dtd(
            "<!ELEMENT p (#PCDATA|em)*><!ELEMENT em (#PCDATA)><!ELEMENT d (p)>",
        )
        .unwrap();
        let schema = generate_schema(
            &dtd,
            "d",
            DbMode::Oracle9,
            MappingOptions { with_doc_id: false, ..Default::default() },
            &IdrefTargets::new(),
        )
        .unwrap();
        let p = schema.mapping("p").unwrap();
        assert!(p.mixed);
        assert!(p.text_field().is_some());
        let em = p.field_for_child("em").unwrap();
        assert!(em.set_valued && em.optional);
    }

    #[test]
    fn cardinality_merging_rules() {
        let dtd =
            parse_dtd("<!ELEMENT r (a,b?,a)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>").unwrap();
        let cards = child_cardinalities(&dtd.element("r").unwrap().content);
        let a = cards.iter().find(|(n, _)| n == "a").unwrap().1;
        assert!(a.set_valued, "mentioned twice ⇒ can repeat");
        assert!(!a.optional, "both mentions mandatory");
        let b = cards.iter().find(|(n, _)| n == "b").unwrap().1;
        assert!(!b.set_valued && b.optional);
    }

    #[test]
    fn choice_members_are_optional() {
        let dtd =
            parse_dtd("<!ELEMENT r (a|b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>").unwrap();
        let cards = child_cardinalities(&dtd.element("r").unwrap().content);
        assert!(cards.iter().all(|(_, c)| c.optional && !c.set_valued));
    }

    #[test]
    fn unreachable_elements_are_not_mapped() {
        let dtd = parse_dtd(
            "<!ELEMENT r (a)><!ELEMENT a (#PCDATA)><!ELEMENT orphan (#PCDATA)>",
        )
        .unwrap();
        let schema = generate_schema(
            &dtd,
            "r",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        assert!(schema.mapping("orphan").is_none());
        assert!(schema.mapping("a").is_some());
    }

    #[test]
    fn undeclared_child_is_an_error() {
        let dtd = parse_dtd("<!ELEMENT r (ghost)>").unwrap();
        let err = generate_schema(
            &dtd,
            "r",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap_err();
        assert!(matches!(err, MappingError::UndeclaredElement(ref n) if n == "ghost"));
    }

    #[test]
    fn unknown_root_is_an_error() {
        let dtd = parse_dtd("<!ELEMENT r (#PCDATA)>").unwrap();
        let err = generate_schema(
            &dtd,
            "nope",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap_err();
        assert!(matches!(err, MappingError::RootNotDeclared(_)));
    }

    #[test]
    fn doc_id_column_appears_only_when_requested() {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        let with = generate_schema(
            &dtd,
            "University",
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        assert_eq!(with.doc_id_column.as_deref(), Some("IDUniversity"));
        let without = generate_schema(
            &dtd,
            "University",
            DbMode::Oracle9,
            MappingOptions { with_doc_id: false, ..Default::default() },
            &IdrefTargets::new(),
        )
        .unwrap();
        assert_eq!(without.doc_id_column, None);
    }

    #[test]
    fn idref_attributes_become_ref_fields_when_enabled() {
        let dtd = parse_dtd(
            r#"<!ELEMENT db (person*)>
               <!ELEMENT person (#PCDATA)>
               <!ATTLIST person id ID #REQUIRED boss IDREF #IMPLIED>"#,
        )
        .unwrap();
        let mut targets = IdrefTargets::new();
        targets.insert(("person".into(), "boss".into()), "person".into());
        let schema = generate_schema(
            &dtd,
            "db",
            DbMode::Oracle9,
            MappingOptions { map_idrefs: true, with_doc_id: false, ..Default::default() },
            &targets,
        )
        .unwrap();
        let person = schema.mapping("person").unwrap();
        // ID target → its own object table.
        assert_eq!(person.table_rooted, Some(TableRootReason::IdTarget));
        let attr_list = person.attr_list.as_ref().unwrap();
        let boss = attr_list.fields.iter().find(|f| f.xml_attribute == "boss").unwrap();
        assert_eq!(boss.idref_target.as_deref(), Some("person"));
        // The id attribute itself stays VARCHAR (§4.4).
        let id = attr_list.fields.iter().find(|f| f.xml_attribute == "id").unwrap();
        assert!(id.idref_target.is_none());
    }

    #[test]
    fn unenforced_not_null_records_the_4_3_drawback() {
        let schema = uni_schema(DbMode::Oracle9);
        // Professor.attrPName is mandatory but Type_Professor is embedded.
        assert!(schema.unenforced_not_null.iter().any(|u| {
            u.type_name == "Type_Professor" && u.field == "attrPName"
        }));
        // Subject+ is mandatory but collections can't be NOT NULL.
        assert!(schema
            .unenforced_not_null
            .iter()
            .any(|u| u.field == "attrSubject" && u.reason.contains("set-valued")));
    }

    #[test]
    fn nested_table_style_names_follow_section_2_2() {
        let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
        let schema = generate_schema(
            &dtd,
            "University",
            DbMode::Oracle9,
            MappingOptions {
                collection_style: CollectionStyle::NestedTable,
                with_doc_id: false,
                ..Default::default()
            },
            &IdrefTargets::new(),
        )
        .unwrap();
        assert_eq!(
            schema.mapping("Subject").unwrap().collection_type.as_deref(),
            Some("Type_TabSubject")
        );
    }

    #[test]
    fn multi_parent_elements_share_one_type() {
        // Fig. 3's Address below Professor and Student.
        let dtd = parse_dtd(
            r#"<!ELEMENT Faculty (Professor,Student)>
               <!ELEMENT Professor (PName,Address)>
               <!ELEMENT Address (Street,City)>
               <!ELEMENT Student (Address,SName)>
               <!ELEMENT PName (#PCDATA)> <!ELEMENT SName (#PCDATA)>
               <!ELEMENT Street (#PCDATA)> <!ELEMENT City (#PCDATA)>"#,
        )
        .unwrap();
        let schema = generate_schema(
            &dtd,
            "Faculty",
            DbMode::Oracle9,
            MappingOptions { with_doc_id: false, ..Default::default() },
            &IdrefTargets::new(),
        )
        .unwrap();
        let prof = schema.mapping("Professor").unwrap();
        let student = schema.mapping("Student").unwrap();
        let t1 = match &prof.field_for_child("Address").unwrap().kind {
            FieldKind::Object(t) => t.clone(),
            other => panic!("unexpected {other:?}"),
        };
        let t2 = match &student.field_for_child("Address").unwrap().kind {
            FieldKind::Object(t) => t.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(t1, t2);
        assert_eq!(t1, "Type_Address");
    }
}

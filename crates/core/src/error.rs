//! Errors of the mapping pipeline.

use std::fmt;

use xmlord_dtd::ValidationError;
use xmlord_ordb::DbError;
use xmlord_xml::XmlError;

/// Any failure in the XML→ORDB pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingError {
    /// XML parsing failed (well-formedness).
    Xml(XmlError),
    /// DTD parsing failed.
    Dtd(XmlError),
    /// The document is not valid against its DTD.
    Invalid(Vec<ValidationError>),
    /// The chosen root element has no `<!ELEMENT>` declaration.
    RootNotDeclared(String),
    /// An element is used as a child but never declared.
    UndeclaredElement(String),
    /// The database rejected generated SQL — a bug in generation or a
    /// genuine capacity limit (VARRAY max, VARCHAR length, Oracle 8 rules).
    Db(DbError),
    /// Document shape not representable by the chosen options.
    Unsupported(String),
    /// Requested document does not exist in the database.
    NoSuchDocument(String),
    /// Stored rows disagree with the registered mapping — the schema
    /// changed underneath the data (e.g. a row carries an attribute-list
    /// object but the mapping no longer declares one).
    InconsistentMapping(String),
    /// A [`MappedSchema`](crate::model::MappedSchema) violates a generator
    /// invariant (e.g. a REF collection whose element has no object type) —
    /// it was built by hand or mutated after generation.
    MalformedMapping(String),
    /// Streaming export failed on the output writer ([`std::io::Error`]
    /// rendered to text: the error itself is neither `Clone` nor
    /// `PartialEq`, which this enum is).
    Io(String),
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::Xml(e) => write!(f, "XML parse error: {e}"),
            MappingError::Dtd(e) => write!(f, "DTD parse error: {e}"),
            MappingError::Invalid(errors) => {
                write!(f, "document is invalid against its DTD ({} errors):", errors.len())?;
                for e in errors.iter().take(5) {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
            MappingError::RootNotDeclared(name) => {
                write!(f, "root element <{name}> is not declared in the DTD")
            }
            MappingError::UndeclaredElement(name) => {
                write!(f, "element <{name}> is used as a child but never declared")
            }
            MappingError::Db(e) => write!(f, "database error: {e}"),
            MappingError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            MappingError::NoSuchDocument(id) => write!(f, "no document with id '{id}'"),
            MappingError::InconsistentMapping(msg) => {
                write!(f, "stored data is inconsistent with the mapping: {msg}")
            }
            MappingError::MalformedMapping(msg) => {
                write!(f, "mapped schema violates a generator invariant: {msg}")
            }
            MappingError::Io(msg) => write!(f, "output error: {msg}"),
        }
    }
}

impl std::error::Error for MappingError {}

impl From<DbError> for MappingError {
    fn from(e: DbError) -> Self {
        MappingError::Db(e)
    }
}

impl From<std::io::Error> for MappingError {
    fn from(e: std::io::Error) -> Self {
        MappingError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(MappingError::RootNotDeclared("X".into()).to_string().contains("<X>"));
        assert!(MappingError::NoSuchDocument("D1".into()).to_string().contains("D1"));
    }
}

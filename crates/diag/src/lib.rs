//! Shared diagnostics vocabulary for every analyzer in the workspace.
//!
//! The SQL analyzer (`xmlord-ordb`), the DTD linter (`xmlord-dtd`) and the
//! mapping linter (`xml2ordb`) all report findings as [`Diagnostic`]s over
//! character [`Span`]s and render them with the same rustc-style caret
//! output, so a maplint report reads uniformly whether the finding anchors
//! into a DTD, a mapped schema's DDL, or a SQL script.
//!
//! Offsets are **character** indices into the source text (the SQL lexer
//! iterates `char`s, not bytes), so line/column conversion counts characters
//! too — a multi-byte character advances the column by one, like an editor
//! does. Producers whose cursors track byte offsets (the XML/DTD cursor)
//! must convert before constructing a [`Span`].

use std::fmt;

/// A half-open `[start, end)` character range in some source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end: end.max(start) }
    }

    /// A zero-length span at `offset`.
    pub fn at(offset: usize) -> Span {
        Span { start: offset, end: offset }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// 1-based (line, column) of the span start within `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        line_col(source, self.start)
    }
}

/// 1-based (line, column) of character offset `offset` within `source`.
/// Offsets past the end report the position just after the last character.
pub fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let mut line = 1usize;
    let mut col = 1usize;
    for (i, ch) in source.chars().enumerate() {
        if i >= offset {
            break;
        }
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// The full text of the line (1-based) containing character offset `start`.
pub fn source_line(source: &str, line: usize) -> &str {
    source.split('\n').nth(line.saturating_sub(1)).unwrap_or("").trim_end_matches('\r')
}

/// How certain the analyzer is that execution will fail.
///
/// The severity model *is* the differential guarantee: `Error` is only
/// emitted when the pipeline is guaranteed to reject the input (the check
/// mirrors an eager, data-independent failure), while `Warning` marks
/// suspicious-but-executable constructs (lossy mappings, data-dependent
/// checks, and lints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One analyzer finding, anchored to a character span of the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Stable short code, e.g. `unknown-table`, `check-null-object`.
    pub code: &'static str,
    pub message: String,
    pub span: Span,
}

impl Diagnostic {
    /// 1-based (line, column) of the diagnostic within `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        self.span.line_col(source)
    }

    /// Render rustc-style with the offending source line and a caret
    /// underline:
    ///
    /// ```text
    /// error[unknown-table]: table or view 'TabX' does not exist
    ///   --> script.sql:3:13
    ///    |
    ///  3 | INSERT INTO TabX VALUES (1);
    ///    |             ^^^^
    /// ```
    pub fn render(&self, source: &str, source_name: &str) -> String {
        let (line, col) = self.line_col(source);
        let text = source_line(source, line);
        let gutter = line.to_string().len();
        let pad = " ".repeat(gutter);
        let mut out = String::new();
        out.push_str(&format!("{}[{}]: {}\n", self.severity, self.code, self.message));
        out.push_str(&format!("{pad}--> {source_name}:{line}:{col}\n"));
        out.push_str(&format!("{pad} |\n"));
        out.push_str(&format!("{line} | {text}\n"));
        // Caret run: clamp multi-line spans to the anchor line's end.
        let line_len = text.chars().count();
        let carets = self.span.len().min(line_len.saturating_sub(col - 1)).max(1);
        out.push_str(&format!("{pad} | {}{}\n", " ".repeat(col - 1), "^".repeat(carets)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_counts_chars_not_bytes() {
        // 'ä' is two bytes but one character: column arithmetic is char-based.
        let src = "SELECT ä FROM t\nWHERE x = 1";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 9), (1, 10)); // after "SELECT ä "
        assert_eq!(line_col(src, 16), (2, 1)); // first char of line 2
        assert_eq!(line_col(src, 22), (2, 7));
    }

    #[test]
    fn line_col_past_end_saturates() {
        assert_eq!(line_col("ab", 99), (1, 3));
    }

    #[test]
    fn source_line_extracts_the_right_line() {
        let src = "one\ntwo\r\nthree";
        assert_eq!(source_line(src, 1), "one");
        assert_eq!(source_line(src, 2), "two");
        assert_eq!(source_line(src, 3), "three");
        assert_eq!(source_line(src, 9), "");
    }

    #[test]
    fn span_basics() {
        let s = Span::new(3, 7);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(Span::at(5).is_empty());
        // end < start is clamped rather than panicking.
        assert_eq!(Span::new(7, 3).len(), 0);
    }

    #[test]
    fn severity_orders_error_above_warning() {
        assert!(Severity::Error > Severity::Warning);
        assert_eq!(Severity::Error.to_string(), "error");
        assert_eq!(Severity::Warning.to_string(), "warning");
    }

    #[test]
    fn render_points_at_the_offending_token() {
        let src = "CREATE TABLE T OF A;\nINSERT INTO TabX VALUES (1);";
        let d = Diagnostic {
            severity: Severity::Error,
            code: "unknown-table",
            message: "table or view 'TabX' does not exist".into(),
            span: Span::new(33, 37),
        };
        let rendered = d.render(src, "script.sql");
        assert!(rendered.starts_with("error[unknown-table]:"), "{rendered}");
        assert!(rendered.contains("--> script.sql:2:13"), "{rendered}");
        assert!(rendered.contains("2 | INSERT INTO TabX VALUES (1);"), "{rendered}");
        assert!(rendered.contains("|             ^^^^"), "{rendered}");
    }

    #[test]
    fn render_clamps_statement_spans_to_one_line() {
        let src = "SELECT x\nFROM t";
        let d = Diagnostic {
            severity: Severity::Warning,
            code: "demo",
            message: "whole-statement anchor".into(),
            span: Span::new(0, src.chars().count()),
        };
        let rendered = d.render(src, "s.sql");
        assert!(rendered.contains("1 | SELECT x\n"), "{rendered}");
        assert!(rendered.contains("  | ^^^^^^^^\n"), "{rendered}");
    }
}

//! E11 — §6.3 object views over a relational shredding, spanning crates.

use xml_ordb::dtd::parse_dtd;
use xml_ordb::mapping::ddlgen::types_script;
use xml_ordb::mapping::model::MappingOptions;
use xml_ordb::mapping::schemagen::{generate_schema, IdrefTargets};
use xml_ordb::mapping::views;
use xml_ordb::ordb::{Database, DbMode, Value};

const UNIVERSITY_DTD: &str = include_str!("../assets/university.dtd");
const UNIVERSITY_XML: &str = include_str!("../assets/university.xml");

fn view_fixture() -> Database {
    let dtd = parse_dtd(UNIVERSITY_DTD).unwrap();
    let doc =
        xml_ordb::xml::parse_with_catalog(UNIVERSITY_XML, dtd.entity_catalog()).unwrap();
    let schema = generate_schema(
        &dtd,
        "University",
        DbMode::Oracle9,
        MappingOptions { with_doc_id: false, ..Default::default() },
        &IdrefTargets::new(),
    )
    .unwrap();
    let rel = views::relational_schema(&schema);
    let mut db = Database::new(DbMode::Oracle9);
    db.execute_script(&types_script(&schema).unwrap()).unwrap();
    db.execute_script(&views::relational_ddl(&rel, 4000)).unwrap();
    for stmt in views::relational_load_script(&schema, &rel, &doc).unwrap() {
        db.execute(&stmt).unwrap();
    }
    db.execute(&views::object_view_script(&schema, &rel).unwrap()).unwrap();
    db
}

#[test]
fn view_answers_the_paper_query_over_relational_data() {
    let mut db = view_fixture();
    let rows = db
        .query(
            "SELECT s.attrLName FROM OView_University v, TABLE(v.University.attrStudent) s, \
             TABLE(s.attrCourse) c, TABLE(c.attrProfessor) p WHERE p.attrPName = 'Jaeger'",
        )
        .unwrap();
    assert_eq!(rows.rows, vec![vec![Value::str("Conrad")]]);
}

#[test]
fn multiset_collects_the_subjects_per_professor() {
    let mut db = view_fixture();
    let rows = db
        .query(
            "SELECT p.attrPName, x.COLUMN_VALUE FROM OView_University v, \
             TABLE(v.University.attrStudent) s, TABLE(s.attrCourse) c, \
             TABLE(c.attrProfessor) p, TABLE(p.attrSubject) x \
             WHERE p.attrPName = 'Kudrass'",
        )
        .unwrap();
    let subjects: Vec<String> =
        rows.rows.iter().map(|r| r[1].as_str().unwrap().to_string()).collect();
    assert_eq!(subjects, vec!["Database Systems", "Operat. Systems"]);
}

#[test]
fn view_reflects_relational_updates() {
    // Views are virtual: deleting base rows changes the view's answer.
    let mut db = view_fixture();
    let before = db
        .query("SELECT s.attrLName FROM OView_University v, TABLE(v.University.attrStudent) s")
        .unwrap();
    assert_eq!(before.rows.len(), 2);
    db.execute("DELETE FROM RelStudent WHERE attrLName = 'Meier'").unwrap();
    let after = db
        .query("SELECT s.attrLName FROM OView_University v, TABLE(v.University.attrStudent) s")
        .unwrap();
    assert_eq!(after.rows, vec![vec![Value::str("Conrad")]]);
}

#[test]
fn view_construction_matches_the_direct_or_storage() {
    // The object produced by the view equals the object the OR loader
    // stores directly — same types, same field order.
    let mut db = view_fixture();
    let via_view = db
        .query("SELECT v.University FROM OView_University v")
        .unwrap();
    let Value::Obj { type_name, attrs } = &via_view.rows[0][0] else {
        panic!("expected object value")
    };
    assert!(type_name.eq_str("Type_University"));
    assert_eq!(attrs.len(), 2); // attrStudyCourse + attrStudent
    assert_eq!(attrs[0], Value::str("Computer Science"));
    assert!(matches!(&attrs[1], Value::Coll { elements, .. } if elements.len() == 2));
}

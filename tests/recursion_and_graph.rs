//! E4 — §6.2 (recursive relationships) and Fig. 3 (multi-parent elements),
//! end to end.

use xml_ordb::dtd::{parse_dtd, DtdTree, ElementGraph};
use xml_ordb::mapping::Xml2OrDb;
use xml_ordb::ordb::{DbMode, Value};

const RECURSIVE_DTD: &str = r#"
<!ELEMENT Professor (PName,Dept)>
<!ELEMENT Dept (DName,Professor*)>
<!ELEMENT PName (#PCDATA)>
<!ELEMENT DName (#PCDATA)>
"#;

#[test]
fn recursion_is_detected_and_cut_in_the_tree() {
    let dtd = parse_dtd(RECURSIVE_DTD).unwrap();
    let graph = ElementGraph::build(&dtd);
    assert!(graph.is_recursive("Professor"));
    assert!(graph.is_recursive("Dept"));
    assert_eq!(
        graph.back_edges_from(Some("Professor")),
        vec![("Dept".to_string(), "Professor".to_string())]
    );
    let tree = DtdTree::build(&dtd, "Professor");
    assert!(tree.has_recursion());
}

#[test]
fn deep_recursion_round_trips() {
    // Five levels of departments.
    let mut xml = String::new();
    let depth = 5;
    for level in 0..depth {
        xml.push_str(&format!(
            "<Professor><PName>P{level}</PName><Dept><DName>D{level}</DName>"
        ));
    }
    xml.push_str("<Professor><PName>Leaf</PName><Dept><DName>LeafDept</DName></Dept></Professor>");
    for _ in 0..depth {
        xml.push_str("</Dept></Professor>");
    }

    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    system.register_dtd("org", RECURSIVE_DTD, "Professor").unwrap();
    let doc_id = system.store_document("org", &xml).unwrap();
    // Each level is a row object.
    assert_eq!(system.database().row_count("TabProfessor"), depth + 1);

    let restored = system.retrieve_document(&doc_id).unwrap();
    // Strip the XML declaration the pipeline may add.
    let restored_body = restored.trim_start_matches("<?xml version=\"1.0\"?>").trim_start();
    assert_eq!(restored_body, xml);
}

#[test]
fn self_recursive_parts_list() {
    let dtd_text = "<!ELEMENT part (name,part*)><!ELEMENT name (#PCDATA)>";
    let xml = "<part><name>engine</name>\
        <part><name>piston</name></part>\
        <part><name>valve</name><part><name>spring</name></part></part>\
        </part>";
    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    system.register_dtd("parts", dtd_text, "part").unwrap();
    let doc_id = system.store_document("parts", xml).unwrap();
    assert_eq!(system.database().row_count("Tabpart"), 4);
    let restored = system.retrieve_document(&doc_id).unwrap();
    assert!(restored.contains("<name>spring</name>"), "{restored}");
    // Navigate two levels of REFs.
    let rows = system
        .database()
        .query(
            "SELECT sub.COLUMN_VALUE.attrname FROM Tabpart p, TABLE(p.attrpart) sub \
             WHERE p.attrname = 'engine'",
        )
        .unwrap();
    assert_eq!(rows.rows.len(), 2);
}

#[test]
fn fig3_multi_parent_elements_share_a_type_and_round_trip() {
    let dtd_text = r#"
        <!ELEMENT Faculty (Professor,Student)>
        <!ELEMENT Professor (PName,Address)>
        <!ELEMENT Address (Street,City)>
        <!ELEMENT Student (Address,SName)>
        <!ELEMENT PName (#PCDATA)> <!ELEMENT SName (#PCDATA)>
        <!ELEMENT Street (#PCDATA)> <!ELEMENT City (#PCDATA)>"#;
    let xml = "<Faculty><Professor><PName>Kudrass</PName>\
        <Address><Street>Main St 1</Street><City>Leipzig</City></Address></Professor>\
        <Student><Address><Street>Side St 2</Street><City>Halle</City></Address>\
        <SName>Conrad</SName></Student></Faculty>";
    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    system.register_dtd("faculty", dtd_text, "Faculty").unwrap();
    let doc_id = system.store_document("faculty", xml).unwrap();
    // One shared Type_Address navigated from both parents.
    let prof_city = system
        .database()
        .query_scalar("SELECT f.attrProfessor.attrAddress.attrCity FROM TabFaculty f")
        .unwrap();
    let student_city = system
        .database()
        .query_scalar("SELECT f.attrStudent.attrAddress.attrCity FROM TabFaculty f")
        .unwrap();
    assert_eq!(prof_city, Value::str("Leipzig"));
    assert_eq!(student_city, Value::str("Halle"));
    let restored = system.retrieve_document(&doc_id).unwrap();
    assert!(restored.contains("<Street>Side St 2</Street>"));
}

#[test]
fn mutual_recursion_between_three_elements() {
    let dtd_text = r#"
        <!ELEMENT a (name,b?)>
        <!ELEMENT b (name,c?)>
        <!ELEMENT c (name,a?)>
        <!ELEMENT name (#PCDATA)>"#;
    let xml = "<a><name>1</name><b><name>2</name><c><name>3</name>\
        <a><name>4</name></a></c></b></a>";
    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    system.register_dtd("cycle", dtd_text, "a").unwrap();
    let doc_id = system.store_document("cycle", xml).unwrap();
    let restored = system.retrieve_document(&doc_id).unwrap();
    let body = restored.trim_start_matches("<?xml version=\"1.0\"?>").trim_start();
    assert_eq!(body, xml);
}

#[test]
fn drop_script_tears_down_recursive_schemas() {
    let dtd = parse_dtd(RECURSIVE_DTD).unwrap();
    let schema = xml_ordb::mapping::generate_schema(
        &dtd,
        "Professor",
        DbMode::Oracle9,
        xml_ordb::mapping::MappingOptions::default(),
        &xml_ordb::mapping::schemagen::IdrefTargets::new(),
    )
    .unwrap();
    let mut db = xml_ordb::ordb::Database::new(DbMode::Oracle9);
    db.execute_script(&xml_ordb::mapping::ddlgen::create_script(&schema).unwrap()).unwrap();
    assert!(db.catalog().type_count() > 0);
    db.execute_script(&xml_ordb::mapping::ddlgen::drop_script(&schema)).unwrap();
    assert_eq!(db.catalog().type_count(), 0);
    assert_eq!(db.catalog().table_count(), 0);
}

//! The maplint differential guarantee, exercised property-style over the
//! seeded `dtdgen` corpus and all six mapping strategies:
//!
//! * **no false positives** — an Error-severity maplint finding means the
//!   real pipeline fails for that strategy; a clean verdict means the real
//!   pipeline succeeds;
//! * on mutated DTDs (a referenced declaration removed) the Error flips on
//!   **exactly** the schema-deriving strategies (or9/or8/rel) — and exactly
//!   those pipelines fail;
//! * a DRIFT Error means a subsequent `store_document` really fails when
//!   the check is bypassed.

use xml_ordb::dtd::{lint_dtd, parse_dtd, parse_dtd_spanned, ElementGraph, MappingStrategy};
use xml_ordb::mapping::ddlgen::{create_script, types_script};
use xml_ordb::mapping::loader::load_script;
use xml_ordb::mapping::maplint::{check_catalog_drift, lint_schema};
use xml_ordb::mapping::model::MappingOptions;
use xml_ordb::mapping::schemagen::{generate_schema, IdrefTargets};
use xml_ordb::mapping::views::{relational_ddl, relational_load_script, relational_schema};
use xml_ordb::mapping::Xml2OrDb;
use xml_ordb::ordb::{Database, DbMode, Severity};
use xml_ordb::shred::Baseline;
use xml_ordb::workload::dtdgen::{generate_dtd, DtdConfig};
use xmlord_prng::Prng;

/// Drive the real pipeline for one strategy: DDL, then shred + load `xml`.
/// `Err` carries the first failure — schema generation, DDL rejection or a
/// failed load statement.
fn attempt(
    strategy: MappingStrategy,
    dtd_text: &str,
    root: &str,
    xml: &str,
) -> Result<(), String> {
    let dtd = parse_dtd(dtd_text).map_err(|e| e.to_string())?;
    let doc = xml_ordb::xml::parse(xml).map_err(|e| e.to_string())?;
    let run = |db: &mut Database, ddl: &str, load: &[String]| -> Result<(), String> {
        db.execute_script(ddl).map_err(|e| e.to_string())?;
        for stmt in load {
            db.execute(stmt).map_err(|e| format!("{e}\n{stmt}"))?;
        }
        Ok(())
    };
    match strategy {
        MappingStrategy::Or9 | MappingStrategy::Or8 => {
            let mode = if strategy == MappingStrategy::Or8 {
                DbMode::Oracle8
            } else {
                DbMode::Oracle9
            };
            let schema =
                generate_schema(&dtd, root, mode, MappingOptions::default(), &IdrefTargets::new())
                    .map_err(|e| e.to_string())?;
            let ddl = create_script(&schema).map_err(|e| e.to_string())?;
            let load = load_script(&schema, &dtd, &doc, "d").map_err(|e| e.to_string())?;
            run(&mut Database::new(mode), &ddl, &load)
        }
        MappingStrategy::Relational => {
            let schema = generate_schema(
                &dtd,
                root,
                DbMode::Oracle9,
                MappingOptions { with_doc_id: false, ..Default::default() },
                &IdrefTargets::new(),
            )
            .map_err(|e| e.to_string())?;
            let rel = relational_schema(&schema);
            let ddl = format!(
                "{}\n{}",
                types_script(&schema).map_err(|e| e.to_string())?,
                relational_ddl(&rel, 4000)
            );
            let load = relational_load_script(&schema, &rel, &doc).map_err(|e| e.to_string())?;
            run(&mut Database::new(DbMode::Oracle9), &ddl, &load)
        }
        MappingStrategy::Edge | MappingStrategy::AttributeTables | MappingStrategy::Inline => {
            let baseline = match strategy {
                MappingStrategy::Edge => Baseline::Edge,
                MappingStrategy::AttributeTables => Baseline::AttributeTables,
                _ => Baseline::Inline,
            };
            let ddl = baseline.ddl(&dtd, root).map_err(|e| e.to_string())?;
            let load = baseline.load(&dtd, root, &doc).map_err(|e| e.to_string())?;
            run(&mut Database::new(DbMode::Oracle9), &ddl, &load)
        }
    }
}

fn corpus(case: u64) -> DtdConfig {
    let mut rng = Prng::seed_from_u64(0x11A9 + case);
    DtdConfig {
        depth: rng.gen_range(1usize..4),
        fanout: rng.gen_range(1usize..4),
        leaves: rng.gen_range(1usize..3),
        star_percent: 45,
        attr_percent: 40,
        seed: rng.gen_range(0u64..5000),
    }
}

/// Clean corpus: zero maplint Errors at every level, and every strategy's
/// pipeline succeeds — the "no false positives" half of the guarantee.
#[test]
fn clean_corpus_draws_no_errors_and_every_strategy_loads() {
    for case in 0..10u64 {
        let config = corpus(case);
        let generated = generate_dtd(&config);
        let xml = generated.document(2, config.seed);

        // Level 1: per-strategy DTD verdicts.
        let (dtd, src) = parse_dtd_spanned(&generated.dtd_text).unwrap();
        for verdict in lint_dtd(&dtd, &src, &generated.root) {
            assert_eq!(
                verdict.error_count(),
                0,
                "case {case} {}: false positive on a loadable DTD:\n{:?}",
                verdict.strategy.label(),
                verdict.diagnostics
            );
            let result = attempt(verdict.strategy, &generated.dtd_text, &generated.root, &xml);
            assert!(
                result.is_ok(),
                "case {case} {}: clean verdict but pipeline failed: {}\n{}",
                verdict.strategy.label(),
                result.unwrap_err(),
                generated.dtd_text
            );
        }

        // Level 2: schema lints over the or9 mapping draw no Errors either.
        let schema = generate_schema(
            &dtd,
            &generated.root,
            DbMode::Oracle9,
            MappingOptions::default(),
            &IdrefTargets::new(),
        )
        .unwrap();
        let report = lint_schema(&schema).unwrap();
        assert_eq!(report.error_count(), 0, "case {case}:\n{}", report.render("gen.sql"));
    }
}

/// Remove the declaration of one referenced *leaf* element. The maplint
/// Error must flip on exactly the strategies whose pipeline now fails:
/// or9/or8/rel abort in `generate_schema`; edge ignores the DTD; inline
/// and attribute-tables degrade (Warning) but still load the document.
#[test]
fn removed_leaf_declaration_flips_error_and_failure_together() {
    let mut tested = 0;
    for case in 0..10u64 {
        let config = corpus(case);
        let generated = generate_dtd(&config);
        let xml = generated.document(2, config.seed);
        let dtd = parse_dtd(&generated.dtd_text).unwrap();

        // A referenced element with no children of its own.
        let graph = ElementGraph::build(&dtd);
        let Some(leaf) = dtd.element_order.iter().find(|name| {
            *name != &generated.root
                && graph.children_of(name).is_empty()
                && !graph.parents_of(name).is_empty()
        }) else {
            continue;
        };
        // Remove only the <!ELEMENT> declaration; a kept <!ATTLIST> still
        // yields the attribute's table under attr, so that load stays clean.
        let mutated: String = generated
            .dtd_text
            .lines()
            .filter(|line| !line.starts_with(&format!("<!ELEMENT {leaf} ")))
            .map(|line| format!("{line}\n"))
            .collect();
        tested += 1;

        let (mdtd, msrc) = parse_dtd_spanned(&mutated).unwrap();
        for verdict in lint_dtd(&mdtd, &msrc, &generated.root) {
            let lint_error = verdict.error_count() > 0;
            let result = attempt(verdict.strategy, &mutated, &generated.root, &xml);
            assert_eq!(
                lint_error,
                result.is_err(),
                "case {case} {} (leaf <{leaf}> removed): lint_error={lint_error} but \
                 pipeline={result:?}\n{mutated}",
                verdict.strategy.label()
            );
            assert_eq!(
                lint_error,
                verdict.strategy.uses_generated_schema(),
                "case {case}: DTD002 must flip exactly or9/or8/rel"
            );
            // inline and attr degrade: the finding is present, as a Warning.
            if matches!(
                verdict.strategy,
                MappingStrategy::Inline | MappingStrategy::AttributeTables
            ) {
                assert!(
                    verdict.diagnostics.iter().any(|d| d.code == "DTD002"),
                    "case {case} {}: expected a DTD002 warning",
                    verdict.strategy.label()
                );
            }
        }
    }
    assert!(tested >= 3, "corpus produced only {tested} mutable DTDs");
}

/// Removing an *inner* declaration makes the attribute-tables load fail in
/// a data-dependent way (no tables below the undeclared element). maplint
/// warns (DTD002) but must not promote it to an Error — while the Error ⇒
/// failure direction still holds for every strategy.
#[test]
fn removed_inner_declaration_errors_stay_sound() {
    let config = DtdConfig { depth: 3, fanout: 2, leaves: 2, ..Default::default() };
    let generated = generate_dtd(&config);
    let xml = generated.document(2, config.seed);
    let dtd = parse_dtd(&generated.dtd_text).unwrap();

    let graph = ElementGraph::build(&dtd);
    let inner = dtd
        .element_order
        .iter()
        .find(|name| {
            *name != &generated.root
                && !graph.children_of(name).is_empty()
                && !graph.parents_of(name).is_empty()
        })
        .expect("depth-3 corpus has an inner element");
    let mutated: String = generated
        .dtd_text
        .lines()
        .filter(|line| {
            !line.starts_with(&format!("<!ELEMENT {inner} "))
                && !line.starts_with(&format!("<!ATTLIST {inner} "))
        })
        .map(|line| format!("{line}\n"))
        .collect();

    let (mdtd, msrc) = parse_dtd_spanned(&mutated).unwrap();
    for verdict in lint_dtd(&mdtd, &msrc, &generated.root) {
        let result = attempt(verdict.strategy, &mutated, &generated.root, &xml);
        if verdict.error_count() > 0 {
            assert!(
                result.is_err(),
                "{}: Error-severity finding on a loadable input (false positive)",
                verdict.strategy.label()
            );
        }
        match verdict.strategy {
            MappingStrategy::Edge => assert!(result.is_ok(), "edge never consults the DTD"),
            MappingStrategy::AttributeTables => {
                // The document nests children under the undeclared element,
                // so this load really fails — covered by the Warning.
                assert!(result.is_err(), "attr load should fail: tables below <{inner}> missing");
                assert_eq!(verdict.error_count(), 0, "data-dependent: must stay a Warning");
                assert!(verdict.diagnostics.iter().any(|d| d.code == "DTD002"));
            }
            _ => {}
        }
    }
}

/// Catalog drift: DRIFT Errors appear exactly when the live catalog no
/// longer matches the mapping — and bypassing the check reproduces the
/// failure at load time.
#[test]
fn drift_errors_reproduce_as_load_failures() {
    let config = corpus(3);
    let generated = generate_dtd(&config);
    let mut sys = Xml2OrDb::new(DbMode::Oracle9);
    sys.register_dtd("gen", &generated.dtd_text, &generated.root).unwrap();

    // Fresh registration: no drift, and a store succeeds.
    let clean = sys.maplint("gen").unwrap();
    assert_eq!(clean.error_count(), 0, "{}", clean.render("gen.sql"));
    sys.store_document("gen", &generated.document(1, 7)).unwrap();

    // Drop the root table out from under the mapping.
    let schema = sys.schema("gen").unwrap().schema.clone();
    let table = schema.root_table.clone();
    sys.database().execute(&format!("DROP TABLE {table}")).unwrap();

    let drifted = sys.maplint("gen").unwrap();
    assert!(
        drifted.diagnostics.iter().any(|d| d.severity == Severity::Error && d.code == "DRIFT001"),
        "{}",
        drifted.render("gen.sql")
    );
    // Bypass the check: the load failure the Error predicted is real.
    let err = sys.store_document("gen", &generated.document(1, 8));
    assert!(err.is_err(), "store succeeded against a dropped root table");

    // Standalone checker agrees with the pipeline wrapper.
    let standalone = check_catalog_drift(&schema, &sys.database().catalog()).unwrap();
    assert!(standalone.diagnostics.iter().any(|d| d.code == "DRIFT001"));
}

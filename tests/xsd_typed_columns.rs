//! The §7 future-work extensions, end to end: XML Schema analysis with real
//! column types (NUMBER/DATE/bounded VARCHAR) and CLOB text storage.

use xml_ordb::mapping::model::{MappingOptions, ScalarType, TextStorage};
use xml_ordb::mapping::Xml2OrDb;
use xml_ordb::ordb::{DbError, DbMode, Value};

const INVOICE_XSD: &str = r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Invoice">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="Customer" type="xs:string"/>
        <xs:element name="Issued" type="xs:date"/>
        <xs:element name="Line" minOccurs="1" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Item" type="SkuType"/>
              <xs:element name="Quantity" type="xs:positiveInteger"/>
              <xs:element name="Price" type="xs:decimal"/>
            </xs:sequence>
            <xs:attribute name="Pos" type="xs:integer" use="required"/>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
      <xs:attribute name="Number" type="xs:string" use="required"/>
    </xs:complexType>
  </xs:element>
  <xs:simpleType name="SkuType">
    <xs:restriction base="xs:string"><xs:maxLength value="12"/></xs:restriction>
  </xs:simpleType>
</xs:schema>"#;

const INVOICE_XML: &str = r#"<Invoice Number="2002-042"><Customer>HTWK Leipzig</Customer>
<Issued>2002-03-25</Issued>
<Line Pos="1"><Item>SKU-1</Item><Quantity>3</Quantity><Price>19.99</Price></Line>
<Line Pos="2"><Item>SKU-2</Item><Quantity>1</Quantity><Price>5</Price></Line>
</Invoice>"#;

fn invoice_system() -> Xml2OrDb {
    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    system.register_xsd("invoice", INVOICE_XSD, "Invoice").unwrap();
    system
}

#[test]
fn xsd_schema_generates_typed_columns() {
    let system = invoice_system();
    let script = &system.schema("invoice").unwrap().create_script;
    assert!(script.contains("attrQuantity NUMBER"), "{script}");
    assert!(script.contains("attrPrice NUMBER"), "{script}");
    assert!(script.contains("attrIssued DATE"), "{script}");
    assert!(script.contains("attrItem VARCHAR(12)"), "{script}");
    assert!(script.contains("attrPos NUMBER"), "{script}");
    assert!(script.contains("attrCustomer VARCHAR(4000)"), "{script}");
}

#[test]
fn typed_documents_store_query_and_round_trip() {
    let mut system = invoice_system();
    let doc_id = system.store_document("invoice", INVOICE_XML).unwrap();
    // Numeric comparisons now work natively — a DTD-based mapping would
    // compare strings ('5' > '19.99' lexically!).
    let rows = system
        .database()
        .query(
            "SELECT l.attrItem FROM TabInvoice i, TABLE(i.attrLine) l \
             WHERE l.attrPrice > 10",
        )
        .unwrap();
    assert_eq!(rows.rows, vec![vec![Value::str("SKU-1")]]);
    // Aggregate-ish check through ORDER BY on a NUMBER column.
    let rows = system
        .database()
        .query(
            "SELECT l.attrPrice FROM TabInvoice i, TABLE(i.attrLine) l ORDER BY l.attrPrice DESC",
        )
        .unwrap();
    assert_eq!(rows.rows[0][0], Value::Num(19.99));
    // Round trip: numbers render back canonically.
    let restored = system.retrieve_document(&doc_id).unwrap();
    assert!(restored.contains("<Quantity>3</Quantity>"), "{restored}");
    assert!(restored.contains("<Price>19.99</Price>"), "{restored}");
    assert!(restored.contains("<Issued>2002-03-25</Issued>"), "{restored}");
    assert!(restored.contains("Pos=\"1\""), "{restored}");
}

#[test]
fn non_numeric_text_in_a_number_column_is_rejected() {
    let mut system = invoice_system();
    let bad = INVOICE_XML.replace("<Quantity>3</Quantity>", "<Quantity>three</Quantity>");
    let err = system.store_document("invoice", &bad).unwrap_err();
    assert!(matches!(
        err,
        xml_ordb::mapping::MappingError::Db(DbError::TypeMismatch { .. })
    ), "{err:?}");
}

#[test]
fn maxlength_restriction_is_enforced() {
    let mut system = invoice_system();
    let bad = INVOICE_XML.replace("SKU-1", "SKU-1-far-too-long-for-twelve");
    let err = system.store_document("invoice", &bad).unwrap_err();
    assert!(matches!(
        err,
        xml_ordb::mapping::MappingError::Db(DbError::ValueTooLarge { max: 12, .. })
    ), "{err:?}");
}

#[test]
fn clob_text_storage_lifts_the_varchar_limit() {
    // §7: "Large text elements should be assigned the CLOB type."
    let options = MappingOptions { text_storage: TextStorage::Clob, ..Default::default() };
    let mut system = Xml2OrDb::with_options(DbMode::Oracle9, options);
    system.register_dtd("doc", "<!ELEMENT doc (#PCDATA)>", "doc").unwrap();
    let script = &system.schema("doc").unwrap().create_script;
    assert!(script.contains("attrdoc CLOB"), "{script}");
    // 100 000 characters — far beyond VARCHAR(4000) — store and retrieve.
    let long = "lorem ipsum ".repeat(9000);
    let doc_id = system.store_document("doc", &format!("<doc>{long}</doc>")).unwrap();
    let restored = system.retrieve_document(&doc_id).unwrap();
    assert!(restored.contains(&long));
}

#[test]
fn clob_collections_fall_back_to_varchar_on_oracle8() {
    // §2.2: Oracle 8 forbids LOB collection elements; the mapper degrades
    // set-valued text to VARCHAR there instead of generating invalid DDL.
    let options = MappingOptions { text_storage: TextStorage::Clob, ..Default::default() };
    let mut system = Xml2OrDb::with_options(DbMode::Oracle8, options);
    system
        .register_dtd("notes", "<!ELEMENT notes (note*)><!ELEMENT note (#PCDATA)>", "notes")
        .unwrap();
    let script = &system.schema("notes").unwrap().create_script;
    assert!(
        script.contains("CREATE TYPE TypeVA_note AS VARRAY(100) OF VARCHAR(4000);"),
        "{script}"
    );
    // On Oracle 9 the same options produce a CLOB collection.
    let options9 = MappingOptions { text_storage: TextStorage::Clob, ..Default::default() };
    let mut system9 = Xml2OrDb::with_options(DbMode::Oracle9, options9);
    system9
        .register_dtd("notes", "<!ELEMENT notes (note*)><!ELEMENT note (#PCDATA)>", "notes")
        .unwrap();
    let script9 = &system9.schema("notes").unwrap().create_script;
    assert!(script9.contains("CREATE TYPE TypeVA_note AS VARRAY(100) OF CLOB;"), "{script9}");
}

#[test]
fn manual_type_hints_work_without_an_xsd() {
    let mut options = MappingOptions::default();
    options.type_hints.elements.insert("CreditPts".into(), ScalarType::Number);
    let mut system = Xml2OrDb::with_options(DbMode::Oracle9, options);
    system
        .register_dtd(
            "c",
            "<!ELEMENT course (name,CreditPts)><!ELEMENT name (#PCDATA)><!ELEMENT CreditPts (#PCDATA)>",
            "course",
        )
        .unwrap();
    let script = &system.schema("c").unwrap().create_script;
    assert!(script.contains("attrCreditPts NUMBER"), "{script}");
}

#[test]
fn forward_idref_references_resolve_via_deferred_updates() {
    // p2's boss appears LATER in the document — resolvable only because the
    // loader wires IDREFs with post-INSERT UPDATE statements.
    let dtd_text = r#"
        <!ELEMENT db (person*)>
        <!ELEMENT person (#PCDATA)>
        <!ATTLIST person id ID #REQUIRED boss IDREF #IMPLIED>"#;
    let xml = r#"<db><person id="p2" boss="p3">Conrad</person><person id="p3">Kudrass</person></db>"#;
    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    system.register_dtd_with_sample("org", dtd_text, "db", xml).unwrap();
    let doc_id = system.store_document("org", xml).unwrap();
    // The REF is wired despite the forward reference.
    let boss = system
        .database()
        .query_scalar(
            "SELECT p.attrListperson.attrboss.attrperson FROM Tabperson p              WHERE p.attrListperson.attrid = 'p2'",
        )
        .unwrap();
    assert_eq!(boss, Value::str("Kudrass"));
    // And retrieval restores the attribute.
    let restored = system.retrieve_document(&doc_id).unwrap();
    assert!(restored.contains("boss=\"p3\""), "{restored}");
}

#[test]
fn mutual_idref_references_resolve() {
    let dtd_text = r#"
        <!ELEMENT db (person*)>
        <!ELEMENT person (#PCDATA)>
        <!ATTLIST person id ID #REQUIRED peer IDREF #IMPLIED>"#;
    let xml = r#"<db><person id="a" peer="b">A</person><person id="b" peer="a">B</person></db>"#;
    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    system.register_dtd_with_sample("pair", dtd_text, "db", xml).unwrap();
    system.store_document("pair", xml).unwrap();
    let rows = system
        .database()
        .query("SELECT p.attrListperson.attrid, p.attrListperson.attrpeer.attrperson FROM Tabperson p")
        .unwrap();
    assert_eq!(rows.rows.len(), 2);
    for row in &rows.rows {
        assert!(!row[1].is_null(), "peer unresolved for {:?}", row[0]);
    }
}

#[test]
fn xsd_and_dtd_schemas_coexist() {
    let mut system = Xml2OrDb::new(DbMode::Oracle9).with_auto_schema_ids();
    system.register_xsd("invoice", INVOICE_XSD, "Invoice").unwrap();
    system
        .register_dtd("uni", include_str!("../assets/university.dtd"), "University")
        .unwrap();
    let a = system.store_document("invoice", INVOICE_XML).unwrap();
    let b = system
        .store_document("uni", include_str!("../assets/university.xml"))
        .unwrap();
    assert!(system.retrieve_document(&a).unwrap().contains("SKU-1"));
    assert!(system.retrieve_document(&b).unwrap().contains("&cs;"));
}

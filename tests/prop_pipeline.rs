//! Property-based end-to-end tests: random DTDs and documents go through
//! the full store→retrieve pipeline and must come back with all data
//! preserved, in both engine modes.

use xml_ordb::dtd::parse_dtd;
use xml_ordb::mapping::roundtrip::compare;
use xml_ordb::mapping::Xml2OrDb;
use xml_ordb::ordb::DbMode;
use xml_ordb::workload::dtdgen::{generate_dtd, DtdConfig};
use xml_ordb::workload::university::{university_dtd, university_xml, UniversityConfig};
use xmlord_prng::Prng;

/// Random university instances round-trip exactly (data-centric, no
/// comments/PIs/mixed content).
#[test]
fn university_round_trips_in_both_modes() {
    for case in 0..24u64 {
        let mut rng = Prng::seed_from_u64(0x0817 + case);
        let students = rng.gen_range(0usize..12);
        let seed = rng.gen_range(0u64..1000);
        let mode = if rng.gen_bool(0.5) { DbMode::Oracle9 } else { DbMode::Oracle8 };
        let xml = university_xml(&UniversityConfig { students, seed, ..Default::default() });
        let mut system = Xml2OrDb::new(mode);
        system.register_dtd("uni", university_dtd(), "University").unwrap();
        let doc_id = system.store_document("uni", &xml).unwrap();
        let report = system.fidelity(&doc_id, &xml).unwrap();
        assert!(report.is_exact(), "case {case} {mode}: {:?}", report.losses);
    }
}

/// Random generated DTDs: their documents survive the pipeline with all
/// data preserved.
#[test]
fn generated_dtds_round_trip() {
    for case in 0..24u64 {
        let mut rng = Prng::seed_from_u64(0x6E4 + case);
        let seed = rng.gen_range(0u64..400);
        let generated = generate_dtd(&DtdConfig {
            depth: rng.gen_range(1usize..4),
            fanout: rng.gen_range(1usize..3),
            leaves: 2,
            star_percent: 45,
            attr_percent: 40,
            seed,
        });
        let xml = generated.document(rng.gen_range(0usize..3), seed);
        let mut system = Xml2OrDb::new(DbMode::Oracle9);
        system.register_dtd("gen", &generated.dtd_text, &generated.root).unwrap();
        let doc_id = system.store_document("gen", &xml).unwrap();
        let report = system.fidelity(&doc_id, &xml).unwrap();
        assert!(
            report.is_exact(),
            "case {case} dtd:\n{}\ndoc: {xml}\nlosses: {:?}",
            generated.dtd_text,
            report.losses
        );
    }
}

/// The generated SQL script itself is always executable — parse errors
/// in generated DDL/DML are bugs regardless of input shape.
#[test]
fn generated_sql_is_always_parseable() {
    for seed in 0..24u64 {
        let generated = generate_dtd(&DtdConfig { seed: seed * 7 + 1, ..Default::default() });
        let dtd = parse_dtd(&generated.dtd_text).unwrap();
        let schema = xml_ordb::mapping::generate_schema(
            &dtd,
            &generated.root,
            DbMode::Oracle9,
            xml_ordb::mapping::MappingOptions::default(),
            &xml_ordb::mapping::schemagen::IdrefTargets::new(),
        )
        .unwrap();
        let script = xml_ordb::mapping::ddlgen::create_script(&schema).unwrap();
        assert!(xml_ordb::ordb::sql::parse_script(&script).is_ok(), "seed {seed}");
        let drop = xml_ordb::mapping::ddlgen::drop_script(&schema);
        assert!(xml_ordb::ordb::sql::parse_script(&drop).is_ok(), "seed {seed}");
    }
}

/// Fidelity comparison is reflexive: any parsed document compared with
/// itself yields no losses.
#[test]
fn fidelity_is_reflexive() {
    for case in 0..24u64 {
        let mut rng = Prng::seed_from_u64(0xF1DE + case);
        let seed = rng.gen_range(0u64..300);
        let generated = generate_dtd(&DtdConfig { seed, ..Default::default() });
        let xml = generated.document(rng.gen_range(0usize..3), seed);
        let doc = xml_ordb::xml::parse(&xml).unwrap();
        let report = compare(&doc, &doc);
        // Mixed-interleaving flags may fire on *both* (they describe the
        // original); everything else must be silent.
        assert!(
            report.is_exact() || report.data_preserved(),
            "case {case}: {:?}",
            report.losses
        );
    }
}

//! Property-based end-to-end tests: random DTDs and documents go through
//! the full store→retrieve pipeline and must come back with all data
//! preserved, in both engine modes.

use proptest::prelude::*;
use xml_ordb::dtd::parse_dtd;
use xml_ordb::mapping::roundtrip::compare;
use xml_ordb::mapping::Xml2OrDb;
use xml_ordb::ordb::DbMode;
use xml_ordb::workload::dtdgen::{generate_dtd, DtdConfig};
use xml_ordb::workload::university::{university_dtd, university_xml, UniversityConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random university instances round-trip exactly (data-centric, no
    /// comments/PIs/mixed content).
    #[test]
    fn university_round_trips_in_both_modes(
        students in 0usize..12,
        seed in 0u64..1000,
        oracle9 in proptest::bool::ANY,
    ) {
        let mode = if oracle9 { DbMode::Oracle9 } else { DbMode::Oracle8 };
        let xml = university_xml(&UniversityConfig { students, seed, ..Default::default() });
        let mut system = Xml2OrDb::new(mode);
        system.register_dtd("uni", university_dtd(), "University").unwrap();
        let doc_id = system.store_document("uni", &xml).unwrap();
        let report = system.fidelity(&doc_id, &xml).unwrap();
        prop_assert!(report.is_exact(), "{mode}: {:?}", report.losses);
    }

    /// Random generated DTDs: their documents survive the pipeline with all
    /// data preserved.
    #[test]
    fn generated_dtds_round_trip(
        seed in 0u64..400,
        depth in 1usize..4,
        fanout in 1usize..3,
        repeat in 0usize..3,
    ) {
        let generated = generate_dtd(&DtdConfig {
            depth,
            fanout,
            leaves: 2,
            star_percent: 45,
            attr_percent: 40,
            seed,
        });
        let xml = generated.document(repeat, seed);
        let mut system = Xml2OrDb::new(DbMode::Oracle9);
        system.register_dtd("gen", &generated.dtd_text, &generated.root).unwrap();
        let doc_id = system.store_document("gen", &xml).unwrap();
        let report = system.fidelity(&doc_id, &xml).unwrap();
        prop_assert!(report.is_exact(), "dtd:\n{}\ndoc: {xml}\nlosses: {:?}",
            generated.dtd_text, report.losses);
    }

    /// The generated SQL script itself is always executable — parse errors
    /// in generated DDL/DML are bugs regardless of input shape.
    #[test]
    fn generated_sql_is_always_parseable(seed in 0u64..200) {
        let generated = generate_dtd(&DtdConfig { seed, ..Default::default() });
        let dtd = parse_dtd(&generated.dtd_text).unwrap();
        let schema = xml_ordb::mapping::generate_schema(
            &dtd,
            &generated.root,
            DbMode::Oracle9,
            xml_ordb::mapping::MappingOptions::default(),
            &xml_ordb::mapping::schemagen::IdrefTargets::new(),
        ).unwrap();
        let script = xml_ordb::mapping::ddlgen::create_script(&schema);
        prop_assert!(xml_ordb::ordb::sql::parse_script(&script).is_ok());
        let drop = xml_ordb::mapping::ddlgen::drop_script(&schema);
        prop_assert!(xml_ordb::ordb::sql::parse_script(&drop).is_ok());
    }

    /// Fidelity comparison is reflexive: any parsed document compared with
    /// itself yields no losses.
    #[test]
    fn fidelity_is_reflexive(seed in 0u64..300, repeat in 0usize..3) {
        let generated = generate_dtd(&DtdConfig { seed, ..Default::default() });
        let xml = generated.document(repeat, seed);
        let doc = xml_ordb::xml::parse(&xml).unwrap();
        let report = compare(&doc, &doc);
        // Mixed-interleaving flags may fire on *both* (they describe the
        // original); everything else must be silent.
        prop_assert!(report.is_exact() || report.data_preserved(), "{:?}", report.losses);
    }
}

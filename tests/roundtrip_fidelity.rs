//! E9 — round-trip fidelity: what survives the database and what is lost,
//! feature by feature, exactly as §6.1/§7 predict.

use xml_ordb::mapping::roundtrip::Loss;
use xml_ordb::mapping::Xml2OrDb;
use xml_ordb::ordb::DbMode;
use xml_ordb::workload::catalog::{catalog_xml, CatalogConfig, CATALOG_DTD};

fn catalog_fidelity(config: CatalogConfig) -> (xml_ordb::mapping::roundtrip::FidelityReport, String) {
    let xml = catalog_xml(&config);
    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    system.register_dtd("catalog", CATALOG_DTD, "Catalog").unwrap();
    let doc_id = system.store_document("catalog", &xml).unwrap();
    let report = system.fidelity(&doc_id, &xml).unwrap();
    let restored = system.retrieve_document(&doc_id).unwrap();
    (report, restored)
}

#[test]
fn data_is_always_preserved() {
    let (report, _) = catalog_fidelity(CatalogConfig::default());
    assert!(report.data_preserved(), "{:?}", report.losses);
}

#[test]
fn comments_are_lost_as_predicted() {
    let (report, restored) = catalog_fidelity(CatalogConfig::default());
    assert!(report.count(|l| matches!(l, Loss::Comment { .. })) >= 3);
    assert!(!restored.contains("<!--"));
}

#[test]
fn processing_instructions_are_lost_as_predicted() {
    let (report, restored) = catalog_fidelity(CatalogConfig::default());
    assert!(report.count(|l| matches!(l, Loss::ProcessingInstruction { .. })) >= 1);
    assert!(!restored.contains("<?xml-stylesheet"));
}

#[test]
fn entity_references_are_restored_from_the_meta_table() {
    // §6.1's fix works: the ampersand references come back.
    let (_, restored) = catalog_fidelity(CatalogConfig::default());
    assert!(restored.contains("&vendor;"), "{restored}");
    assert!(restored.contains("&tm;"), "{restored}");
}

#[test]
fn cdata_sections_come_back_as_plain_text() {
    let (report, restored) = catalog_fidelity(CatalogConfig::default());
    assert!(report.count(|l| matches!(l, Loss::CDataDemoted { .. })) >= 1);
    assert!(!restored.contains("<![CDATA["));
    // The *content* survives, properly re-escaped.
    assert!(restored.contains("directed &amp; never"), "{restored}");
}

#[test]
fn mixed_content_text_survives_concatenated() {
    let (report, restored) = catalog_fidelity(CatalogConfig::default());
    assert!(report.count(|l| matches!(l, Loss::MixedInterleaving { .. })) >= 1);
    // Both the text and the <Em> child are present, interleaving lost.
    assert!(restored.contains("<Em>finest</Em>"), "{restored}");
}

#[test]
fn a_clean_document_round_trips_exactly() {
    // With no document-centric features, the reconstruction is exact.
    let config = CatalogConfig {
        with_comments: false,
        with_pis: false,
        with_cdata: false,
        with_entities: false,
        ..Default::default()
    };
    let xml = catalog_xml(&config);
    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    system.register_dtd("catalog", CATALOG_DTD, "Catalog").unwrap();
    let doc_id = system.store_document("catalog", &xml).unwrap();
    let report = system.fidelity(&doc_id, &xml).unwrap();
    // Only the mixed-content interleaving marker may fire (Blurb has an Em
    // between text runs).
    assert!(
        report.losses.iter().all(|l| matches!(
            l,
            Loss::MixedInterleaving { .. } | Loss::Whitespace { .. }
        )),
        "{:?}",
        report.losses
    );
}

#[test]
fn prolog_declaration_survives_via_metadata() {
    let xml = catalog_xml(&CatalogConfig::default());
    assert!(xml.starts_with("<?xml version=\"1.0\" encoding=\"UTF-8\"?>"));
    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    system.register_dtd("catalog", CATALOG_DTD, "Catalog").unwrap();
    let doc_id = system.store_document("catalog", &xml).unwrap();
    let restored = system.retrieve_document(&doc_id).unwrap();
    assert!(
        restored.starts_with("<?xml version=\"1.0\" encoding=\"UTF-8\"?>"),
        "{restored}"
    );
}

#[test]
fn fidelity_in_oracle8_mode_matches_oracle9() {
    let xml = catalog_xml(&CatalogConfig::default());
    for mode in [DbMode::Oracle8, DbMode::Oracle9] {
        let mut system = Xml2OrDb::new(mode);
        system.register_dtd("catalog", CATALOG_DTD, "Catalog").unwrap();
        let doc_id = system.store_document("catalog", &xml).unwrap();
        let report = system.fidelity(&doc_id, &xml).unwrap();
        assert!(report.data_preserved(), "{mode}: {:?}", report.losses);
    }
}

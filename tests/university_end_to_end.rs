//! E5 — the Appendix A example end-to-end, in both engine modes: parse,
//! validate, map, load, query, retrieve, fidelity-check.

use xml_ordb::mapping::pathquery::PathQuery;
use xml_ordb::mapping::Xml2OrDb;
use xml_ordb::ordb::{DbMode, Value};

const UNIVERSITY_DTD: &str = include_str!("../assets/university.dtd");
const UNIVERSITY_XML: &str = include_str!("../assets/university.xml");

fn full_pipeline(mode: DbMode) {
    let mut system = Xml2OrDb::new(mode);
    system.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
    let doc_id = system.store_document("uni", UNIVERSITY_XML).unwrap();

    // The §4.1 query.
    let query = PathQuery::parse("Student/LName")
        .with_predicate("Student/Course/Professor/PName", "Jaeger");
    let result = system.query_path("uni", &query).unwrap();
    assert_eq!(result.rows, vec![vec![Value::str("Conrad")]]);

    // Attribute query.
    let query = PathQuery::parse("Student/@StudNr");
    let result = system.query_path("uni", &query).unwrap();
    assert_eq!(result.rows.len(), 2);

    // Retrieval restores data and the entity reference.
    let restored = system.retrieve_document(&doc_id).unwrap();
    assert!(restored.contains("<StudyCourse>&cs;</StudyCourse>"), "{restored}");
    assert!(restored.contains("StudNr=\"23374\""));
    assert!(restored.contains("<Subject>Operat. Systems</Subject>"));

    // Fidelity: only whitespace pretty-printing may differ.
    let report = system.fidelity(&doc_id, UNIVERSITY_XML).unwrap();
    assert!(report.data_preserved(), "{mode}: {:?}", report.losses);
}

#[test]
fn oracle9_end_to_end() {
    full_pipeline(DbMode::Oracle9);
}

#[test]
fn oracle8_end_to_end() {
    full_pipeline(DbMode::Oracle8);
}

#[test]
fn oracle9_document_is_one_insert_oracle8_is_many() {
    // The §4.1/§4.2 statement-count contrast via engine statistics.
    let mut sys9 = Xml2OrDb::new(DbMode::Oracle9);
    sys9.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
    let before = sys9.stats();
    sys9.store_document("uni", UNIVERSITY_XML).unwrap();
    let inserts9 = sys9.stats().since(&before).inserts;
    assert_eq!(inserts9, 2); // document + metadata

    let mut sys8 = Xml2OrDb::new(DbMode::Oracle8);
    sys8.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
    let before = sys8.stats();
    sys8.store_document("uni", UNIVERSITY_XML).unwrap();
    let inserts8 = sys8.stats().since(&before).inserts;
    // 1 university + 2 students + 2 courses + 2 professors + 1 metadata.
    assert_eq!(inserts8, 8);
}

#[test]
fn generated_script_matches_paper_shapes() {
    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    let registered = system.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
    let script = &registered.create_script;
    for expected in [
        "CREATE TYPE TypeVA_Subject AS VARRAY(100) OF VARCHAR(4000);",
        "CREATE TYPE Type_Professor AS OBJECT (",
        "CREATE TYPE TypeVA_Professor AS VARRAY(100) OF Type_Professor;",
        "CREATE TYPE Type_Course AS OBJECT (",
        "CREATE TYPE Type_Student AS OBJECT (",
        "CREATE TABLE TabUniversity OF Type_University",
    ] {
        assert!(script.contains(expected), "missing {expected:?} in\n{script}");
    }
}

#[test]
fn validation_is_enforced_before_storage() {
    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    system.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
    // Course without Name violates (Name,Professor*,CreditPts?).
    let invalid = "<University><StudyCourse>CS</StudyCourse>\
        <Student StudNr=\"1\"><LName>a</LName><FName>b</FName>\
        <Course><CreditPts>4</CreditPts></Course></Student></University>";
    assert!(system.store_document("uni", invalid).is_err());
    // Nothing was stored.
    assert_eq!(system.database().row_count("TabUniversity"), 0);
}

#[test]
fn many_documents_scale_and_stay_separate() {
    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    system.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
    let mut ids = Vec::new();
    for i in 0..20 {
        let xml = format!(
            "<University><StudyCourse>Course{i}</StudyCourse></University>"
        );
        ids.push((i, system.store_document("uni", &xml).unwrap()));
    }
    assert_eq!(system.database().row_count("TabUniversity"), 20);
    for (i, id) in ids {
        let restored = system.retrieve_document(&id).unwrap();
        assert!(restored.contains(&format!("Course{i}")), "{restored}");
    }
}

//! E2 — the Fig. 2 mapping decision tree: one test per leaf, each checking
//! the generated DDL *and* that a conforming document loads and queries.

use xml_ordb::dtd::parse_dtd;
use xml_ordb::mapping::ddlgen::create_script;
use xml_ordb::mapping::loader::load_script;
use xml_ordb::mapping::model::{MappedSchema, MappingOptions};
use xml_ordb::mapping::schemagen::{generate_schema, IdrefTargets};
use xml_ordb::ordb::{Database, DbMode, Value};

/// Generate, execute DDL, load one document, return (schema, db).
fn run_case(dtd_text: &str, root: &str, xml: &str) -> (MappedSchema, Database) {
    let dtd = parse_dtd(dtd_text).unwrap();
    let schema = generate_schema(
        &dtd,
        root,
        DbMode::Oracle9,
        MappingOptions { with_doc_id: false, ..Default::default() },
        &IdrefTargets::new(),
    )
    .unwrap();
    let mut db = Database::new(DbMode::Oracle9);
    db.execute_script(&create_script(&schema).unwrap()).unwrap();
    let doc = xml_ordb::xml::parse(xml).unwrap();
    for stmt in load_script(&schema, &dtd, &doc, "d").unwrap() {
        db.execute(&stmt).unwrap_or_else(|e| panic!("{e}\n{stmt}"));
    }
    (schema, db)
}

#[test]
fn simple_mandatory_element() {
    let (schema, mut db) = run_case(
        "<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>",
        "r",
        "<r><a>x</a></r>",
    );
    // §4.1: VARCHAR(4000) attribute — the "no type concept in DTDs" default.
    let script = create_script(&schema).unwrap();
    assert!(script.contains("attra VARCHAR(4000)"), "{script}");
    assert!(script.contains("attra NOT NULL"), "{script}"); // mandatory on a table
    assert_eq!(db.query_scalar("SELECT r.attra FROM Tabr r").unwrap(), Value::str("x"));
}

#[test]
fn simple_optional_element_is_nullable() {
    let (_, mut db) = run_case(
        "<!ELEMENT r (a?)><!ELEMENT a (#PCDATA)>",
        "r",
        "<r/>",
    );
    assert_eq!(db.query_scalar("SELECT r.attra FROM Tabr r").unwrap(), Value::Null);
    // And NULL insert was accepted (nullable column).
    assert_eq!(db.row_count("Tabr"), 1);
}

#[test]
fn simple_star_element_becomes_scalar_collection() {
    let (schema, mut db) = run_case(
        "<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)>",
        "r",
        "<r><a>1</a><a>2</a><a>3</a></r>",
    );
    assert!(create_script(&schema).unwrap().contains("CREATE TYPE TypeVA_a AS VARRAY(100) OF VARCHAR(4000);"));
    let rows = db
        .query("SELECT x.COLUMN_VALUE FROM Tabr r, TABLE(r.attra) x")
        .unwrap();
    assert_eq!(rows.rows.len(), 3);
}

#[test]
fn simple_plus_element_collection_cannot_be_not_null() {
    let (schema, _) = run_case(
        "<!ELEMENT r (a+)><!ELEMENT a (#PCDATA)>",
        "r",
        "<r><a>1</a></r>",
    );
    // §4.3: "Set-valued attributes cannot be defined as NOT NULL altogether."
    let script = create_script(&schema).unwrap();
    assert!(!script.contains("attra NOT NULL"), "{script}");
    assert!(schema.unenforced_not_null.iter().any(|u| u.field == "attra"));
}

#[test]
fn complex_mandatory_element_embeds_object_type() {
    let (schema, mut db) = run_case(
        "<!ELEMENT r (a)><!ELEMENT a (b)><!ELEMENT b (#PCDATA)>",
        "r",
        "<r><a><b>deep</b></a></r>",
    );
    let script = create_script(&schema).unwrap();
    assert!(script.contains("attra Type_a"), "{script}");
    assert_eq!(
        db.query_scalar("SELECT r.attra.attrb FROM Tabr r").unwrap(),
        Value::str("deep")
    );
    assert_eq!(schema.generated_table_count(), 1); // no shredding
}

#[test]
fn complex_star_element_becomes_object_collection() {
    let (schema, mut db) = run_case(
        "<!ELEMENT r (a*)><!ELEMENT a (b)><!ELEMENT b (#PCDATA)>",
        "r",
        "<r><a><b>1</b></a><a><b>2</b></a></r>",
    );
    assert!(create_script(&schema).unwrap().contains("CREATE TYPE TypeVA_a AS VARRAY(100) OF Type_a;"));
    let rows = db
        .query("SELECT x.attrb FROM Tabr r, TABLE(r.attra) x ORDER BY x.attrb")
        .unwrap();
    assert_eq!(rows.rows, vec![vec![Value::str("1")], vec![Value::str("2")]]);
}

#[test]
fn implied_attribute_is_nullable() {
    let (_, mut db) = run_case(
        "<!ELEMENT r (#PCDATA)><!ATTLIST r x CDATA #IMPLIED>",
        "r",
        "<r>t</r>",
    );
    assert_eq!(db.query_scalar("SELECT r.attrx FROM Tabr r").unwrap(), Value::Null);
}

#[test]
fn required_attribute_is_not_null() {
    let (schema, mut db) = run_case(
        "<!ELEMENT r (#PCDATA)><!ATTLIST r x CDATA #REQUIRED>",
        "r",
        "<r x=\"v\">t</r>",
    );
    assert!(create_script(&schema).unwrap().contains("attrx NOT NULL"));
    assert_eq!(db.query_scalar("SELECT r.attrx FROM Tabr r").unwrap(), Value::str("v"));
    // Violating insert is rejected by the engine.
    let err = db.execute("INSERT INTO Tabr VALUES (Type_r(NULL, 't'))").unwrap_err();
    assert!(matches!(err, xml_ordb::ordb::DbError::NotNullViolation { .. }));
}

#[test]
fn attribute_list_generates_typeattrl_object() {
    // §4.4's example shape: element B with attributes C and D.
    let (schema, mut db) = run_case(
        r#"<!ELEMENT A (B)><!ELEMENT B (#PCDATA)>
           <!ATTLIST B C CDATA #IMPLIED D CDATA #IMPLIED>"#,
        "A",
        r#"<A><B C="c-value" D="d-value">text</B></A>"#,
    );
    let script = create_script(&schema).unwrap();
    assert!(script.contains("CREATE TYPE TypeAttrL_B AS OBJECT ("), "{script}");
    assert!(script.contains("attrListB TypeAttrL_B"), "{script}");
    assert_eq!(
        db.query_scalar("SELECT a.attrB.attrListB.attrC FROM TabA a").unwrap(),
        Value::str("c-value")
    );
    assert_eq!(
        db.query_scalar("SELECT a.attrB.attrB FROM TabA a").unwrap(),
        Value::str("text")
    );
}

#[test]
fn empty_element_with_attributes() {
    let (_, mut db) = run_case(
        "<!ELEMENT r (e)><!ELEMENT e EMPTY><!ATTLIST e on CDATA #REQUIRED>",
        "r",
        r#"<r><e on="yes"/></r>"#,
    );
    assert_eq!(
        db.query_scalar("SELECT r.attre.attron FROM Tabr r").unwrap(),
        Value::str("yes")
    );
}

#[test]
fn mixed_content_stores_text_and_children() {
    let (schema, mut db) = run_case(
        "<!ELEMENT p (#PCDATA|em)*><!ELEMENT em (#PCDATA)>",
        "p",
        "<p>hello <em>bold</em> world</p>",
    );
    assert!(schema.mapping("p").unwrap().mixed);
    assert_eq!(
        db.query_scalar("SELECT p.attrp FROM Tabp p").unwrap(),
        Value::str("hello  world")
    );
    let rows = db.query("SELECT e.COLUMN_VALUE FROM Tabp p, TABLE(p.attrem) e").unwrap();
    assert_eq!(rows.rows, vec![vec![Value::str("bold")]]);
}

#[test]
fn choice_members_are_nullable() {
    let (_, mut db) = run_case(
        "<!ELEMENT r (a|b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>",
        "r",
        "<r><b>chosen</b></r>",
    );
    assert_eq!(db.query_scalar("SELECT r.attra FROM Tabr r").unwrap(), Value::Null);
    assert_eq!(db.query_scalar("SELECT r.attrb FROM Tabr r").unwrap(), Value::str("chosen"));
}

#[test]
fn nested_groups_aggregate_cardinality() {
    // (a,b)* makes both a and b set-valued and optional.
    let (schema, _) = run_case(
        "<!ELEMENT r ((a,b)*)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>",
        "r",
        "<r><a>1</a><b>2</b><a>3</a><b>4</b></r>",
    );
    let r = schema.mapping("r").unwrap();
    for child in ["a", "b"] {
        let field = r.field_for_child(child).unwrap();
        assert!(field.set_valued && field.optional, "{child}");
    }
}

#[test]
fn every_scalar_column_is_varchar_4000() {
    // §7 drawback: "no type concept in DTDs -> simple elements and
    // attributes can only be assigned the VARCHAR datatype".
    let (schema, _) = run_case(
        r#"<!ELEMENT r (num,date,flag)><!ELEMENT num (#PCDATA)>
           <!ELEMENT date (#PCDATA)><!ELEMENT flag (#PCDATA)>
           <!ATTLIST r count CDATA #IMPLIED>"#,
        "r",
        r#"<r count="7"><num>42</num><date>2002-03-25</date><flag>y</flag></r>"#,
    );
    let script = create_script(&schema).unwrap();
    // Four scalar columns, all VARCHAR(4000); no NUMBER/DATE inferred.
    assert_eq!(script.matches("VARCHAR(4000)").count(), 4, "{script}");
    assert!(!script.contains(" NUMBER"), "{script}");
}

//! Cross-strategy answer equivalence: every storage strategy must return
//! the same answer set for the same path queries over the same document —
//! the precondition for the E6–E8 comparisons being meaningful.

use std::collections::BTreeSet;

use xml_ordb::dtd::parse_dtd;
use xml_ordb::mapping::ddlgen::create_script;
use xml_ordb::mapping::loader::load_script;
use xml_ordb::mapping::model::MappingOptions;
use xml_ordb::mapping::pathquery::{translate, PathQuery};
use xml_ordb::mapping::schemagen::{generate_schema, IdrefTargets};
use xml_ordb::ordb::{Database, DbMode};
use xml_ordb::shred::Baseline;
use xml_ordb::workload::university::{university_dtd, university_xml, UniversityConfig};

/// A path query: steps plus an optional (path, value) predicate.
type QuerySpec<'a> = (Vec<&'a str>, Option<(Vec<&'a str>, &'a str)>);

/// Answer set of a (steps, predicate) query under one strategy.
fn answers(
    db: &mut Database,
    sql: &str,
) -> BTreeSet<String> {
    db.query(sql)
        .unwrap_or_else(|e| panic!("{e}\n{sql}"))
        .rows
        .into_iter()
        .map(|row| row[0].as_str().unwrap_or_default().to_string())
        .collect()
}

#[test]
fn all_strategies_agree_on_all_queries() {
    let config = UniversityConfig { students: 8, seed: 77, ..Default::default() };
    let xml = university_xml(&config);
    let dtd = parse_dtd(university_dtd()).unwrap();
    let doc = xml_ordb::xml::parse(&xml).unwrap();

    let queries: Vec<QuerySpec> = vec![
        (vec!["StudyCourse"], None),
        (vec!["Student", "LName"], None),
        (vec!["Student", "@StudNr"], None),
        (vec!["Student", "Course", "Name"], None),
        (vec!["Student", "Course", "Professor", "PName"], None),
        (vec!["Student", "Course", "Professor", "Subject"], None),
        (
            vec!["Student", "LName"],
            Some((vec!["Student", "Course", "Professor", "PName"], "Jaeger")),
        ),
        (
            vec!["Student", "Course", "Name"],
            Some((vec!["Student", "Course", "Professor", "PName"], "Kudrass")),
        ),
    ];

    // Reference: the Oracle 9 object-relational store.
    let schema = generate_schema(
        &dtd,
        "University",
        DbMode::Oracle9,
        MappingOptions::default(),
        &IdrefTargets::new(),
    )
    .unwrap();
    let mut or_db = Database::new(DbMode::Oracle9);
    or_db.execute_script(&create_script(&schema).unwrap()).unwrap();
    for stmt in load_script(&schema, &dtd, &doc, "d").unwrap() {
        or_db.execute(&stmt).unwrap();
    }
    let mut reference: Vec<BTreeSet<String>> = Vec::new();
    for (steps, predicate) in &queries {
        let mut q = PathQuery {
            steps: steps.iter().map(|s| s.to_string()).collect(),
            predicate: None,
        };
        if let Some((path, value)) = predicate {
            q = q.with_predicate(&path.join("/"), value);
        }
        let sql = translate(&schema, &q).unwrap().sql;
        reference.push(answers(&mut or_db, &sql));
    }

    // Each baseline must agree.
    for baseline in Baseline::ALL {
        let mut db = Database::new(DbMode::Oracle9);
        db.execute_script(&baseline.ddl(&dtd, "University").unwrap()).unwrap();
        for stmt in baseline.load(&dtd, "University", &doc).unwrap() {
            db.execute(&stmt).unwrap();
        }
        for ((steps, predicate), expected) in queries.iter().zip(&reference) {
            let sql = baseline
                .path_query(
                    &dtd,
                    "University",
                    steps,
                    predicate.as_ref().map(|(p, v)| (p.as_slice(), *v)),
                )
                .unwrap();
            let got = answers(&mut db, &sql);
            assert_eq!(
                &got, expected,
                "{} disagrees on {:?} [{:?}]\nSQL: {sql}",
                baseline.name(),
                steps,
                predicate
            );
        }
    }

    // And the Oracle 8 variant of the contribution too.
    let schema8 = generate_schema(
        &dtd,
        "University",
        DbMode::Oracle8,
        MappingOptions::default(),
        &IdrefTargets::new(),
    )
    .unwrap();
    let mut db8 = Database::new(DbMode::Oracle8);
    db8.execute_script(&create_script(&schema8).unwrap()).unwrap();
    for stmt in load_script(&schema8, &dtd, &doc, "d").unwrap() {
        db8.execute(&stmt).unwrap();
    }
    for ((steps, predicate), expected) in queries.iter().zip(&reference) {
        let mut q = PathQuery {
            steps: steps.iter().map(|s| s.to_string()).collect(),
            predicate: None,
        };
        if let Some((path, value)) = predicate {
            q = q.with_predicate(&path.join("/"), value);
        }
        let sql = translate(&schema8, &q).unwrap().sql;
        let got = answers(&mut db8, &sql);
        assert_eq!(&got, expected, "or8 disagrees on {steps:?}\nSQL: {sql}");
    }
}

//! E1 — Table 1, verified against a whole generated schema: every database
//! object created for the university DTD follows the paper's conventions.

use xml_ordb::mapping::model::MappingOptions;
use xml_ordb::mapping::schemagen::{generate_schema, IdrefTargets};
use xml_ordb::ordb::DbMode;

const UNIVERSITY_DTD: &str = include_str!("../assets/university.dtd");

#[test]
fn every_generated_name_follows_table_1() {
    let dtd = xml_ordb::dtd::parse_dtd(UNIVERSITY_DTD).unwrap();
    let schema = generate_schema(
        &dtd,
        "University",
        DbMode::Oracle9,
        MappingOptions::default(),
        &IdrefTargets::new(),
    )
    .unwrap();
    for mapping in schema.elements.values() {
        if let Some(t) = &mapping.table {
            assert!(t.starts_with("Tab"), "table {t}");
        }
        if let Some(t) = &mapping.object_type {
            assert!(t.starts_with("Type_"), "object type {t}");
        }
        if let Some(t) = &mapping.collection_type {
            assert!(t.starts_with("TypeVA_"), "array type {t}");
        }
        if let Some(t) = &mapping.ref_collection_type {
            assert!(t.starts_with("TabRef"), "ref table type {t}");
        }
        if let Some(al) = &mapping.attr_list {
            assert!(al.type_name.starts_with("TypeAttrL_"), "{}", al.type_name);
        }
        if let Some(id) = &mapping.synthetic_id {
            assert!(id.starts_with("ID"), "synthetic id {id}");
        }
        for field in &mapping.fields {
            use xml_ordb::mapping::model::FieldSource;
            match &field.source {
                FieldSource::SyntheticId => assert!(field.db_name.starts_with("ID")),
                FieldSource::AttrList => {
                    assert!(field.db_name.starts_with("attrList"), "{}", field.db_name)
                }
                _ => assert!(field.db_name.starts_with("attr"), "{}", field.db_name),
            }
        }
    }
}

#[test]
fn all_generated_names_respect_the_30_char_limit() {
    // A DTD full of very long element names.
    let long_a = "AnnualFinancialReportStatement";
    let long_b = "ConsolidatedSubsidiaryAccountingEntry";
    let dtd_text = format!(
        "<!ELEMENT {long_a} ({long_b}*)><!ELEMENT {long_b} (#PCDATA)>\
         <!ATTLIST {long_b} VeryLongAttributeNameIndeedYes CDATA #IMPLIED>"
    );
    let dtd = xml_ordb::dtd::parse_dtd(&dtd_text).unwrap();
    let schema = generate_schema(
        &dtd,
        long_a,
        DbMode::Oracle9,
        MappingOptions { schema_id: Some("S9".into()), ..Default::default() },
        &IdrefTargets::new(),
    )
    .unwrap();
    let script = xml_ordb::mapping::ddlgen::create_script(&schema).unwrap();
    // The engine enforces the limit at parse time — executing proves it.
    let mut db = xml_ordb::ordb::Database::new(DbMode::Oracle9);
    db.execute_script(&script)
        .unwrap_or_else(|e| panic!("{e}\n{script}"));
}

#[test]
fn schema_ids_disambiguate_identical_element_names() {
    let dtd_a = xml_ordb::dtd::parse_dtd("<!ELEMENT Item (#PCDATA)>").unwrap();
    let schema_a = generate_schema(
        &dtd_a,
        "Item",
        DbMode::Oracle9,
        MappingOptions { schema_id: Some("S1".into()), ..Default::default() },
        &IdrefTargets::new(),
    )
    .unwrap();
    let schema_b = generate_schema(
        &dtd_a,
        "Item",
        DbMode::Oracle9,
        MappingOptions { schema_id: Some("S2".into()), ..Default::default() },
        &IdrefTargets::new(),
    )
    .unwrap();
    assert_eq!(schema_a.root_table, "TabItem_S1");
    assert_eq!(schema_b.root_table, "TabItem_S2");
    // Both coexist in one database.
    let mut db = xml_ordb::ordb::Database::new(DbMode::Oracle9);
    db.execute_script(&xml_ordb::mapping::ddlgen::create_script(&schema_a).unwrap()).unwrap();
    db.execute_script(&xml_ordb::mapping::ddlgen::create_script(&schema_b).unwrap()).unwrap();
    assert_eq!(db.catalog().table_count(), 2);
}

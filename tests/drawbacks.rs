//! E12 — the §7 drawback checklist. Each advantage/drawback the paper lists
//! in its conclusions, demonstrated mechanically.

use xml_ordb::mapping::model::MappingOptions;
use xml_ordb::mapping::schemagen::{generate_schema, IdrefTargets};
use xml_ordb::mapping::{MappingError, Xml2OrDb};
use xml_ordb::ordb::{DbError, DbMode, Value};

const UNIVERSITY_DTD: &str = include_str!("../assets/university.dtd");
const UNIVERSITY_XML: &str = include_str!("../assets/university.xml");

// ---------------------------------------------------------------------
// Advantages (§7) — positive demonstrations.
// ---------------------------------------------------------------------

#[test]
fn advantage_non_atomic_domains_and_multiple_nesting() {
    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    system.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
    system.store_document("uni", UNIVERSITY_XML).unwrap();
    // Four levels of nesting navigated in one expression.
    let rows = system
        .database()
        .query(
            "SELECT p.attrDept FROM TabUniversity u, TABLE(u.attrStudent) s, \
             TABLE(s.attrCourse) c, TABLE(c.attrProfessor) p \
             WHERE p.attrPName = 'Kudrass'",
        )
        .unwrap();
    assert_eq!(rows.rows, vec![vec![Value::str("Computer Science")]]);
}

#[test]
fn advantage_object_identity_for_row_objects() {
    // §7: "uniform identity of every element in the database by object
    // identifiers" — row objects carry OIDs REFs can target.
    let mut system = Xml2OrDb::new(DbMode::Oracle8);
    system.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
    system.store_document("uni", UNIVERSITY_XML).unwrap();
    let rows = system
        .database()
        .query("SELECT REF(s) FROM TabStudent s")
        .unwrap();
    assert_eq!(rows.rows.len(), 2);
    assert!(matches!(rows.rows[0][0], Value::Ref(_)));
}

// ---------------------------------------------------------------------
// Drawbacks (§7) — each reproduced.
// ---------------------------------------------------------------------

#[test]
fn drawback_oracle8_rejects_nested_collections() {
    // "set-valued complex elements cannot be mapped to collection types due
    // to system limitations (Oracle 8i only)".
    let mut db = xml_ordb::ordb::Database::new(DbMode::Oracle8);
    db.execute("CREATE TYPE TypeVA_S AS VARRAY(10) OF VARCHAR(100)").unwrap();
    let err = db.execute("CREATE TYPE TypeVA_T AS VARRAY(10) OF TypeVA_S").unwrap_err();
    assert!(matches!(err, DbError::NestedCollectionNotSupported { .. }));
    // Even indirectly: an object type *containing* a collection cannot be a
    // collection element in Oracle 8.
    db.execute("CREATE TYPE Type_P AS OBJECT(name VARCHAR(10), subj TypeVA_S)").unwrap();
    let err = db.execute("CREATE TYPE TypeVA_P AS VARRAY(10) OF Type_P").unwrap_err();
    assert!(matches!(err, DbError::NestedCollectionNotSupported { .. }));
}

#[test]
fn drawback_not_null_cannot_be_expressed_for_embedded_content() {
    let dtd = xml_ordb::dtd::parse_dtd(UNIVERSITY_DTD).unwrap();
    let schema = generate_schema(
        &dtd,
        "University",
        DbMode::Oracle9,
        MappingOptions::default(),
        &IdrefTargets::new(),
    )
    .unwrap();
    // PName is mandatory inside Professor, but Type_Professor is embedded:
    // the constraint lands in the unenforced list, not the DDL.
    assert!(schema
        .unenforced_not_null
        .iter()
        .any(|u| u.type_name == "Type_Professor" && u.field == "attrPName"));
    let ddl = xml_ordb::mapping::ddlgen::create_script(&schema).unwrap();
    assert!(!ddl.contains("attrPName NOT NULL"), "{ddl}");
    // Consequence: an invalid-by-DTD object slips into the database when
    // inserted via raw SQL.
    let mut db = xml_ordb::ordb::Database::new(DbMode::Oracle9);
    db.execute_script(&ddl).unwrap();
    db.execute(
        "INSERT INTO TabUniversity VALUES (Type_University('CS', TypeVA_Student(\
         Type_Student('1','x','y', TypeVA_Course(Type_Course('c', TypeVA_Professor(\
         Type_Professor(NULL, TypeVA_Subject('s'), 'd')), '4')))), 'doc'))",
    )
    .expect("the DBMS cannot stop the NULL PName — the paper's point");
}

#[test]
fn drawback_check_constraint_on_optional_complex_element_misfires() {
    // §4.3's exact scenario, reproduced end to end.
    let mut db = xml_ordb::ordb::Database::new(DbMode::Oracle9);
    db.execute_script(
        "CREATE TYPE Type_Address AS OBJECT(attrStreet VARCHAR(4000), attrCity VARCHAR(4000));
         CREATE TYPE Type_Course AS OBJECT(attrName VARCHAR(4000), attrAddress Type_Address);
         CREATE TABLE TabCourse OF Type_Course(
            attrName NOT NULL,
            CHECK (attrAddress.attrStreet IS NOT NULL));",
    )
    .unwrap();
    // Desired rejection: address with city but no street.
    assert!(db
        .execute("INSERT INTO TabCourse VALUES('CAD Intro', Type_Address(NULL,'Leipzig'))")
        .is_err());
    // NON-desired rejection: NULL address should be fine per the DTD
    // (Address is optional) but the CHECK rejects it anyway.
    let err = db
        .execute("INSERT INTO TabCourse VALUES('Operating Systems', NULL)")
        .unwrap_err();
    assert!(matches!(err, DbError::CheckViolation { .. }));
}

#[test]
fn drawback_varchar_length_limit() {
    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    system.register_dtd("doc", "<!ELEMENT doc (#PCDATA)>", "doc").unwrap();
    let long = "x".repeat(4001);
    let err = system.store_document("doc", &format!("<doc>{long}</doc>")).unwrap_err();
    assert!(matches!(err, MappingError::Db(DbError::ValueTooLarge { .. })));
    // 4000 characters exactly still fit.
    let ok = "x".repeat(4000);
    system.store_document("doc", &format!("<doc>{ok}</doc>")).unwrap();
}

#[test]
fn drawback_comments_and_pis_lost() {
    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    system.register_dtd("doc", "<!ELEMENT doc (#PCDATA)>", "doc").unwrap();
    let id = system
        .store_document("doc", "<doc>text<!--comment--><?target data?></doc>")
        .unwrap();
    let restored = system.retrieve_document(&id).unwrap();
    assert!(!restored.contains("comment"));
    assert!(!restored.contains("target"));
    assert!(restored.contains(">text<"));
}

#[test]
fn drawback_dtd_change_requires_schema_adaptation() {
    let mut system = Xml2OrDb::new(DbMode::Oracle9);
    system.register_dtd("v1", "<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>", "r").unwrap();
    // Works for v1 documents…
    system.store_document("v1", "<r><a>1</a></r>").unwrap();
    // …but a document following an evolved DTD is rejected outright.
    let err = system.store_document("v1", "<r><a>1</a><b>2</b></r>").unwrap_err();
    assert!(matches!(err, MappingError::Invalid(_)));
    // Re-registering the same name does not adapt the schema either.
    let err = system
        .register_dtd("v1", "<!ELEMENT r (a,b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>", "r")
        .unwrap_err();
    assert!(matches!(err, MappingError::Unsupported(_)));
}

#[test]
fn drawback_element_attribute_distinction_needs_metadata() {
    // Without the §5 meta-data the database cannot tell an element-derived
    // column from an attribute-derived one: both are VARCHAR attr… columns.
    let dtd_text = r#"<!ELEMENT r (name)><!ELEMENT name (#PCDATA)>
        <!ATTLIST r label CDATA #IMPLIED>"#;
    let dtd = xml_ordb::dtd::parse_dtd(dtd_text).unwrap();
    let schema = generate_schema(
        &dtd,
        "r",
        DbMode::Oracle9,
        MappingOptions { with_doc_id: false, ..Default::default() },
        &IdrefTargets::new(),
    )
    .unwrap();
    let ddl = xml_ordb::mapping::ddlgen::create_script(&schema).unwrap();
    // Identical column shapes…
    assert!(ddl.contains("attrlabel VARCHAR(4000)"));
    assert!(ddl.contains("attrname VARCHAR(4000)"));
    // …distinguished only by the meta-data entries.
    let entries = xml_ordb::mapping::metadata::doc_data_entries(&schema);
    assert!(entries.iter().any(|(t, x, _, _)| t == "attribute" && x == "label"));
    assert!(entries.iter().any(|(t, x, _, _)| t == "element" && x == "name"));
}

#[test]
fn drawback_order_across_references_is_content_model_order() {
    // Oracle 8 mode stores students in their own table; interleavings not
    // expressible in the content model cannot come back. For the university
    // DTD the content-model order equals document order, so this document
    // round-trips — the point is that the *mechanism* is reordering.
    let mut system = Xml2OrDb::new(DbMode::Oracle8);
    system.register_dtd("uni", UNIVERSITY_DTD, "University").unwrap();
    let id = system.store_document("uni", UNIVERSITY_XML).unwrap();
    let report = system.fidelity(&id, UNIVERSITY_XML).unwrap();
    assert!(report.data_preserved(), "{:?}", report.losses);
}

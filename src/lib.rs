//! # xml-ordb — XML document management in an object-relational database
//!
//! Umbrella crate of the reproduction of *Kudrass & Conrad, "Management of
//! XML Documents in Object-Relational Databases" (EDBT 2002 Workshops,
//! LNCS 2490)*. It re-exports the workspace crates under stable module
//! names and hosts the repository-level examples and integration tests.
//!
//! * [`xml`] — XML 1.0 parser, DOM, serializer (substrate S1).
//! * [`dtd`] — DTD parser, DTD DOM tree, validator, element graph (S2).
//! * [`ordb`] — embedded object-relational engine, Oracle-flavoured SQL (S3).
//! * [`mapping`] — the paper's contribution: DTD→OR schema generation,
//!   document load/retrieval, metadata, naming conventions, object views (S4).
//! * [`shred`] — relational baselines: edge table, attribute tables,
//!   DTD inlining (S5).
//! * [`workload`] — deterministic synthetic workload generators (S6).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-artifact index.

pub use xml2ordb as mapping;
pub use xmlord_dtd as dtd;
pub use xmlord_ordb as ordb;
pub use xmlord_shred as shred;
pub use xmlord_workload as workload;
pub use xmlord_xml as xml;
